"""Incremental bounded simulation (the SIGMOD 2011 module, bounded case).

Bounded simulation depends on path *lengths*, so an edge update can affect
matches far from the touched edge — but never farther than the largest
pattern bound.  The maintenance strategy, operating on the matcher's
:class:`~repro.matching.bounded.BoundedState`:

1. **Distance maintenance.**  Only nodes that reach the updated edge's tail
   within ``D - 1`` hops (``D`` = the largest BFS depth any pattern edge
   needs) can see their bounded successor sets change.  Each such node gets
   one fresh truncated BFS and its ``S``/``R``/``cnt`` rows are diffed in
   place.  Insertions only ever add entries (distances shrink); deletions
   only ever drop them (distances grow) — the diff handles both uniformly.
2. **Membership maintenance.**  Entry losses seed the ordinary removal
   cascade.  Entry gains seed *resurrection*: the affected closure of
   non-member candidates is collected through the reverse index ``R``,
   optimistically assumed back in, and refined downward — the greatest
   fixpoint must be approached from above or cyclic patterns lose
   mutually-dependent matches.

The paper's crossover claim (incremental wins only below ~10 % of edges
changed, versus ~30 % for plain simulation) falls out of step 1: each unit
update triggers bounded BFS over its neighbourhood, which is far more work
than the single counter touch of the simulation case.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.errors import UpdateError
from repro.graph.digraph import Graph, NodeId
from repro.graph.distance import bounded_ancestors, bounded_descendants
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    Update,
)
from repro.matching.base import MatchRelation
from repro.matching.bounded import BoundedState
from repro.pattern.pattern import Bound, Pattern

PatternEdge = tuple[str, str]


class IncrementalBoundedSimulation:
    """Maintains a bounded-simulation match relation under edge updates.

    Accepts an existing :class:`BoundedState` (e.g. from
    :func:`~repro.matching.bounded.match_bounded`) to avoid recomputing the
    initial match; otherwise builds one.
    """

    __slots__ = ("graph", "pattern", "state", "_depth_of", "_ancestor_depth", "_in_edges")

    def __init__(
        self,
        graph: Graph,
        pattern: Pattern,
        state: BoundedState | None = None,
        index=None,
    ) -> None:
        pattern.validate()
        if state is None:
            state = BoundedState(graph, pattern, index=index)
        elif state.graph is not graph or state.pattern is not pattern:
            raise UpdateError("state belongs to a different graph/pattern")
        self.graph = graph
        self.pattern = pattern
        self.state = state
        self._depth_of: dict[str, Bound] = {}
        deepest: Bound = 0
        for pattern_node in pattern.nodes():
            bounds = [bound for _, bound in pattern.out_edges(pattern_node)]
            if not bounds:
                continue
            depth = BoundedState._bfs_depth(bounds)
            self._depth_of[pattern_node] = depth
            if depth is None or deepest is None:
                deepest = None
            else:
                deepest = max(deepest, depth)
        # Ancestors within deepest-1 hops of an updated edge's tail are the
        # only nodes whose bounded reachability can change.
        self._ancestor_depth: Bound = (
            None if deepest is None else max(deepest - 1, 0)
        )
        self._in_edges: dict[str, list[PatternEdge]] = {u: [] for u in pattern.nodes()}
        for source, target, _bound in pattern.edges():
            self._in_edges[target].append((source, target))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def relation(self) -> MatchRelation:
        """Current ``M(Q,G)``."""
        return self.state.relation()

    def apply(self, update: Update, apply_to_graph: bool = True) -> None:
        """Apply one edge update to the graph *and* the match state.

        ``apply_to_graph=False`` assumes the caller already mutated the
        shared graph.  (Safe for deletions too: the set of ancestors of the
        deleted edge's tail is identical before and after the deletion —
        paths to the tail through the deleted edge would revisit the tail.)
        """
        if isinstance(update, EdgeInsertion):
            if apply_to_graph:
                update.apply(self.graph)
            if not self._depth_of:  # edge-less pattern: membership is static
                return
            affected = self._affected_sources(update.source)
            gains = self._refresh_sources(affected)
            if gains:
                self._resurrect(gains)
        elif isinstance(update, EdgeDeletion):
            if not self._depth_of:
                if apply_to_graph:
                    update.apply(self.graph)
                return
            affected = self._affected_sources(update.source)
            if apply_to_graph:
                update.apply(self.graph)
            seeds = self._refresh_sources(affected, collect_gains=False)
            self.state.removal_fixpoint(seeds)
        elif isinstance(update, (NodeInsertion, AttributeUpdate)):
            if apply_to_graph:
                update.apply(self.graph)
            self._candidacy_changed(update.node)
        elif isinstance(update, NodeDeletion):
            self._apply_node_deletion(update, apply_to_graph)
        else:
            raise UpdateError(f"unknown update type: {update!r}")

    def _apply_node_deletion(self, update: NodeDeletion, apply_to_graph: bool) -> None:
        """Node removal; with ``apply_to_graph=False`` the caller must have
        already routed the incident edge deletions through :meth:`apply`."""
        if apply_to_graph:
            node = update.node
            for successor in list(self.graph.successors(node)):
                self.apply(EdgeDeletion(node, successor))
            for predecessor in list(self.graph.predecessors(node)):
                if predecessor != node:
                    self.apply(EdgeDeletion(predecessor, node))
            self._node_removed(node)
            update.apply(self.graph)
        else:
            self._node_removed(update.node)

    def apply_batch(self, updates: Sequence[Update], apply_to_graph: bool = True) -> None:
        """Apply a batch in order (each update maintained incrementally)."""
        for update in updates:
            self.apply(update, apply_to_graph=apply_to_graph)

    # ------------------------------------------------------------------
    # distance maintenance
    # ------------------------------------------------------------------
    def _affected_sources(self, tail: NodeId) -> list[NodeId]:
        """``tail`` plus every node reaching it within the ancestor depth.

        For deletions this must run on the *old* graph (callers do), since
        ancestors that used the doomed edge are exactly the ones to check.
        """
        if self._ancestor_depth == 0:
            return [tail]
        ancestors = bounded_ancestors(self.graph, tail, self._ancestor_depth)
        out = [tail]
        out.extend(node for node in ancestors if node != tail)
        return out

    def _refresh_sources(
        self, sources: Iterable[NodeId], collect_gains: bool = True
    ) -> list[tuple[str, NodeId]]:
        """Re-run truncated BFS for each source and diff its S/R/cnt rows.

        Returns seeds: on gain-collection (insertions) the candidate pairs
        that acquired new bounded successors; otherwise (deletions) the
        member pairs whose counters dropped to zero.
        """
        state = self.state
        seeds: list[tuple[str, NodeId]] = []
        for source in sources:
            relevant = [
                u for u, depth in self._depth_of.items() if source in state.cand[u]
            ]
            if not relevant:
                continue
            depth = BoundedState._bfs_depth(self._depth_of[u] for u in relevant)
            reach = bounded_descendants(self.graph, source, depth)
            for pattern_node in relevant:
                changed = self._diff_row(pattern_node, source, reach)
                if collect_gains:
                    if changed > 0 and source not in state.sim[pattern_node]:
                        seeds.append((pattern_node, source))
                else:
                    if changed < 0 and source in state.sim[pattern_node]:
                        if not state.satisfies_all_edges(pattern_node, source):
                            seeds.append((pattern_node, source))
        return seeds

    def _diff_row(
        self, pattern_node: str, source: NodeId, reach: dict[NodeId, int]
    ) -> int:
        """Bring S/R/cnt rows of (pattern_node, source) in line with ``reach``.

        Returns +gains, -losses (net entry count change across the node's
        out-edges) so callers know whether to seed joins or removals.
        """
        state = self.state
        net = 0
        for edge_target, bound in self.pattern.out_edges(pattern_node):
            edge = (pattern_node, edge_target)
            row = state.S[edge][source]
            child_cand = state.cand[edge_target]
            child_sim = state.sim[edge_target]
            fresh: dict[NodeId, int] = {
                node: dist
                for node, dist in reach.items()
                if node in child_cand and (bound is None or dist <= bound)
            }
            for node in list(row):
                if node not in fresh:
                    del row[node]
                    state.R[edge][node].discard(source)
                    if node in child_sim:
                        state.cnt[edge][source] -= 1
                    net -= 1
            for node, dist in fresh.items():
                if node not in row:
                    row[node] = dist
                    state.R[edge].setdefault(node, set()).add(source)
                    if node in child_sim:
                        state.cnt[edge][source] += 1
                    net += 1
                elif row[node] != dist:
                    row[node] = dist
        return net

    # ------------------------------------------------------------------
    # node-level updates: candidacy changes
    # ------------------------------------------------------------------
    def _candidacy_changed(self, node: NodeId) -> None:
        """Re-evaluate every pattern predicate on ``node`` and repair the
        candidate sets, bounded successor index and membership."""
        state = self.state
        attrs = self.graph.attrs(node)
        join_seeds: list[tuple[str, NodeId]] = []
        for pattern_node in self.pattern.nodes():
            holds = self.pattern.predicate(pattern_node).evaluate(attrs)
            was_candidate = node in state.cand[pattern_node]
            if holds == was_candidate:
                continue
            if holds:
                self._enter_candidacy(pattern_node, node)
                join_seeds.append((pattern_node, node))
            else:
                self._leave_candidacy(pattern_node, node)
        if join_seeds:
            self._resurrect(join_seeds)

    def _enter_candidacy(self, pattern_node: str, node: NodeId) -> None:
        state = self.state
        state.cand[pattern_node].add(node)
        # Rows for the node's own out-going requirements.
        if pattern_node in self._depth_of:
            reach = bounded_descendants(
                self.graph, node, self._depth_of[pattern_node]
            )
            state._fill_entries(pattern_node, node, reach)
        # The node as a bounded successor of existing candidates.
        in_edges = self._in_edges[pattern_node]
        if in_edges:
            in_bounds = [
                self.pattern.bound(source, pattern_node) for source, _ in in_edges
            ]
            from repro.matching.bounded import BoundedState

            ancestors = bounded_ancestors(
                self.graph, node, BoundedState._bfs_depth(in_bounds)
            )
            for edge in in_edges:
                bound = self.pattern.bound(edge[0], pattern_node)
                source_cand = state.cand[edge[0]]
                for upstream, dist in ancestors.items():
                    if upstream in source_cand and (bound is None or dist <= bound):
                        state.S[edge][upstream][node] = dist
                        state.R[edge].setdefault(node, set()).add(upstream)
                        # cnt counts sim members only; the node is not a
                        # member yet — add_member bumps counters if it joins.

    def _leave_candidacy(self, pattern_node: str, node: NodeId) -> None:
        state = self.state
        if node in state.sim[pattern_node]:
            state.force_remove(pattern_node, node)  # adjusts upstream counters
        state.cand[pattern_node].discard(node)
        for edge_target, _bound in self.pattern.out_edges(pattern_node):
            edge = (pattern_node, edge_target)
            row = state.S[edge].pop(node, {})
            for reached in row:
                state.R[edge][reached].discard(node)
            state.cnt[edge].pop(node, None)
        for edge in self._in_edges[pattern_node]:
            for upstream in state.R[edge].pop(node, set()):
                state.S[edge][upstream].pop(node, None)

    def _node_removed(self, node: NodeId) -> None:
        """Drop a node whose incident edges are already gone."""
        for pattern_node in self.pattern.nodes():
            if node in self.state.cand[pattern_node]:
                self._leave_candidacy(pattern_node, node)

    # ------------------------------------------------------------------
    # membership maintenance: optimistic resurrection
    # ------------------------------------------------------------------
    def _resurrect(self, seeds: Iterable[tuple[str, NodeId]]) -> None:
        state = self.state
        affected: dict[str, set[NodeId]] = {u: set() for u in self.pattern.nodes()}
        frontier: deque[tuple[str, NodeId]] = deque()
        for pattern_node, data_node in seeds:
            if (
                data_node not in state.sim[pattern_node]
                and data_node not in affected[pattern_node]
            ):
                affected[pattern_node].add(data_node)
                frontier.append((pattern_node, data_node))
        while frontier:
            pattern_node, data_node = frontier.popleft()
            for edge in self._in_edges[pattern_node]:
                parent_pattern = edge[0]
                for upstream in state.R[edge].get(data_node, ()):
                    if (
                        upstream not in state.sim[parent_pattern]
                        and upstream not in affected[parent_pattern]
                    ):
                        affected[parent_pattern].add(upstream)
                        frontier.append((parent_pattern, upstream))

        opt_cnt: dict[PatternEdge, dict[NodeId, int]] = {}
        removal: deque[tuple[str, NodeId]] = deque()
        for pattern_node, members in affected.items():
            for data_node in members:
                for edge_target, _bound in self.pattern.out_edges(pattern_node):
                    edge = (pattern_node, edge_target)
                    live = sum(
                        1
                        for node in state.S[edge][data_node]
                        if node in state.sim[edge_target]
                        or node in affected[edge_target]
                    )
                    opt_cnt.setdefault(edge, {})[data_node] = live
                    if live == 0:
                        removal.append((pattern_node, data_node))
        while removal:
            pattern_node, data_node = removal.popleft()
            if data_node not in affected[pattern_node]:
                continue
            failing = any(
                opt_cnt.get((pattern_node, edge_target), {}).get(data_node, 1) == 0
                for edge_target, _bound in self.pattern.out_edges(pattern_node)
            )
            if not failing:
                continue
            affected[pattern_node].remove(data_node)
            for edge in self._in_edges[pattern_node]:
                counts = opt_cnt.get(edge)
                if counts is None:
                    continue
                parent_pattern = edge[0]
                for upstream in state.R[edge].get(data_node, ()):
                    if upstream in counts and upstream in affected[parent_pattern]:
                        counts[upstream] -= 1
                        if counts[upstream] == 0:
                            removal.append((parent_pattern, upstream))

        for pattern_node, members in affected.items():
            for data_node in members:
                state.add_member(pattern_node, data_node)
