"""Edge updates: the ``ΔG`` of the incremental computation module.

The paper maintains match results under "unit update (single edge
insertion/deletion) as well as batch updates (a list of edge
insertions/deletions)".  This module defines those update values, applies
them to graphs, and generates random-but-valid update batches for the
benchmarks (each update in a generated batch is applicable in sequence).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from repro.errors import UpdateError
from repro.graph.digraph import Graph, NodeId


@dataclass(frozen=True)
class EdgeInsertion:
    """Insert the directed edge ``source -> target``."""

    source: NodeId
    target: NodeId

    def apply(self, graph: Graph) -> None:
        if not graph.has_node(self.source) or not graph.has_node(self.target):
            raise UpdateError(f"insertion endpoints missing: {self}")
        if graph.has_edge(self.source, self.target):
            raise UpdateError(f"edge already present: {self}")
        graph.add_edge(self.source, self.target)

    def inverted(self) -> "EdgeDeletion":
        return EdgeDeletion(self.source, self.target)


@dataclass(frozen=True)
class EdgeDeletion:
    """Delete the directed edge ``source -> target``."""

    source: NodeId
    target: NodeId

    def apply(self, graph: Graph) -> None:
        if not graph.has_edge(self.source, self.target):
            raise UpdateError(f"edge not present: {self}")
        graph.remove_edge(self.source, self.target)

    def inverted(self) -> "EdgeInsertion":
        return EdgeInsertion(self.source, self.target)


@dataclass(frozen=True)
class NodeInsertion:
    """Insert a fresh node with attributes (no incident edges yet).

    ``attrs_items`` is a tuple of ``(name, value)`` pairs so the update
    value stays hashable; build instances with :meth:`with_attrs`.
    """

    node: NodeId
    attrs_items: tuple = ()

    @classmethod
    def with_attrs(cls, node: NodeId, /, **attrs: object) -> "NodeInsertion":
        return cls(node, tuple(sorted(attrs.items())))

    @property
    def attrs(self) -> dict:
        return dict(self.attrs_items)

    def apply(self, graph: Graph) -> None:
        if graph.has_node(self.node):
            raise UpdateError(f"node already present: {self.node!r}")
        graph.add_node(self.node, **self.attrs)

    def inverted(self) -> "NodeDeletion":
        return NodeDeletion(self.node)


@dataclass(frozen=True)
class NodeDeletion:
    """Delete a node (and, at the graph level, its incident edges).

    Incremental maintainers require incident edges to be deleted first;
    :func:`decompose` produces exactly that primitive sequence, and the
    maintainers self-decompose when they own the graph mutation.
    """

    node: NodeId

    def apply(self, graph: Graph) -> None:
        if not graph.has_node(self.node):
            raise UpdateError(f"node not present: {self.node!r}")
        graph.remove_node(self.node)

    def inverted(self) -> "NodeInsertion":
        raise UpdateError(
            "NodeDeletion cannot be inverted without the deleted attributes/edges"
        )


@dataclass(frozen=True)
class AttributeUpdate:
    """Set one attribute of a node (search conditions may start or stop
    holding, so match candidacy changes)."""

    node: NodeId
    attr: str
    value: object

    def apply(self, graph: Graph) -> None:
        if not graph.has_node(self.node):
            raise UpdateError(f"node not present: {self.node!r}")
        # Route through the counting write API so every version-keyed cache
        # (attribute index, reach index, frozen snapshots) sees the change.
        graph.update_attrs(self.node, **{self.attr: self.value})

    def inverted(self) -> "AttributeUpdate":
        raise UpdateError(
            "AttributeUpdate cannot be inverted without the previous value"
        )


Update = Union[EdgeInsertion, EdgeDeletion, NodeInsertion, NodeDeletion, AttributeUpdate]


def decompose(graph: Graph, update: Update) -> list[Update]:
    """Split an update into maintainer-friendly primitives.

    ``NodeDeletion`` becomes its incident edge deletions (computed against
    the *current* graph) followed by a bare node deletion; everything else
    passes through unchanged.  The engine applies primitives one at a time
    so every maintainer observes a consistent sequence.
    """
    if not isinstance(update, NodeDeletion):
        return [update]
    if not graph.has_node(update.node):
        raise UpdateError(f"node not present: {update.node!r}")
    primitives: list[Update] = []
    for successor in graph.successors(update.node):
        primitives.append(EdgeDeletion(update.node, successor))
    for predecessor in graph.predecessors(update.node):
        if predecessor != update.node:  # a self-loop is already queued once
            primitives.append(EdgeDeletion(predecessor, update.node))
    primitives.append(update)
    return primitives


def apply_updates(graph: Graph, updates: Iterable[Update]) -> int:
    """Apply updates in order; returns how many were applied.

    Raises :class:`UpdateError` on the first inapplicable update (earlier
    updates stay applied — callers wanting atomicity should work on a copy).
    """
    count = 0
    for update in updates:
        update.apply(graph)
        count += 1
    return count


def invert_batch(updates: Sequence[Update]) -> list[Update]:
    """The batch that undoes ``updates`` (reversed order, each inverted)."""
    return [update.inverted() for update in reversed(updates)]


def random_insertions(graph: Graph, count: int, seed: int = 0) -> list[EdgeInsertion]:
    """``count`` distinct edge insertions valid against ``graph``.

    Sampled uniformly from the non-edges between existing nodes.  Raises
    :class:`UpdateError` when the graph is too dense to supply ``count``
    non-edges.
    """
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise UpdateError("need at least 2 nodes to insert edges")
    capacity = len(nodes) * (len(nodes) - 1) - graph.num_edges
    if count > capacity:
        raise UpdateError(f"graph has only {capacity} free node pairs, need {count}")
    rng = random.Random(seed)
    chosen: set[tuple[NodeId, NodeId]] = set()
    out: list[EdgeInsertion] = []
    while len(out) < count:
        source, target = rng.sample(nodes, 2)
        pair = (source, target)
        if pair in chosen or graph.has_edge(source, target):
            continue
        chosen.add(pair)
        out.append(EdgeInsertion(source, target))
    return out


def random_deletions(graph: Graph, count: int, seed: int = 0) -> list[EdgeDeletion]:
    """``count`` distinct edge deletions sampled from the current edges."""
    edges = list(graph.edges())
    if count > len(edges):
        raise UpdateError(f"graph has only {len(edges)} edges, need {count}")
    rng = random.Random(seed)
    picked = rng.sample(edges, count)
    return [EdgeDeletion(source, target) for source, target in picked]


def random_updates(
    graph: Graph,
    count: int,
    seed: int = 0,
    insert_ratio: float = 0.5,
) -> list[Update]:
    """A mixed batch of insertions and deletions, valid *in sequence*.

    Validity under mixing is order-sensitive (an insertion may re-add an
    edge a deletion just removed), so the batch is generated by simulating
    application on a scratch copy of the graph.
    """
    if not 0.0 <= insert_ratio <= 1.0:
        raise UpdateError(f"insert_ratio must be in [0, 1]: {insert_ratio}")
    rng = random.Random(seed)
    scratch = graph.copy()
    nodes = list(scratch.nodes())
    if len(nodes) < 2:
        raise UpdateError("need at least 2 nodes to generate updates")
    out: list[Update] = []
    attempts = 0
    max_attempts = count * 100 + 1000
    while len(out) < count:
        attempts += 1
        if attempts > max_attempts:
            raise UpdateError("could not generate a valid update batch (graph too small?)")
        if rng.random() < insert_ratio:
            source, target = rng.sample(nodes, 2)
            if scratch.has_edge(source, target):
                continue
            update: Update = EdgeInsertion(source, target)
        else:
            edges = list(scratch.edges())
            if not edges:
                continue
            source, target = edges[rng.randrange(len(edges))]
            update = EdgeDeletion(source, target)
        update.apply(scratch)
        out.append(update)
    return out
