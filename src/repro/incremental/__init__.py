"""Incremental computation: edge updates and match maintenance."""

from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.inc_simulation import IncrementalSimulation
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    Update,
    apply_updates,
    decompose,
    invert_batch,
    random_deletions,
    random_insertions,
    random_updates,
)

__all__ = [
    "IncrementalBoundedSimulation",
    "IncrementalSimulation",
    "AttributeUpdate",
    "EdgeDeletion",
    "EdgeInsertion",
    "NodeDeletion",
    "NodeInsertion",
    "Update",
    "apply_updates",
    "decompose",
    "invert_batch",
    "random_deletions",
    "random_insertions",
    "random_updates",
]
