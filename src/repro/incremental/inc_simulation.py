"""Incremental graph simulation (the SIGMOD 2011 module, simulation case).

Maintains ``M(Q,G)`` under edge updates by touching only the *affected
area* instead of recomputing from scratch:

* **deletion** can only shrink the relation: decrement the one counter the
  edge supported and cascade removals through the usual worklist;
* **insertion** can only grow it: collect the candidate pairs that could be
  resurrected (the reverse closure of the inserted edge's tail over
  non-member candidates), optimistically assume they all rejoin, and run the
  removal refinement *inside that set only* — this finds mutually-dependent
  resurrections on cyclic patterns that a simple cascading join would miss,
  because the greatest fixpoint must be approached from above.

Counters are maintained for every *candidate* (not just current members),
which is what makes the resurrection check O(affected area).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

from repro.errors import EvaluationError, UpdateError
from repro.graph.digraph import Graph, NodeId
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    Update,
)
from repro.matching.base import MatchRelation
from repro.matching.simulation import simulation_candidates
from repro.pattern.pattern import Pattern

PatternEdge = tuple[str, str]


class IncrementalSimulation:
    """Maintains a plain-simulation match relation under edge updates.

    >>> from repro.graph.digraph import Graph
    >>> from repro.pattern.pattern import Pattern
    >>> from repro.incremental.updates import EdgeInsertion
    >>> g = Graph.from_edges([], nodes={"a": {"l": "X"}, "b": {"l": "Y"}})
    >>> q = Pattern(); q.add_node("X", 'l == "X"'); q.add_node("Y", 'l == "Y"')
    >>> q.add_edge("X", "Y", 1)
    >>> inc = IncrementalSimulation(g, q)
    >>> inc.relation().is_empty
    True
    >>> inc.apply(EdgeInsertion("a", "b"))
    >>> sorted(inc.relation().pairs())
    [('X', 'a'), ('Y', 'b')]
    """

    __slots__ = ("graph", "pattern", "cand", "sim", "cnt", "_in_edges", "_out_edges")

    def __init__(self, graph: Graph, pattern: Pattern, index=None) -> None:
        pattern.validate()
        self.graph = graph
        self.pattern = pattern
        self.cand: dict[str, set[NodeId]] = simulation_candidates(
            graph, pattern, index=index
        )
        self.sim: dict[str, set[NodeId]] = {u: set(vs) for u, vs in self.cand.items()}
        self.cnt: dict[PatternEdge, dict[NodeId, int]] = {}
        self._in_edges: dict[str, list[PatternEdge]] = {u: [] for u in pattern.nodes()}
        self._out_edges: dict[str, list[PatternEdge]] = {u: [] for u in pattern.nodes()}
        for source, target, _bound in pattern.edges():
            edge = (source, target)
            self._in_edges[target].append(edge)
            self._out_edges[source].append(edge)
        seeds: list[tuple[str, NodeId]] = []
        for source, target, _bound in pattern.edges():
            edge = (source, target)
            child = self.sim[target]
            counts: dict[NodeId, int] = {}
            for node in self.cand[source]:
                counts[node] = sum(1 for s in graph.successors(node) if s in child)
                if counts[node] == 0:
                    seeds.append((source, node))
            self.cnt[edge] = counts
        self._removal_fixpoint(seeds)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def relation(self) -> MatchRelation:
        """Current ``M(Q,G)`` (paper semantics: total or empty)."""
        return MatchRelation.from_sets(self.pattern, self.sim)

    def apply(self, update: Update, apply_to_graph: bool = True) -> None:
        """Apply one edge update to the graph *and* the match state.

        ``apply_to_graph=False`` assumes the caller already mutated the
        shared graph (the engine applies each update once and then informs
        every maintainer); state maintenance alone is performed.
        """
        if isinstance(update, EdgeInsertion):
            if apply_to_graph:
                update.apply(self.graph)
            self._after_insertion(update.source, update.target)
        elif isinstance(update, EdgeDeletion):
            if apply_to_graph:
                update.apply(self.graph)
            self._after_deletion(update.source, update.target)
        elif isinstance(update, (NodeInsertion, AttributeUpdate)):
            if apply_to_graph:
                update.apply(self.graph)
            self._candidacy_changed(update.node)
        elif isinstance(update, NodeDeletion):
            self._apply_node_deletion(update, apply_to_graph)
        else:
            raise UpdateError(f"unknown update type: {update!r}")

    def _apply_node_deletion(self, update: NodeDeletion, apply_to_graph: bool) -> None:
        """Node removal; with ``apply_to_graph=False`` the caller must have
        already routed the incident edge deletions through :meth:`apply`
        (see ``updates.decompose``)."""
        if apply_to_graph:
            node = update.node
            for successor in list(self.graph.successors(node)):
                self.apply(EdgeDeletion(node, successor))
            for predecessor in list(self.graph.predecessors(node)):
                if predecessor != node:
                    self.apply(EdgeDeletion(predecessor, node))
            self._node_removed(node)
            update.apply(self.graph)
        else:
            self._node_removed(update.node)

    def apply_batch(self, updates: Sequence[Update], apply_to_graph: bool = True) -> None:
        """Apply a batch in order (each update maintained incrementally)."""
        for update in updates:
            self.apply(update, apply_to_graph=apply_to_graph)

    # ------------------------------------------------------------------
    # deletion: counters down, cascade removals
    # ------------------------------------------------------------------
    def _after_deletion(self, tail: NodeId, head: NodeId) -> None:
        seeds: list[tuple[str, NodeId]] = []
        for edge in self._edges_touching(tail, head):
            source_pattern, target_pattern = edge
            counts = self.cnt[edge]
            self_counts = counts.get(tail)
            if self_counts is None or head not in self.sim[target_pattern]:
                continue
            counts[tail] -= 1
            if counts[tail] == 0 and tail in self.sim[source_pattern]:
                seeds.append((source_pattern, tail))
        self._removal_fixpoint(seeds)

    def _edges_touching(self, tail: NodeId, head: NodeId) -> list[PatternEdge]:
        """Pattern edges whose counter for ``tail`` may reference ``head``."""
        out = []
        for edge, counts in self.cnt.items():
            if tail in counts and head in self.cand[edge[1]]:
                out.append(edge)
        return out

    def _removal_fixpoint(self, seeds: Iterable[tuple[str, NodeId]]) -> None:
        queue: deque[tuple[str, NodeId]] = deque(seeds)
        while queue:
            pattern_node, data_node = queue.popleft()
            if data_node not in self.sim[pattern_node]:
                continue
            if not self._fails_some_edge(pattern_node, data_node):
                continue
            self.sim[pattern_node].remove(data_node)
            for edge in self._in_edges[pattern_node]:
                counts = self.cnt[edge]
                parent_pattern = edge[0]
                for upstream in self.graph.predecessors(data_node):
                    if upstream in counts:
                        counts[upstream] -= 1
                        if counts[upstream] == 0 and upstream in self.sim[parent_pattern]:
                            queue.append((parent_pattern, upstream))

    def _fails_some_edge(self, pattern_node: str, data_node: NodeId) -> bool:
        for edge in self._out_edges[pattern_node]:
            if self.cnt[edge].get(data_node, 0) == 0:
                return True
        return False

    def _force_remove(self, pattern_node: str, data_node: NodeId) -> None:
        """Unconditional membership removal (predicate stopped holding),
        then the ordinary guarded cascade for anything it destabilizes."""
        if data_node not in self.sim[pattern_node]:
            return
        self.sim[pattern_node].remove(data_node)
        # A node being deleted may already be gone from the graph; its
        # incident edges were removed first, so it has no predecessors.
        predecessors = (
            list(self.graph.predecessors(data_node))
            if self.graph.has_node(data_node)
            else []
        )
        seeds: list[tuple[str, NodeId]] = []
        for edge in self._in_edges[pattern_node]:
            counts = self.cnt[edge]
            parent_pattern = edge[0]
            for upstream in predecessors:
                if upstream in counts:
                    counts[upstream] -= 1
                    if counts[upstream] == 0 and upstream in self.sim[parent_pattern]:
                        seeds.append((parent_pattern, upstream))
        self._removal_fixpoint(seeds)

    # ------------------------------------------------------------------
    # node-level updates: candidacy changes
    # ------------------------------------------------------------------
    def _candidacy_changed(self, node: NodeId) -> None:
        """Re-evaluate every pattern predicate on ``node`` and repair
        candidate sets, counters and membership accordingly."""
        attrs = self.graph.attrs(node)
        join_seeds: list[tuple[str, NodeId]] = []
        for pattern_node in self.pattern.nodes():
            holds = self.pattern.predicate(pattern_node).evaluate(attrs)
            was_candidate = node in self.cand[pattern_node]
            if holds == was_candidate:
                continue
            if holds:
                self.cand[pattern_node].add(node)
                for edge in self._out_edges[pattern_node]:
                    child = self.sim[edge[1]]
                    self.cnt[edge][node] = sum(
                        1 for s in self.graph.successors(node) if s in child
                    )
                join_seeds.append((pattern_node, node))
            else:
                self._force_remove(pattern_node, node)
                self.cand[pattern_node].discard(node)
                for edge in self._out_edges[pattern_node]:
                    self.cnt[edge].pop(node, None)
        if join_seeds:
            self._resurrect(join_seeds)

    def _node_removed(self, node: NodeId) -> None:
        """Drop a node whose incident edges are already gone."""
        for pattern_node in self.pattern.nodes():
            if node in self.sim[pattern_node]:
                self._force_remove(pattern_node, node)
            if node in self.cand[pattern_node]:
                self.cand[pattern_node].discard(node)
                for edge in self._out_edges[pattern_node]:
                    self.cnt[edge].pop(node, None)

    # ------------------------------------------------------------------
    # insertion: counters up, optimistic local resurrection
    # ------------------------------------------------------------------
    def _after_insertion(self, tail: NodeId, head: NodeId) -> None:
        join_seeds: list[tuple[str, NodeId]] = []
        for edge in self._edges_touching(tail, head):
            source_pattern, target_pattern = edge
            if head in self.sim[target_pattern]:
                self.cnt[edge][tail] += 1
            if tail not in self.sim[source_pattern]:
                join_seeds.append((source_pattern, tail))
        if join_seeds:
            self._resurrect(join_seeds)

    def _resurrect(self, seeds: Iterable[tuple[str, NodeId]]) -> None:
        """Optimistic local greatest-fixpoint over the affected closure."""
        affected: dict[str, set[NodeId]] = {u: set() for u in self.pattern.nodes()}
        frontier: deque[tuple[str, NodeId]] = deque()
        for pattern_node, data_node in seeds:
            if data_node not in affected[pattern_node]:
                affected[pattern_node].add(data_node)
                frontier.append((pattern_node, data_node))
        while frontier:
            pattern_node, data_node = frontier.popleft()
            for edge in self._in_edges[pattern_node]:
                parent_pattern = edge[0]
                for upstream in self.graph.predecessors(data_node):
                    if (
                        upstream in self.cand[parent_pattern]
                        and upstream not in self.sim[parent_pattern]
                        and upstream not in affected[parent_pattern]
                    ):
                        affected[parent_pattern].add(upstream)
                        frontier.append((parent_pattern, upstream))

        # Optimistically assume every affected candidate rejoins, then refine.
        opt_cnt: dict[PatternEdge, dict[NodeId, int]] = {}
        removal: deque[tuple[str, NodeId]] = deque()
        for source_pattern, members in affected.items():
            for data_node in members:
                for edge in self._out_edges[source_pattern]:
                    target_pattern = edge[1]
                    live = self.sim[target_pattern] | affected[target_pattern]
                    count = sum(
                        1 for s in self.graph.successors(data_node) if s in live
                    )
                    opt_cnt.setdefault(edge, {})[data_node] = count
                    if count == 0:
                        removal.append((source_pattern, data_node))
        while removal:
            pattern_node, data_node = removal.popleft()
            if data_node not in affected[pattern_node]:
                continue
            if not any(
                opt_cnt.get(edge, {}).get(data_node, 1) == 0
                for edge in self._out_edges[pattern_node]
            ):
                continue
            affected[pattern_node].remove(data_node)
            for edge in self._in_edges[pattern_node]:
                parent_pattern = edge[0]
                counts = opt_cnt.get(edge)
                if counts is None:
                    continue
                for upstream in self.graph.predecessors(data_node):
                    if upstream in counts and upstream not in self.sim[parent_pattern]:
                        counts[upstream] -= 1
                        if counts[upstream] == 0 and upstream in affected[parent_pattern]:
                            removal.append((parent_pattern, upstream))

        # Survivors join; bump the real counters of upstream candidates.
        for pattern_node, members in affected.items():
            for data_node in members:
                self.sim[pattern_node].add(data_node)
        for pattern_node, members in affected.items():
            for data_node in members:
                for edge in self._in_edges[pattern_node]:
                    counts = self.cnt[edge]
                    for upstream in self.graph.predecessors(data_node):
                        if upstream in counts:
                            counts[upstream] += 1

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Recompute counters from scratch and compare (test support)."""
        for (source_pattern, target_pattern), counts in self.cnt.items():
            child = self.sim[target_pattern]
            if set(counts) != self.cand[source_pattern]:
                raise EvaluationError(f"cnt keys out of sync for {(source_pattern, target_pattern)}")
            for data_node, value in counts.items():
                expected = sum(
                    1 for s in self.graph.successors(data_node) if s in child
                )
                if value != expected:
                    raise EvaluationError(
                        f"cnt[{source_pattern}->{target_pattern}][{data_node!r}] "
                        f"= {value}, expected {expected}"
                    )
        for pattern_node, members in self.sim.items():
            for data_node in members:
                if self._fails_some_edge(pattern_node, data_node):
                    raise EvaluationError(
                        f"member fails an edge: ({pattern_node!r}, {data_node!r})"
                    )
