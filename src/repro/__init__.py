"""Reproduction of "ExpFinder: Finding Experts by Graph Pattern Matching".

Public API highlights:

* :class:`repro.graph.Graph` and generators — social-network substrate;
* :class:`repro.pattern.Pattern` / :class:`repro.pattern.PatternBuilder` —
  bounded-simulation queries with search conditions;
* :func:`repro.matching.match_bounded` / ``match_simulation`` — the matchers;
* :mod:`repro.ranking` — top-K experts by social impact;
* :mod:`repro.incremental` — maintain matches under edge updates;
* :mod:`repro.compression` — query-preserving graph compression;
* :class:`repro.engine.QueryEngine` and :class:`repro.expfinder.ExpFinder` —
  the assembled system.
"""

from repro.errors import ReproError
from repro.graph import Graph
from repro.matching import MatchRelation, MatchResult, match_bounded, match_simulation
from repro.pattern import Pattern, PatternBuilder
from repro.ranking import top_k

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Graph",
    "MatchRelation",
    "MatchResult",
    "match_bounded",
    "match_simulation",
    "Pattern",
    "PatternBuilder",
    "top_k",
    "__version__",
]
