"""Pluggable ranking metrics.

The paper: "The ranking function f() assesses the social impact in terms of
node distance ... Note that other metrics can be readily supported by
ExpFinder."  This module makes that sentence true for the reproduction: a
:class:`RankingMetric` scores matches over the result graph, and the engine
accepts any of them.  All metrics are normalized to *lower is better* so
top-K selection is metric-agnostic.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.errors import RankingError
from repro.graph.digraph import NodeId
from repro.graph.distance import weighted_distances
from repro.matching.result_graph import ResultGraph
from repro.ranking.social_impact import rank_detail

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.ranking.topk import RankingContext


class RankingMetric(ABC):
    """Scores one match of the output node; lower scores rank higher."""

    name = "metric"

    @abstractmethod
    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        """The (lower-is-better) score of ``node`` in ``result_graph``."""

    def score_bulk(self, context: "RankingContext", node: NodeId) -> float:
        """Score against a bulk :class:`~repro.ranking.topk.RankingContext`.

        Must return exactly what :meth:`score` would for the result graph
        the context snapshotted.  The default delegates to :meth:`score`;
        the built-in metrics override it to draw from the context's
        memoized Dijkstra runs so bulk top-K shares distance work across
        metrics and calls.
        """
        return self.score(context.result_graph, node)

    def bound(self, context: "RankingContext", node: NodeId) -> float:
        """Cheap admissible bound: never above :meth:`score_bulk`.

        Bulk top-K fully scores candidates lazily in bound order and skips
        every candidate whose bound exceeds the k-th best confirmed score.
        The default (``-inf``) disables pruning, which is always sound.
        """
        return -math.inf

    def rank_all(
        self, result_graph: ResultGraph, pattern_node: str | None = None
    ) -> list[tuple[NodeId, float]]:
        """All matches of ``pattern_node`` sorted best-first."""
        target = pattern_node or result_graph.pattern.output_node
        if target is None:
            raise RankingError("pattern has no output node and none was given")
        scored = [
            (node, self.score(result_graph, node))
            for node in result_graph.nodes()
            if target in result_graph.matched_pattern_nodes(node)
        ]
        scored.sort(key=lambda pair: (pair[1], repr(pair[0])))
        return scored


class SocialImpactMetric(RankingMetric):
    """The paper's distance-based metric (default)."""

    name = "social-impact"

    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        return rank_detail(result_graph, node).rank

    def score_bulk(self, context: "RankingContext", node: NodeId) -> float:
        return context.detail(node).rank

    def bound(self, context: "RankingContext", node: NodeId) -> float:
        return context.impact_bound(node)


class ClosenessMetric(RankingMetric):
    """Classic closeness centrality over the result graph (out-direction).

    Closeness is higher-is-better, so the score is its negation.  Nodes
    reaching nothing score ``+inf``.
    """

    name = "closeness"

    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        if node not in result_graph:
            raise RankingError(f"{node!r} is not a node of the result graph")
        distances = weighted_distances(result_graph.out_adjacency(), node)
        return self._from_distances(distances)

    def score_bulk(self, context: "RankingContext", node: NodeId) -> float:
        return self._from_distances(context.distances_from(node))

    def bound(self, context: "RankingContext", node: NodeId) -> float:
        # Every reachable node is at least the minimum outgoing weight
        # away, so closeness <= 1/w_min, i.e. the score >= -1/w_min; a
        # node with no out-edges reaches nothing, making +inf exact.
        out_row = context.out_adj.get(node)
        if not out_row:
            return math.inf
        return -1.0 / min(out_row.values())

    @staticmethod
    def _from_distances(distances: dict[NodeId, float]) -> float:
        total = sum(distances.values())
        if total == 0:
            return math.inf
        return -(len(distances) / total)


class HarmonicMetric(RankingMetric):
    """Harmonic centrality: sum of inverse distances, negated."""

    name = "harmonic"

    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        if node not in result_graph:
            raise RankingError(f"{node!r} is not a node of the result graph")
        out = weighted_distances(result_graph.out_adjacency(), node)
        back = weighted_distances(result_graph.in_adjacency(), node)
        return self._from_distances(out, back)

    def score_bulk(self, context: "RankingContext", node: NodeId) -> float:
        return self._from_distances(
            context.distances_from(node), context.distances_to(node)
        )

    # No useful cheap bound exists without knowing how many nodes are
    # reachable, so harmonic keeps the default (no pruning, still exact).

    @staticmethod
    def _from_distances(
        out: dict[NodeId, float], back: dict[NodeId, float]
    ) -> float:
        total = sum(1.0 / d for d in out.values()) + sum(1.0 / d for d in back.values())
        return -total


class DegreeMetric(RankingMetric):
    """Result-graph degree (in + out), negated; crude but cheap."""

    name = "degree"

    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        if node not in result_graph:
            raise RankingError(f"{node!r} is not a node of the result graph")
        out_deg = len(result_graph.out_adjacency().get(node, {}))
        in_deg = len(result_graph.in_adjacency().get(node, {}))
        return -(out_deg + in_deg)

    def score_bulk(self, context: "RankingContext", node: NodeId) -> float:
        return -(
            len(context.out_adj.get(node, {})) + len(context.in_adj.get(node, {}))
        )

    def bound(self, context: "RankingContext", node: NodeId) -> float:
        # The score itself is O(1) on the snapshot — the bound is exact,
        # so top-K selection never "fully scores" anything extra.
        return self.score_bulk(context, node)


#: Registry used by the CLI's ``--metric`` option and the engine.
METRICS: dict[str, RankingMetric] = {
    metric.name: metric
    for metric in (
        SocialImpactMetric(),
        ClosenessMetric(),
        HarmonicMetric(),
        DegreeMetric(),
    )
}


def get_metric(name: str) -> RankingMetric:
    """Look up a metric by name; raises RankingError for unknown names."""
    try:
        return METRICS[name]
    except KeyError:
        known = ", ".join(sorted(METRICS))
        raise RankingError(f"unknown metric {name!r} (known: {known})") from None
