"""Pluggable ranking metrics.

The paper: "The ranking function f() assesses the social impact in terms of
node distance ... Note that other metrics can be readily supported by
ExpFinder."  This module makes that sentence true for the reproduction: a
:class:`RankingMetric` scores matches over the result graph, and the engine
accepts any of them.  All metrics are normalized to *lower is better* so
top-K selection is metric-agnostic.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import RankingError
from repro.graph.digraph import NodeId
from repro.graph.distance import weighted_distances
from repro.matching.result_graph import ResultGraph
from repro.ranking.social_impact import rank_detail


class RankingMetric(ABC):
    """Scores one match of the output node; lower scores rank higher."""

    name = "metric"

    @abstractmethod
    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        """The (lower-is-better) score of ``node`` in ``result_graph``."""

    def rank_all(
        self, result_graph: ResultGraph, pattern_node: str | None = None
    ) -> list[tuple[NodeId, float]]:
        """All matches of ``pattern_node`` sorted best-first."""
        target = pattern_node or result_graph.pattern.output_node
        if target is None:
            raise RankingError("pattern has no output node and none was given")
        scored = [
            (node, self.score(result_graph, node))
            for node in result_graph.nodes()
            if target in result_graph.matched_pattern_nodes(node)
        ]
        scored.sort(key=lambda pair: (pair[1], repr(pair[0])))
        return scored


class SocialImpactMetric(RankingMetric):
    """The paper's distance-based metric (default)."""

    name = "social-impact"

    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        return rank_detail(result_graph, node).rank


class ClosenessMetric(RankingMetric):
    """Classic closeness centrality over the result graph (out-direction).

    Closeness is higher-is-better, so the score is its negation.  Nodes
    reaching nothing score ``+inf``.
    """

    name = "closeness"

    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        if node not in result_graph:
            raise RankingError(f"{node!r} is not a node of the result graph")
        distances = weighted_distances(result_graph.out_adjacency(), node)
        total = sum(distances.values())
        if total == 0:
            return math.inf
        return -(len(distances) / total)


class HarmonicMetric(RankingMetric):
    """Harmonic centrality: sum of inverse distances, negated."""

    name = "harmonic"

    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        if node not in result_graph:
            raise RankingError(f"{node!r} is not a node of the result graph")
        out = weighted_distances(result_graph.out_adjacency(), node)
        back = weighted_distances(result_graph.in_adjacency(), node)
        total = sum(1.0 / d for d in out.values()) + sum(1.0 / d for d in back.values())
        return -total


class DegreeMetric(RankingMetric):
    """Result-graph degree (in + out), negated; crude but cheap."""

    name = "degree"

    def score(self, result_graph: ResultGraph, node: NodeId) -> float:
        if node not in result_graph:
            raise RankingError(f"{node!r} is not a node of the result graph")
        out_deg = len(result_graph.out_adjacency().get(node, {}))
        in_deg = len(result_graph.in_adjacency().get(node, {}))
        return -(out_deg + in_deg)


#: Registry used by the CLI's ``--metric`` option and the engine.
METRICS: dict[str, RankingMetric] = {
    metric.name: metric
    for metric in (
        SocialImpactMetric(),
        ClosenessMetric(),
        HarmonicMetric(),
        DegreeMetric(),
    )
}


def get_metric(name: str) -> RankingMetric:
    """Look up a metric by name; raises RankingError for unknown names."""
    try:
        return METRICS[name]
    except KeyError:
        known = ", ".join(sorted(METRICS))
        raise RankingError(f"unknown metric {name!r} (known: {known})") from None
