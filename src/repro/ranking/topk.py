"""Bulk top-K ranking — the shared-work engine behind expert selection.

The naive path (:func:`repro.ranking.social_impact.rank_matches`) treats
every match independently: two full Dijkstra runs per match over the live
result-graph views, then a sort, then a slice.  That shape is fine for the
paper's nine-node Fig. 1 but wrong for a result graph with thousands of
matches.  This module restructures ranking around three ideas:

1. **One snapshot, shared by everything.**  A :class:`RankingContext`
   copies the result graph's weighted adjacency (both directions), match
   sets and node attributes exactly once.  Every distance computation —
   for any metric, any ``k``, any number of calls — runs against that
   snapshot and is memoized per ``(direction, source)``, so the paper's
   social-impact metric and e.g. the harmonic metric share their Dijkstra
   runs instead of repeating them.

2. **True top-K: cheap admissible bounds + lazy full scoring.**  Each
   metric can provide a *bound* — a cheap optimistic (never above the real
   score) estimate.  Matches are fully scored lazily, best bound first;
   once ``k`` real scores are known, every match whose bound already
   exceeds the current ``k``-th best score is provably outside the top-K
   and is never scored at all.  For the social-impact metric the bound is
   the minimum incident witness-edge weight (every member of the impact
   set lies at least that far away, so the average does too), with
   isolated matches resolved exactly to ``+inf`` for free.

3. **Parallel fan-out with identical output.**  Full scoring of the
   surviving candidates can be farmed to a worker pool (the engine routes
   this through its :class:`~repro.engine.parallel.ParallelExecutor`);
   scores are pure functions of the snapshot, so the parallel result is
   byte-identical to the sequential one — order, scores and
   :class:`~repro.ranking.social_impact.RankedMatch` evidence.

The selection is *exact*: for every metric, every ``k`` and every worker
count, the output equals the naive rank-everything-then-slice path
(``tests/test_topk.py`` asserts it differentially over seeded random
graphs; ``benchmarks/bench_topk.py`` asserts it at scale).
"""

from __future__ import annotations

import math
from array import array
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

from repro.errors import RankingError
from repro.graph.digraph import NodeId
from repro.graph.distance import (
    node_order_key,
    weighted_distances,
    weighted_distances_ids,
)
from repro.matching.result_graph import ResultGraph
from repro.ranking.social_impact import RankedMatch, ranked_match_from_distances

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.ranking.metrics import RankingMetric


def validate_k(k: Any) -> int:
    """Validate a top-K ``k`` once, for every metric and every entry point.

    Raises :class:`RankingError` unless ``k`` is a positive integer, so the
    engine, the facade and the CLI reject ``k=0``/``k=-1`` identically
    instead of silently slicing (the historical non-default-metric bug).
    """
    if isinstance(k, bool) or not isinstance(k, int) or k < 1:
        raise RankingError(f"k must be a positive integer: {k!r}")
    return k


class RankingContext:
    """A one-shot snapshot of a result graph plus memoized ranking work.

    Build it once per evaluated query; ask it for top-K lists as often as
    needed.  All distance computations are memoized per source node and per
    direction, so repeated calls (different ``k``, different metrics, a
    rank-cache hit in the engine) never repeat a Dijkstra run.

    The snapshot is self-contained — plain dicts, no live views — which is
    what makes both worker-pool fan-out and the engine's incremental
    re-ranking after updates possible: workers compute from the identical
    adjacency, and the update path can diff two snapshots node by node.

    >>> from repro.datasets.paper_example import paper_graph, paper_pattern
    >>> from repro.matching.bounded import match_bounded
    >>> result = match_bounded(paper_graph(), paper_pattern())
    >>> context = RankingContext(result.result_graph())
    >>> [match.node for match in bulk_top_k_detail(context, 1)]
    ['Bob']
    >>> context.stats["dijkstra_runs"]
    4
    """

    __slots__ = (
        "result_graph",
        "pattern",
        "out_adj",
        "in_adj",
        "matched_by",
        "_attr_cache",
        "_details",
        "_dist_out",
        "_dist_in",
        "_scores",
        "_csr_out",
        "_csr_in",
        "_csr_order",
        "_csr_threshold",
        "_reached_total",
        "stats",
    )

    def __init__(self, result_graph: ResultGraph) -> None:
        self.result_graph = result_graph
        self.pattern = result_graph.pattern
        # The one adjacency snapshot, in the result graph's deterministic
        # iteration order.  The outer dicts are copied; the row dicts are
        # *shared* with the result graph, which is frozen once built (every
        # construction path — matcher, decompression, update maintenance —
        # creates a fresh ResultGraph rather than mutating one), so sharing
        # is safe and keeps snapshotting O(nodes) instead of O(edges).
        self.out_adj: dict[NodeId, Mapping[NodeId, int]] = dict(
            result_graph.out_adjacency()
        )
        self.in_adj: dict[NodeId, Mapping[NodeId, int]] = dict(
            result_graph.in_adjacency()
        )
        self.matched_by: dict[NodeId, set[str]] = dict(result_graph.match_map())
        # Node attributes are fetched (and copied) lazily, per ranked node:
        # most matches are never fully scored, and their attributes live in
        # the data graph which the snapshot must not have to walk.
        self._attr_cache: dict[NodeId, dict[str, Any]] = {}
        self._details: dict[NodeId, RankedMatch] = {}
        self._dist_out: dict[NodeId, dict[NodeId, float]] = {}
        self._dist_in: dict[NodeId, dict[NodeId, float]] = {}
        # Per-metric memoized scores: {metric name: {node: score}}.
        self._scores: dict[str, dict[NodeId, float]] = {}
        # Frozen weighted CSR per direction: (ids, labels, offsets,
        # targets, weights).  Ids are assigned in the label path's
        # tie-break order, so the int kernel makes identical pop decisions
        # (see distances_from).  Building a CSR costs O(nodes log nodes +
        # edges) once; a bound-pruned top-K may run only a handful of
        # Dijkstras, so the build waits until enough runs have accumulated
        # to amortize it (the first runs use the label path — the results
        # are byte-identical either way).
        self._csr_out: tuple | None = None
        self._csr_in: tuple | None = None
        # (ids, labels) — direction-independent, computed once, shared.
        self._csr_order: tuple | None = None
        self._csr_threshold = max(16, len(self.matched_by) // 64)
        self._reached_total = 0
        self.stats: dict[str, int] = {
            "dijkstra_runs": 0,
            "details_scored": 0,
            "details_reused": 0,
            "pruned_by_bound": 0,
        }

    # ------------------------------------------------------------------
    # match enumeration
    # ------------------------------------------------------------------
    def matches(self, pattern_node: str | None = None) -> list[NodeId]:
        """All matches of ``pattern_node`` (default: the output node)."""
        target = pattern_node or self.pattern.output_node
        if target is None:
            raise RankingError("pattern has no output node and none was given")
        if target not in self.pattern:
            raise RankingError(f"unknown pattern node: {target!r}")
        return [
            node for node, matched in self.matched_by.items() if target in matched
        ]

    def __contains__(self, node: object) -> bool:
        return node in self.matched_by

    @property
    def num_nodes(self) -> int:
        return len(self.matched_by)

    # ------------------------------------------------------------------
    # memoized distances and details
    # ------------------------------------------------------------------
    def distances_from(self, node: NodeId) -> dict[NodeId, float]:
        """Weighted shortest distances out of ``node`` (memoized).

        Once enough runs have accumulated to amortize the one-time CSR
        build, Dijkstra runs int-indexed over a frozen weighted CSR of the
        snapshot (:func:`~repro.graph.distance.weighted_distances_ids`);
        a bound-pruned top-K that only ever scores a handful of matches
        stays on the label path and never pays the build.  Snapshot ids
        are assigned in the exact tie-break order the label-keyed Dijkstra
        uses, so the result — values *and* insertion order — is
        byte-identical to ``weighted_distances(self.out_adj, node)``
        either way.
        """
        cached = self._dist_out.get(node)
        if cached is None:
            cached = self._dist_out[node] = self._dijkstra(node, forward=True)
            self.stats["dijkstra_runs"] += 1
        return cached

    def distances_to(self, node: NodeId) -> dict[NodeId, float]:
        """Weighted shortest distances into ``node`` (memoized)."""
        cached = self._dist_in.get(node)
        if cached is None:
            cached = self._dist_in[node] = self._dijkstra(node, forward=False)
            self.stats["dijkstra_runs"] += 1
        return cached

    #: Mean nodes-reached-per-run below which a Dijkstra is so small that
    #: the int kernel's id mapping costs more than its cheaper heap saves.
    CSR_MIN_AVG_REACH = 64

    def _dijkstra(self, node: NodeId, forward: bool) -> dict[NodeId, float]:
        if self._csr_out is None and self._csr_in is None:
            runs = self.stats["dijkstra_runs"]
            if runs < self._csr_threshold or self._reached_total < (
                runs * self.CSR_MIN_AVG_REACH
            ):
                # Not enough (or only trivially small) runs yet: the
                # label path costs less than freezing a weighted CSR.
                adjacency = self.out_adj if forward else self.in_adj
                result = weighted_distances(adjacency, node)
                self._reached_total += len(result)
                return result
        ids, labels, offsets, targets, weights = self._weighted_csr(forward)
        source_id = ids.get(node)
        if source_id is None:
            return {}
        reached = weighted_distances_ids(offsets, targets, weights, source_id)
        return {labels[node_id]: d for node_id, d in reached.items()}

    def _weighted_csr(self, forward: bool) -> tuple:
        csr = self._csr_out if forward else self._csr_in
        if csr is None:
            adjacency = self.out_adj if forward else self.in_adj
            if self._csr_order is None:
                # Dense ids assigned in the label Dijkstra's tie-break
                # order make (dist, id) heap tuples order exactly like
                # (dist, _order_key) ones.  The ordering is direction-
                # independent, so both CSRs share it.
                labels = sorted(self.matched_by, key=node_order_key)
                ids = {label: index for index, label in enumerate(labels)}
                self._csr_order = (ids, labels)
            ids, labels = self._csr_order
            offsets = array("q", [0])
            targets = array("q")
            weights = array("d")
            for label in labels:
                for target, weight in adjacency.get(label, {}).items():
                    targets.append(ids[target])
                    weights.append(float(weight))
                offsets.append(len(targets))
            csr = (ids, labels, offsets, targets, weights)
            if forward:
                self._csr_out = csr
            else:
                self._csr_in = csr
        return csr

    def node_attrs(self, node: NodeId) -> dict[str, Any]:
        """Attribute snapshot of one node (copied on first use, memoized)."""
        cached = self._attr_cache.get(node)
        if cached is None:
            cached = self._attr_cache[node] = dict(
                self.result_graph.node_attrs(node)
            )
        return cached

    def detail(self, node: NodeId) -> RankedMatch:
        """The full :class:`RankedMatch` of one match (memoized).

        Produces exactly what :func:`repro.ranking.social_impact.rank_detail`
        would for the same result graph — same rank, same evidence dicts.
        """
        cached = self._details.get(node)
        if cached is not None:
            self.stats["details_reused"] += 1
            return cached
        if node not in self.matched_by:
            raise RankingError(f"{node!r} is not a node of the result graph")
        detail = ranked_match_from_distances(
            node,
            self.distances_to(node),
            self.distances_from(node),
            dict(self.node_attrs(node)),
        )
        self._details[node] = detail
        self.stats["details_scored"] += 1
        return detail

    # ------------------------------------------------------------------
    # cheap admissible bounds
    # ------------------------------------------------------------------
    def min_incident_weight(self, node: NodeId) -> float:
        """Smallest witness-edge weight touching ``node`` (``inf`` if none)."""
        out_row = self.out_adj.get(node) or {}
        in_row = self.in_adj.get(node) or {}
        return min(
            min(out_row.values(), default=math.inf),
            min(in_row.values(), default=math.inf),
        )

    def impact_bound(self, node: NodeId) -> float:
        """Admissible lower bound on the social-impact rank of ``node``.

        Every descendant lies at least the minimum outgoing weight away and
        every ancestor at least the minimum incoming weight, so the average
        distance — the rank — is at least the minimum incident weight.  An
        isolated match has an empty impact set, making ``+inf`` *exact*.
        """
        return float(self.min_incident_weight(node))

    # ------------------------------------------------------------------
    # memo maintenance (the engine's incremental re-ranking uses these)
    # ------------------------------------------------------------------
    def absorb_details(self, details: Sequence[RankedMatch]) -> None:
        """Install externally computed details (e.g. from pool workers)."""
        for detail in details:
            self._details[detail.node] = detail
            # The evidence dicts double as distance memos: they are the
            # exact dicts a local Dijkstra would have produced.
            self._dist_out.setdefault(detail.node, detail.descendants)
            self._dist_in.setdefault(detail.node, detail.ancestors)

    def carry_over_from(self, old: "RankingContext", changed: set[NodeId]) -> int:
        """Reuse ``old``'s memos for nodes an update provably did not touch.

        ``changed`` is the set of nodes whose result-graph neighbourhood,
        membership or attributes may have changed.  A memoized distance set
        from ``v`` is still valid iff no changed node appears in it (a new
        or removed edge ``a -> b`` can only alter distances from ``v`` if
        ``a`` was reachable from ``v`` or the path enters through ``b``;
        both endpoints are in ``changed``) and ``v`` itself is unchanged.
        Returns the number of fully reused details.
        """
        reused = 0
        for node, dist in old._dist_out.items():
            if node in changed or node not in self.matched_by:
                continue
            if changed.isdisjoint(dist):
                self._dist_out.setdefault(node, dist)
        for node, dist in old._dist_in.items():
            if node in changed or node not in self.matched_by:
                continue
            if changed.isdisjoint(dist):
                self._dist_in.setdefault(node, dist)
        for node, attrs in old._attr_cache.items():
            if node not in changed and node in self.matched_by:
                self._attr_cache.setdefault(node, attrs)
        for node, detail in old._details.items():
            if node in changed or node not in self.matched_by:
                continue
            if changed.isdisjoint(detail.ancestors) and changed.isdisjoint(
                detail.descendants
            ):
                self._details.setdefault(node, detail)
                reused += 1
        return reused

    def diff_nodes(self, other: "RankingContext") -> set[NodeId]:
        """Nodes whose snapshot rows differ between two contexts.

        Membership changes, attribute changes and both endpoints of every
        changed witness edge are included — the seed set for
        :meth:`carry_over_from`.  Attributes are compared only where
        ``other`` materialized them: nothing else in ``other``'s memos can
        depend on an unmaterialized attribute dict.
        """
        changed: set[NodeId] = set()
        for node in set(self.matched_by) ^ set(other.matched_by):
            changed.add(node)
        for node in set(self.matched_by) & set(other.matched_by):
            for mine, theirs in (
                (self.out_adj, other.out_adj),
                (self.in_adj, other.in_adj),
            ):
                row_a, row_b = mine.get(node, {}), theirs.get(node, {})
                if row_a != row_b:
                    changed.add(node)
                    changed.update(set(row_a) ^ set(row_b))
                    changed.update(
                        n for n in set(row_a) & set(row_b) if row_a[n] != row_b[n]
                    )
        for node, attrs in other._attr_cache.items():
            if node in self.matched_by and node not in changed:
                if attrs != self.node_attrs(node):
                    changed.add(node)
        return changed

    def __repr__(self) -> str:
        return (
            f"<RankingContext {self.num_nodes} nodes, "
            f"{self.stats['details_scored']} scored>"
        )


# ----------------------------------------------------------------------
# lazy exact top-K selection
# ----------------------------------------------------------------------

#: Scoring backend signature: given a context, metric (or None for the
#: rich social-impact detail path) and nodes, return one result per node.
ScoreMany = Callable[[RankingContext, Any, Sequence[NodeId]], list]


def _score_inline(
    context: RankingContext, metric: "RankingMetric | None", nodes: Sequence[NodeId]
) -> list:
    if metric is None:
        return [context.detail(node) for node in nodes]
    return [metric.score_bulk(context, node) for node in nodes]


def _lazy_select(
    context: RankingContext,
    candidates: list[NodeId],
    k: int | None,
    bound_of: Callable[[NodeId], float],
    score_many: Callable[[Sequence[NodeId]], list[float]],
) -> list[NodeId]:
    """Exact top-K node selection with bound-based pruning.

    Returns the node ids whose scores ended up computed (a provable
    superset of the true top-K); the caller sorts and slices.  With
    ``k=None`` (rank everything) all candidates are scored.
    """
    if k is None or k >= len(candidates):
        score_many(candidates)
        return candidates
    bounds = {node: bound_of(node) for node in candidates}
    order = sorted(candidates, key=lambda node: (bounds[node], repr(node)))
    frontier = order[:k]
    frontier_scores = score_many(frontier)
    kth = sorted(frontier_scores)[k - 1]
    # A candidate whose optimistic bound already exceeds the k-th best
    # *confirmed* score cannot enter the top-K (its true score is at least
    # its bound); ties at the k-th score must still be scored because the
    # node-id tie-break can prefer them.
    rest = [node for node in order[k:] if bounds[node] <= kth]
    context.stats["pruned_by_bound"] += len(order) - k - len(rest)
    score_many(rest)
    return frontier + rest


def bulk_top_k_detail(
    context: RankingContext,
    k: int | None,
    pattern_node: str | None = None,
    score_many: ScoreMany | None = None,
) -> list[RankedMatch]:
    """Top-K :class:`RankedMatch` list by social impact (the paper metric).

    Identical — order, ranks, evidence — to ranking every match with
    :func:`repro.ranking.social_impact.rank_detail` and slicing.  ``k=None``
    ranks everything (the bulk analogue of ``rank_matches``).
    """
    if k is not None:
        validate_k(k)
    backend = score_many or _score_inline
    candidates = context.matches(pattern_node)
    if not candidates:
        return []

    def rank_nodes(nodes: Sequence[NodeId]) -> list[float]:
        # Only un-memoized nodes travel to the backend (which may be a
        # worker pool); a warm context re-ranks nothing.
        missing = [node for node in nodes if node not in context._details]
        if missing:
            backend(context, None, missing)
        return [context.detail(node).rank for node in nodes]

    scored = _lazy_select(context, candidates, k, context.impact_bound, rank_nodes)
    ranked = [context.detail(node) for node in scored]
    ranked.sort(key=lambda r: (r.rank, repr(r.node)))
    return ranked if k is None else ranked[:k]


def bulk_top_k_scores(
    context: RankingContext,
    k: int | None,
    metric: "RankingMetric",
    pattern_node: str | None = None,
    score_many: ScoreMany | None = None,
) -> list[tuple[NodeId, float]]:
    """Top-K ``(node, score)`` pairs for any pluggable metric.

    Identical to ``metric.rank_all(result_graph)[:k]``, but scored against
    the shared snapshot with memoization, bound pruning and (when the
    caller provides a parallel ``score_many`` backend) pool fan-out.
    """
    if k is not None:
        validate_k(k)
    backend = score_many or _score_inline
    candidates = context.matches(pattern_node)
    if not candidates:
        return []
    # Scores are memoized on the context only for the registry singletons:
    # two *custom* metric instances could share a name (or carry different
    # parameters under one name), and a cached context must never serve one
    # metric's scores for another.  Custom metrics get a per-call memo.
    from repro.ranking.metrics import METRICS

    if METRICS.get(metric.name) is metric:
        memo = context._scores.setdefault(metric.name, {})
    else:
        memo = {}

    def score_nodes(nodes: Sequence[NodeId]) -> list[float]:
        missing = [node for node in nodes if node not in memo]
        if missing:
            for node, score in zip(missing, backend(context, metric, missing)):
                memo[node] = score
        return [memo[node] for node in nodes]

    scored = _lazy_select(
        context,
        candidates,
        k,
        lambda node: metric.bound(context, node),
        score_nodes,
    )
    pairs = [(node, memo[node]) for node in scored]
    pairs.sort(key=lambda pair: (pair[1], repr(pair[0])))
    return pairs if k is None else pairs[:k]
