"""Top-K expert ranking over result graphs."""

from repro.ranking.metrics import (
    METRICS,
    ClosenessMetric,
    DegreeMetric,
    HarmonicMetric,
    RankingMetric,
    SocialImpactMetric,
    get_metric,
)
from repro.ranking.social_impact import (
    RankedMatch,
    rank_detail,
    rank_matches,
    social_impact_rank,
    top_k,
)
from repro.ranking.topk import (
    RankingContext,
    bulk_top_k_detail,
    bulk_top_k_scores,
    validate_k,
)

__all__ = [
    "RankingContext",
    "bulk_top_k_detail",
    "bulk_top_k_scores",
    "validate_k",
    "METRICS",
    "ClosenessMetric",
    "DegreeMetric",
    "HarmonicMetric",
    "RankingMetric",
    "SocialImpactMetric",
    "get_metric",
    "RankedMatch",
    "rank_detail",
    "rank_matches",
    "social_impact_rank",
    "top_k",
]
