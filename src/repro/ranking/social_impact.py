"""Top-K expert selection by social impact — the demo's new contribution.

§II defines the rank of a match ``v`` of the output node over the result
graph ``Gr``:

    f(uo, v) = ( Σ_{u ∈ Vr, u ⇝ v} dist(u, v)  +  Σ_{u' ∈ Vr, v ⇝ u'} dist(v, u') ) / |V'r|

where ``V'r`` is the set of nodes that can reach ``v`` or be reached from
``v`` (nonempty paths) and distances are weighted shortest paths in ``Gr``.
Intuition: the average social distance between the expert and everyone
connected to them; **lower is better**.  A match with no connections at all
ranks ``+inf`` (no social impact).  Ties are broken by node id so top-K
output is deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.errors import RankingError
from repro.graph.digraph import NodeId
from repro.graph.distance import weighted_distances
from repro.matching.result_graph import ResultGraph


@dataclass(frozen=True)
class RankedMatch:
    """One ranked expert: node id, rank value and the evidence behind it."""

    node: NodeId
    rank: float
    ancestors: dict[NodeId, float] = field(repr=False)
    descendants: dict[NodeId, float] = field(repr=False)
    attrs: dict[str, Any] = field(repr=False)

    @property
    def impact_set_size(self) -> int:
        """``|V'r|`` — how many nodes the expert is socially connected to."""
        return len(set(self.ancestors) | set(self.descendants))


def social_impact_rank(result_graph: ResultGraph, node: NodeId) -> float:
    """The paper's ranking value ``f(uo, v)`` for one match (lower = better).

    >>> from repro.datasets.paper_example import paper_graph, paper_pattern
    >>> from repro.matching.bounded import match_bounded
    >>> result = match_bounded(paper_graph(), paper_pattern())
    >>> round(social_impact_rank(result.result_graph(), "Bob"), 3)  # 9/5
    1.8
    """
    detail = rank_detail(result_graph, node)
    return detail.rank


def ranked_match_from_distances(
    node: NodeId,
    ancestors: dict[NodeId, float],
    descendants: dict[NodeId, float],
    attrs: dict[str, Any],
) -> RankedMatch:
    """Apply §II's formula to precomputed distance sets.

    The single implementation of ``f(uo, v)`` — both the per-match
    :func:`rank_detail` path and the bulk context
    (:class:`repro.ranking.topk.RankingContext`) build their
    :class:`RankedMatch` through here, so the two paths cannot drift.
    """
    impact_set = set(ancestors) | set(descendants)
    if not impact_set:
        rank = math.inf
    else:
        total = sum(ancestors.values()) + sum(descendants.values())
        rank = total / len(impact_set)
    return RankedMatch(
        node=node,
        rank=rank,
        ancestors=ancestors,
        descendants=descendants,
        attrs=attrs,
    )


def rank_detail(result_graph: ResultGraph, node: NodeId) -> RankedMatch:
    """Rank one node, returning distances to/from its impact set."""
    if node not in result_graph:
        raise RankingError(f"{node!r} is not a node of the result graph")
    descendants = weighted_distances(result_graph.out_adjacency(), node)
    ancestors = weighted_distances(result_graph.in_adjacency(), node)
    return ranked_match_from_distances(
        node, ancestors, descendants, dict(result_graph.node_attrs(node))
    )


def rank_matches(
    result_graph: ResultGraph, pattern_node: str | None = None
) -> list[RankedMatch]:
    """Rank every match of ``pattern_node`` (default: the output node).

    Returns all matches sorted best-first (ascending rank, then node id).
    """
    target = pattern_node or result_graph.pattern.output_node
    if target is None:
        raise RankingError("pattern has no output node and none was given")
    if target not in result_graph.pattern:
        raise RankingError(f"unknown pattern node: {target!r}")
    matches = [
        node
        for node in result_graph.nodes()
        if target in result_graph.matched_pattern_nodes(node)
    ]
    ranked = [rank_detail(result_graph, node) for node in matches]
    ranked.sort(key=lambda r: (r.rank, repr(r.node)))
    return ranked


def top_k(
    result_graph: ResultGraph, k: int, pattern_node: str | None = None
) -> list[RankedMatch]:
    """The K best experts for the output node (Example 2's top-K).

    ``k`` larger than the number of matches returns all of them.
    """
    if k < 1:
        raise RankingError(f"k must be >= 1: {k}")
    return rank_matches(result_graph, pattern_node)[:k]
