"""Baseline files: grandfathered findings that report but do not fail.

A baseline is a JSON document mapping finding fingerprints (content-based,
see :meth:`repro.analysis.core.Finding.fingerprint`) to a human-readable
record of what was grandfathered.  ``--write-baseline`` snapshots the
current unsuppressed findings; later runs mark matching findings
``baselined`` and exit 0 for them.  Fixing a baselined violation and
re-writing the baseline shrinks the file — the ratchet only tightens.

The repo itself ships with an *empty* baseline: every finding in the tree
is either fixed or carries an inline justification.  The mechanism exists
so future sweeps can land a new rule before paying down its findings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.analysis.core import Finding
from repro.errors import StorageError

FORMAT_VERSION = 1


def write_baseline(path: str | Path, findings: Iterable[Finding]) -> int:
    """Snapshot ``findings`` (their fingerprints) to ``path``; returns count."""
    records = {}
    for finding in findings:
        records[finding.fingerprint()] = {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "message": finding.message,
        }
    payload = {"version": FORMAT_VERSION, "findings": records}
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    tmp.replace(target)
    return len(records)


def load_baseline(path: str | Path) -> frozenset[str]:
    """The fingerprints recorded in ``path`` (a missing file is empty)."""
    target = Path(path)
    if not target.exists():
        return frozenset()
    try:
        payload = json.loads(target.read_text())
        if payload.get("version") != FORMAT_VERSION:
            raise StorageError(
                f"unsupported baseline format version in {target}: "
                f"{payload.get('version')!r}"
            )
        return frozenset(payload["findings"])
    except (json.JSONDecodeError, KeyError, TypeError, AttributeError) as exc:
        raise StorageError(f"malformed baseline file {target}: {exc}") from exc
