"""Command-line front end: ``python -m repro.analysis`` / ``repro lint``.

Exit codes: 0 clean (or everything suppressed/baselined), 1 unsuppressed
findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.core import (
    DEFAULT_EXCLUDED_DIRS,
    all_rules,
    lint_paths,
    select_rules,
)
from repro.analysis.reporters import render_json, render_text
from repro.errors import StorageError

DEFAULT_PATHS = ("src", "benchmarks", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the ExpFinder engine: "
            "concurrency, caching and determinism contracts, enforced at "
            "the source level."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint (default: the repo's "
            "src/benchmarks/tests directories that exist under the "
            "current directory)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its description and exit",
    )
    parser.add_argument(
        "--baseline",
        help="baseline JSON file: matching findings report but do not fail",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="snapshot current unsuppressed findings into --baseline and exit 0",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="include suppressed findings in the text report",
    )
    parser.add_argument(
        "--no-default-excludes",
        action="store_true",
        help=(
            "descend into directories excluded by default "
            f"({', '.join(sorted(DEFAULT_EXCLUDED_DIRS))}) — used by the "
            "linter's own fixture tests"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id, rule in sorted(all_rules().items()):
            print(f"{rule_id}: {rule.description}")
        return 0

    try:
        rules = select_rules(
            [name.strip() for name in args.rules.split(",") if name.strip()]
            if args.rules
            else None
        )
    except KeyError as exc:
        print(f"repro-lint: {exc.args[0]}", file=sys.stderr)
        return 2

    paths = args.paths or [p for p in DEFAULT_PATHS if Path(p).exists()]
    if not paths:
        print(
            "repro-lint: no paths given and none of "
            f"{'/'.join(DEFAULT_PATHS)} exist here",
            file=sys.stderr,
        )
        return 2

    excluded = (
        frozenset({"__pycache__", ".git"})
        if args.no_default_excludes
        else DEFAULT_EXCLUDED_DIRS
    )
    baseline_fps = frozenset()
    if args.baseline and not args.write_baseline:
        try:
            baseline_fps = load_baseline(args.baseline)
        except StorageError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    try:
        result = lint_paths(
            paths,
            rules=rules,
            baseline_fingerprints=baseline_fps,
            excluded_dirs=excluded,
        )
    except FileNotFoundError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        if not args.baseline:
            print(
                "repro-lint: --write-baseline requires --baseline FILE",
                file=sys.stderr,
            )
            return 2
        count = write_baseline(args.baseline, result.active)
        print(f"repro-lint: wrote {count} finding(s) to {args.baseline}")
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, show_suppressed=args.show_suppressed))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
