"""spawn-safety: pool payloads are module-level callables.

The parallel executor runs under both ``fork`` and ``spawn`` start
methods.  Spawn pickles every callable handed to the pool by *qualified
name*: a lambda, a closure, a bound method or a ``functools.partial``
either fails outright or — worse — rebuilds different state in the
worker.  PR 7 extended the same discipline to data: mmap-backed objects
ship as file paths, never as pickled buffers.

What this rule matches (only in modules that import ``multiprocessing``
or ``concurrent.futures``):

* the callable argument of ``pool.map`` / ``imap`` / ``imap_unordered`` /
  ``apply`` / ``apply_async`` / ``starmap`` (and ``_async`` variants) and
  the ``initializer`` of ``Pool(...)`` must be a plain name bound to a
  module-level ``def`` or an explicit import — lambdas, nested functions,
  locals/parameters, bound attributes and ``functools.partial`` calls are
  flagged;
* a ``lambda`` anywhere among those call arguments is flagged as well.

Known miss: a module-level *variable* holding a lambda; indirect payloads
(the mmap-paths-not-buffers half is exercised by the spawn-mode shipping
tests rather than checked statically).
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from repro.analysis.core import ModuleUnderLint, Rule, register

#: Builtins pickle by qualified name (``builtins.sorted``) and are safe.
BUILTIN_NAMES = frozenset(dir(builtins))

POOL_METHODS = frozenset(
    {
        "map",
        "imap",
        "imap_unordered",
        "apply",
        "apply_async",
        "starmap",
        "map_async",
        "starmap_async",
        "submit",
    }
)


def _imports_multiprocessing(tree: ast.Module) -> bool:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name.split(".")[0] in {"multiprocessing", "concurrent"}
                for alias in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "").split(".")[0] in {
                "multiprocessing",
                "concurrent",
            }:
                return True
    return False


def _module_level_callables(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            names.update(alias.asname or alias.name.split(".")[0] for alias in node.names)
        elif isinstance(node, ast.ImportFrom):
            names.update(alias.asname or alias.name for alias in node.names)
    return names


@register
class SpawnSafetyRule(Rule):
    id = "spawn-safety"
    description = (
        "multiprocessing pool payloads must be module-level callables "
        "(picklable by qualified name under spawn)"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[tuple[int, str]]:
        if not _imports_multiprocessing(module.tree):
            return
        module_level = _module_level_callables(module.tree)

        def describe(arg: ast.expr) -> str | None:
            """Why ``arg`` is not spawn-safe, or None when it is."""
            if isinstance(arg, ast.Lambda):
                return "a lambda cannot be pickled by qualified name"
            if isinstance(arg, ast.Call):
                return (
                    "a call result (e.g. functools.partial) ships a "
                    "closure, not a module-level callable"
                )
            if isinstance(arg, ast.Attribute):
                return (
                    "a bound attribute drags its whole object through "
                    "the pickle; use a module-level function"
                )
            if (
                isinstance(arg, ast.Name)
                and arg.id not in module_level
                and arg.id not in BUILTIN_NAMES
            ):
                return (
                    f"{arg.id!r} is not a module-level def or import in "
                    "this file — under spawn the worker cannot locate it "
                    "by qualified name"
                )
            return None

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in POOL_METHODS:
                if node.args:
                    reason = describe(node.args[0])
                    if reason is not None:
                        yield (
                            node.lineno,
                            f"pool payload is not spawn-safe: {reason}",
                        )
                for arg in list(node.args[1:]) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Lambda):
                        yield (
                            arg.lineno,
                            "lambda among pool-call arguments is not "
                            "spawn-safe",
                        )
            elif func.attr in {"Pool", "ProcessPoolExecutor"}:
                initializer: ast.expr | None = None
                if len(node.args) >= 2:
                    initializer = node.args[1]
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        initializer = keyword.value
                if initializer is not None and not (
                    isinstance(initializer, ast.Constant)
                    and initializer.value is None
                ):
                    reason = describe(initializer)
                    if reason is not None:
                        yield (
                            node.lineno,
                            f"pool initializer is not spawn-safe: {reason}",
                        )
