"""determinism: kernels are seeded, clock-free, and never iterate raw sets.

The differential harness (PR 2) asserts parallel ≡ sequential byte
identity, and every benchmark gate relies on reproducible output.  Three
classic leaks break that silently:

* module-level ``random.*`` calls draw from the process-global RNG —
  results change run to run (every generator in this repo takes a seed
  and builds ``random.Random(seed)``);
* wall-clock reads (``time.time``, ``datetime.now``) fold the calendar
  into results (``perf_counter``/``monotonic`` are fine: they measure
  durations, not dates, and only feed stats and deadlines);
* iterating a ``set`` in an order-sensitive position depends on
  ``PYTHONHASHSEED`` — the reason ``Graph`` stores adjacency in dicts.

Scope: modules under ``matching/``, ``ranking/`` and ``graph/`` — the
directories whose output must be byte-identical across runs and hosts.

What this rule matches:

* any ``random.<fn>(...)`` call except ``random.Random(seed)``;
* calls to ``time.time``/``localtime``/``ctime``/``gmtime`` and
  ``now``/``utcnow``/``today`` on ``datetime``/``date`` objects;
* a ``for`` loop, list- or dict-comprehension iterating directly over a
  set literal, set comprehension, or ``set(...)``/``frozenset(...)``
  call (set comprehensions are exempt: feeding a set from a set is
  order-insensitive).

Known miss: a set bound to a variable and iterated later; those sites
are covered by the seeded differential sweeps.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleUnderLint, Rule, register
from repro.analysis.rules._util import dotted_name

KERNEL_DIRS = ("matching", "ranking", "graph")
WALL_CLOCK_CALLS = frozenset(
    {"time.time", "time.localtime", "time.ctime", "time.gmtime"}
)
WALL_CLOCK_ATTRS = frozenset({"now", "utcnow", "today"})


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


@register
class DeterminismRule(Rule):
    id = "determinism"
    description = (
        "kernel code must not use unseeded RNG, wall clocks, or "
        "order-sensitive iteration over sets"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[tuple[int, str]]:
        if not module.has_path_part(*KERNEL_DIRS):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name is not None
                    and name.startswith("random.")
                    and name != "random.Random"
                ):
                    yield (
                        node.lineno,
                        f"{name}() draws from the process-global RNG — "
                        "take a seed and use random.Random(seed)",
                    )
                elif name in WALL_CLOCK_CALLS or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in WALL_CLOCK_ATTRS
                    and (dotted_name(node.func.value) or "").split(".")[-1]
                    in {"datetime", "date"}
                ):
                    yield (
                        node.lineno,
                        f"wall-clock read ({name}) in kernel code — "
                        "results must not depend on when they run",
                    )
            elif isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield (
                    node.iter.lineno,
                    "for-loop over an unordered set — iteration order "
                    "depends on PYTHONHASHSEED; sort it or iterate an "
                    "insertion-ordered dict",
                )
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                if self._order_insensitive_consumer(module, node):
                    continue
                for generator in node.generators:
                    if _is_set_expr(generator.iter):
                        yield (
                            generator.iter.lineno,
                            "ordered construction iterates an unordered "
                            "set — sort it first",
                        )

    @staticmethod
    def _order_insensitive_consumer(
        module: ModuleUnderLint, node: ast.AST
    ) -> bool:
        """True when the comprehension feeds sorted()/set()/sum()/... —
        consumers whose result cannot depend on iteration order."""
        parent = module.parents().get(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id
            in {"set", "frozenset", "sorted", "sum", "min", "max", "any", "all", "len"}
        )
