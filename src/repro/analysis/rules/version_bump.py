"""version-bump-discipline: graph mutations bump the version counter once.

Every cache in the engine keys its validity on ``Graph.version`` — the
counter *is* the consistency protocol.  Two ways to break it (both seen
in the wild before PR 4 closed them):

* a mutating method that forgets to bump — caches silently serve stale
  answers forever;
* bulk writes that bump per item (the ``update_attrs`` lesson: one
  logical write, one bump — per-item bumps are not wrong for safety but
  defeat in-place refresh paths that expect a predictable advance), or
  worse, external code writing through the live ``attrs()`` dict, which
  bumps *zero* times.

What this rule matches:

* inside any class that declares ``_version`` (in ``__slots__`` or
  ``__init__``): a method that directly mutates versioned state
  (``self._attrs``/``self._succ``/``self._pred`` stores, deletes or
  in-place method calls, or writes through ``self.attrs(...)``) without a
  ``self._version += 1`` in its body — and any ``self._version += 1``
  nested inside a loop;
* outside such classes: subscript stores or in-place mutating calls on
  the result of ``<x>.attrs(...)`` — the live-dict bypass the
  ``Graph.version`` docstring warns about — and direct pokes at a
  foreign ``<x>._version``.

Known miss: mutation via an alias (``d = g._succ; d[v] = ...``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleUnderLint, Rule, register
from repro.analysis.rules._util import (
    MUTATING_METHODS,
    assign_targets,
    is_self_attr,
    methods_of,
    subscript_root,
)

VERSIONED_STATE = frozenset({"_attrs", "_succ", "_pred"})


def _declares_version(cls: ast.ClassDef) -> bool:
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    if any(
                        isinstance(el, ast.Constant) and el.value == "_version"
                        for el in ast.walk(node.value)
                    ):
                        return True
    for method in methods_of(cls):
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            for target in assign_targets(node):
                if is_self_attr(target, "_version"):
                    return True
    return False


def _is_attrs_call_root(node: ast.AST) -> bool:
    """True for ``<recv>.attrs(...)`` — the live attribute dict accessor."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "attrs"
    )


def _direct_mutations(method: ast.AST) -> Iterator[int]:
    """Lines in ``method`` that mutate versioned state directly."""
    for node in ast.walk(method):
        for target in assign_targets(node):
            root = subscript_root(target)
            if is_self_attr(root) and root.attr in VERSIONED_STATE:  # type: ignore[union-attr]
                if isinstance(target, ast.Subscript):
                    yield node.lineno
            elif _is_attrs_call_root(root) and isinstance(target, ast.Subscript):
                yield node.lineno
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in MUTATING_METHODS:
                root = subscript_root(node.func.value)
                if is_self_attr(root) and root.attr in VERSIONED_STATE:  # type: ignore[union-attr]
                    yield node.lineno
                elif _is_attrs_call_root(root):
                    yield node.lineno


def _version_bumps(method: ast.AST) -> Iterator[ast.AugAssign]:
    for node in ast.walk(method):
        if isinstance(node, ast.AugAssign) and is_self_attr(
            node.target, "_version"
        ):
            yield node


@register
class VersionBumpRule(Rule):
    id = "version-bump-discipline"
    description = (
        "graph mutations must bump _version exactly once per logical "
        "write; external writes through attrs() bypass the counter"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[tuple[int, str]]:
        versioned_regions: set[ast.AST] = set()
        for cls in module.classes():
            if not _declares_version(cls):
                continue
            versioned_regions.add(cls)
            for method in methods_of(cls):
                mutation_lines = list(_direct_mutations(method))
                if not mutation_lines:
                    continue
                bumps = list(_version_bumps(method))
                if not bumps:
                    yield (
                        mutation_lines[0],
                        f"{method.name}() mutates versioned state but "
                        "never bumps self._version — every version-keyed "
                        "cache goes silently stale",
                    )
                for bump in bumps:
                    in_loop = any(
                        isinstance(anc, (ast.For, ast.While))
                        for anc in self._ancestors_within(module, bump, method)
                    )
                    if in_loop:
                        yield (
                            bump.lineno,
                            f"{method.name}() bumps self._version inside a "
                            "loop — one logical write must bump exactly "
                            "once (the update_attrs lesson)",
                        )

        # -- external bypasses -------------------------------------------
        def inside_versioned_class(node: ast.AST) -> bool:
            return any(anc in versioned_regions for anc in module.ancestors(node))

        for node in ast.walk(module.tree):
            for target in assign_targets(node):
                root = subscript_root(target)
                if (
                    _is_attrs_call_root(root)
                    and isinstance(target, ast.Subscript)
                    and not inside_versioned_class(node)
                ):
                    yield (
                        node.lineno,
                        "write through the live attrs() dict bypasses the "
                        "version counter — use set()/update_attrs() so "
                        "caches observe the change",
                    )
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr == "_version"
                    and not is_self_attr(target)
                ):
                    yield (
                        node.lineno,
                        "direct poke at a foreign _version counter — the "
                        "counter is owned by the graph's mutation API",
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATING_METHODS
                and _is_attrs_call_root(node.func.value)
                and not inside_versioned_class(node)
            ):
                yield (
                    node.lineno,
                    "in-place mutation of the live attrs() dict bypasses "
                    "the version counter — use update_attrs()",
                )

    @staticmethod
    def _ancestors_within(
        module: ModuleUnderLint, node: ast.AST, stop: ast.AST
    ) -> Iterator[ast.AST]:
        for anc in module.ancestors(node):
            if anc is stop:
                return
            yield anc
