"""error-wrapping: boundary modules raise domain errors, not builtins.

PR 7's lesson: ``load_relation`` once let a malformed payload escape as a
raw ``KeyError`` — callers catching :class:`~repro.errors.StorageError`
(the documented contract) crashed instead of degrading.  Every public
entry point of the storage/engine boundary now wraps low-level failures
in the :mod:`repro.errors` hierarchy.

Scope: the boundary modules — ``engine/storage.py``, ``engine/engine.py``,
``engine/cache.py``, ``graph/io.py``, ``repro/cli.py`` and the query
service (``server/app.py``, ``server/registry.py``, ``server/wire.py``,
``server/admission.py`` — wire decoding and the HTTP boundary must map
malformed payloads to :class:`~repro.errors.ServerError`, never leak a
``KeyError`` as a 500).

What this rule matches, inside public functions/methods (no leading
underscore, dunders exempt) of those modules:

* ``raise KeyError/TypeError/ValueError/IndexError/AttributeError(...)``
  — a builtin crossing the public boundary; raise the matching
  ``ReproError`` subclass instead;
* an ``except KeyError/TypeError`` handler that re-raises *bare*
  (``raise``) — the caught builtin continues across the boundary
  unwrapped.  Handlers that wrap (``raise StorageError(...) from exc``)
  or genuinely handle (no raise) are fine.

Known miss: builtins that propagate because nothing catches them; the
corruption/malformed-payload suites cover those dynamically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleUnderLint, Rule, register

BOUNDARY_SUFFIXES = (
    "engine/storage.py",
    "engine/engine.py",
    "engine/cache.py",
    "graph/io.py",
    "repro/cli.py",
    "server/app.py",
    "server/registry.py",
    "server/wire.py",
    "server/admission.py",
)
BUILTIN_ERRORS = frozenset(
    {"KeyError", "TypeError", "ValueError", "IndexError", "AttributeError"}
)
WRAP_TARGETS = frozenset({"KeyError", "TypeError"})


def _public(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    name = func.name
    if name.startswith("__") and name.endswith("__"):
        return False
    return not name.startswith("_")


def _handler_names(handler: ast.ExceptHandler) -> set[str]:
    node = handler.type
    names: set[str] = set()
    if node is None:
        return names
    for el in [node] if not isinstance(node, ast.Tuple) else node.elts:
        if isinstance(el, ast.Name):
            names.add(el.id)
    return names


@register
class ErrorWrappingRule(Rule):
    id = "error-wrapping"
    description = (
        "storage/engine boundary code must raise repro.errors classes, "
        "never leak raw KeyError/TypeError"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[tuple[int, str]]:
        if not module.path_endswith(*BOUNDARY_SUFFIXES):
            return
        for func in module.functions():
            if not _public(func):
                continue
            for node in ast.walk(func):
                if isinstance(node, ast.Raise):
                    exc = node.exc
                    if (
                        isinstance(exc, ast.Call)
                        and isinstance(exc.func, ast.Name)
                        and exc.func.id in BUILTIN_ERRORS
                    ):
                        yield (
                            node.lineno,
                            f"public boundary function {func.name}() "
                            f"raises builtin {exc.func.id} — raise the "
                            "matching repro.errors class so callers can "
                            "catch one hierarchy",
                        )
                elif isinstance(node, ast.ExceptHandler):
                    caught = _handler_names(node) & WRAP_TARGETS
                    if not caught:
                        continue
                    for inner in ast.walk(node):
                        if isinstance(inner, ast.Raise) and inner.exc is None:
                            yield (
                                inner.lineno,
                                f"{func.name}() re-raises caught "
                                f"{'/'.join(sorted(caught))} unwrapped "
                                "across the public boundary — wrap it in "
                                "a repro.errors class",
                            )
