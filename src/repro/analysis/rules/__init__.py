"""The repro-lint rule pack: importing this package registers every rule.

Each module encodes one of the engine's load-bearing invariants; see
``docs/development.md`` for the invariant catalogue with the PR that
motivated each rule.
"""

from repro.analysis.rules import (  # noqa: F401  (import-for-effect)
    cache_guard,
    determinism,
    error_wrapping,
    fault_registry,
    frozen_immutability,
    guard_threading,
    spawn_safety,
    version_bump,
)
