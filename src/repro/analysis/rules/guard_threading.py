"""guard-threading: QueryGuards are charged/forwarded; partial never cached.

PR 6's runaway-query guards only bound work if every kernel on the path
actually observes the guard: a kernel that accepts a ``guard`` parameter
and silently ignores it (or calls a sibling kernel without forwarding it)
reopens the hole the budget was meant to close.  And a guard that trips
produces a *partial* relation — caching one would serve an
under-approximation to later, unbudgeted callers (the engine gates every
``put`` on ``stats["partial"]`` for exactly this reason).

What this rule matches:

* a function with a parameter named ``guard`` whose body never reads
  ``guard`` — the guard is accepted and dropped;
* inside a function with a ``guard`` parameter, a call to another
  function *in the same file* that also takes a ``guard`` parameter,
  without passing ``guard`` along (as ``guard=...`` or a positional
  ``guard`` name) — the guard chain is broken;
* a ``put(...)`` call on one of the engine's tracked caches inside a
  function that mentions the ``"partial"`` flag, unless the put is nested
  under an ``if`` whose condition tests ``partial`` — the cache write is
  not gated on completeness.

Known miss: cross-file call chains (the per-file registry cannot see
them); those are covered by the differential and query-bomb suites.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleUnderLint, Rule, register
from repro.analysis.rules._util import (
    arg_names,
    contains_constant,
    receiver_matches,
    tracked_receivers,
)
from repro.analysis.rules.cache_guard import CACHE_CLASSES


def _terminal_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


@register
class GuardThreadingRule(Rule):
    id = "guard-threading"
    description = (
        "guards must be charged or forwarded to callee kernels, and "
        "partial results must never reach a cache put"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[tuple[int, str]]:
        guarded = {
            func.name: func
            for func in module.functions()
            if "guard" in arg_names(func)
        }

        # -- dropped or unforwarded guards ------------------------------
        for func in guarded.values():
            reads = any(
                isinstance(node, ast.Name)
                and node.id == "guard"
                and isinstance(node.ctx, ast.Load)
                for stmt in func.body
                for node in ast.walk(stmt)
            )
            if not reads:
                yield (
                    func.lineno,
                    f"{func.name}() accepts a guard and never charges or "
                    "forwards it — the budget is silently dropped",
                )
                continue
            for stmt in func.body:
                for node in ast.walk(stmt):
                    if not isinstance(node, ast.Call):
                        continue
                    callee = _terminal_name(node.func)
                    if callee is None or callee not in guarded or callee == func.name:
                        continue
                    forwards = any(
                        keyword.arg == "guard" for keyword in node.keywords
                    ) or any(
                        isinstance(arg, ast.Name) and arg.id == "guard"
                        for arg in node.args
                    )
                    if not forwards:
                        yield (
                            node.lineno,
                            f"call to guarded kernel {callee}() without "
                            "forwarding the guard — its work escapes the "
                            "budget",
                        )

        # -- partial results must not be cached --------------------------
        local_names, self_attrs = tracked_receivers(module.tree, CACHE_CLASSES)
        if not local_names and not self_attrs:
            return
        for func in module.functions():
            mentions_partial = any(
                contains_constant(stmt, "partial") for stmt in func.body
            )
            if not mentions_partial:
                continue
            for stmt in func.body:
                for node in ast.walk(stmt):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "put"
                        and receiver_matches(
                            node.func.value, local_names, self_attrs
                        )
                    ):
                        gated = any(
                            isinstance(anc, ast.If)
                            and contains_constant(anc.test, "partial")
                            for anc in module.ancestors(node)
                        )
                        if not gated:
                            yield (
                                node.lineno,
                                "cache put in a function that handles "
                                'partial results is not gated on the '
                                '"partial" flag — a truncated result could '
                                "be cached",
                            )
