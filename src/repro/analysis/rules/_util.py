"""Shared AST helpers for the rule pack."""

from __future__ import annotations

import ast
from typing import Iterator

#: Method names that mutate a list/dict/set receiver in place.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "add",
        "discard",
        "sort",
        "reverse",
    }
)


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def is_self_attr(node: ast.AST, attr: str | None = None) -> bool:
    """True for ``self.X`` (optionally a specific ``X``)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def subscript_root(node: ast.AST) -> ast.AST:
    """Peel subscripts: the root of ``x[i][j]`` is ``x``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def assign_targets(node: ast.AST) -> list[ast.expr]:
    """The target expressions of any assignment-ish statement."""
    if isinstance(node, ast.Assign):
        targets = []
        for target in node.targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                targets.extend(target.elts)
            else:
                targets.append(target)
        return targets
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return [node.target]
    if isinstance(node, ast.Delete):
        return list(node.targets)
    return []


def tracked_receivers(
    tree: ast.Module, constructors: frozenset[str], factory_attrs: frozenset[str] = frozenset()
) -> tuple[set[str], set[str]]:
    """Names bound to instances of the given classes, file-wide.

    Returns ``(local_names, self_attr_names)``: plain variables and
    ``self.X`` attributes assigned from a constructor call — either
    ``Cls(...)``, a classmethod on the class (``Cls.anything(...)``), or a
    factory method listed in ``factory_attrs`` on any receiver
    (``frozen.induced(...)``).  File-wide on purpose: re-using a tracked
    name for an unrelated object in the same file is itself confusing
    enough to deserve the finding.
    """
    local_names: set[str] = set()
    self_attrs: set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        constructed = False
        if isinstance(func, ast.Name) and func.id in constructors:
            constructed = True
        elif isinstance(func, ast.Attribute):
            root = func.value
            if isinstance(root, ast.Name) and root.id in constructors:
                constructed = True  # Cls.freeze(...), Cls.from_buffers(...)
            elif func.attr in factory_attrs:
                constructed = True  # receiver.induced(...), .without_attrs()
        if not constructed:
            continue
        for target in assign_targets(node):
            if isinstance(target, ast.Name):
                local_names.add(target.id)
            elif is_self_attr(target):
                self_attrs.add(target.attr)  # type: ignore[union-attr]
    return local_names, self_attrs


def receiver_matches(
    node: ast.AST, local_names: set[str], self_attrs: set[str]
) -> bool:
    """True when ``node`` is a tracked plain name or tracked ``self.X``."""
    if isinstance(node, ast.Name):
        return node.id in local_names
    if isinstance(node, ast.Attribute) and is_self_attr(node):
        return node.attr in self_attrs
    return False


def methods_of(cls: ast.ClassDef) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for item in cls.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield item


def is_classmethod(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    for decorator in func.decorator_list:
        name = dotted_name(decorator)
        if name in {"classmethod", "staticmethod"}:
            return True
    return False


def arg_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = func.args
    names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg.arg)
    if args.kwarg:
        names.append(args.kwarg.arg)
    return set(names)


def contains_constant(node: ast.AST, value: object) -> bool:
    return any(
        isinstance(child, ast.Constant) and child.value == value
        for child in ast.walk(node)
    )
