"""frozen-immutability: FrozenGraph/DistanceOracle buffers are never mutated.

Every hot kernel (PR 4's CSR traversals, PR 5's oracle joins) assumes the
frozen snapshot it was handed cannot change under it; the parallel
executor even fork-shares snapshots across processes on that assumption.
A single in-place mutation after construction is a cross-request
correctness leak waiting for the ROADMAP's concurrent service.

What this rule matches:

* inside ``class FrozenGraph`` / ``class DistanceOracle``: any assignment,
  augmented assignment, subscript store, delete, or in-place mutating
  method call (``append``/``update``/...) on a **public** ``self``
  attribute outside ``__init__``, ``__setstate__`` and classmethod
  constructors.  Single-underscore attributes are exempt: they are the
  documented derived/lazy views (``_ids``, ``_succ_sets``,
  ``_reach_out``), rebuilt idempotently and never shipped;
* anywhere else: the same operations on receivers bound to a frozen
  constructor (``FrozenGraph.freeze(...)``, ``DistanceOracle.build(...)``,
  ``.induced(...)``, ``.without_attrs()``) or on parameters named
  ``frozen``/``snapshot``/``oracle``.

Known miss: aliases (``x = frozen; x.labels = ...``) are not tracked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleUnderLint, Rule, register
from repro.analysis.rules._util import (
    MUTATING_METHODS,
    assign_targets,
    is_classmethod,
    is_self_attr,
    methods_of,
    receiver_matches,
    subscript_root,
    tracked_receivers,
)

FROZEN_CLASSES = frozenset({"FrozenGraph", "DistanceOracle"})
FACTORY_ATTRS = frozenset({"freeze", "from_buffers", "build", "induced", "without_attrs"})
ALLOWED_METHODS = frozenset({"__init__", "__setstate__"})
PARAM_NAMES = frozenset({"frozen", "snapshot", "oracle"})


def _attr_of_interest(node: ast.AST, receiver_ok) -> str | None:
    """The public attribute name when ``node`` is ``<recv>.attr`` with a
    matching receiver, else None."""
    if (
        isinstance(node, ast.Attribute)
        and not node.attr.startswith("_")
        and receiver_ok(node.value)
    ):
        return node.attr
    return None


def _mutations(body: list[ast.stmt], receiver_ok) -> Iterator[tuple[ast.AST, int, str]]:
    """Yield (node, line, description) for every mutation through a
    matching receiver inside ``body``."""
    for stmt in body:
        for node in ast.walk(stmt):
            # x.attr = ... / x.attr += ... / del x.attr, and the subscript
            # forms x.attr[i] = ... rooted at a matching receiver.
            for target in assign_targets(node):
                root = subscript_root(target)
                attr = _attr_of_interest(root, receiver_ok)
                if attr is not None:
                    kind = (
                        "subscript store into"
                        if isinstance(target, ast.Subscript)
                        else "assignment to"
                    )
                    yield (node, node.lineno, f"{kind} frozen field {attr!r}")
            # x.attr.append(...) and friends.
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in MUTATING_METHODS:
                    root = subscript_root(node.func.value)
                    attr = _attr_of_interest(root, receiver_ok)
                    if attr is not None:
                        yield (
                            node,
                            node.lineno,
                            f"in-place {method}() on frozen field {attr!r}",
                        )


@register
class FrozenImmutabilityRule(Rule):
    id = "frozen-immutability"
    description = (
        "no mutation of FrozenGraph/DistanceOracle buffer fields after "
        "construction"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[tuple[int, str]]:
        # -- part A: inside the frozen classes themselves ---------------
        frozen_method_nodes: set[ast.AST] = set()
        for cls in module.classes():
            if cls.name not in FROZEN_CLASSES:
                continue
            for method in methods_of(cls):
                frozen_method_nodes.add(method)
                if method.name in ALLOWED_METHODS or is_classmethod(method):
                    continue
                for _node, line, what in _mutations(
                    method.body, lambda recv: is_self_attr(recv)
                ):
                    yield (
                        line,
                        f"{what} outside {cls.name} constructors "
                        f"(in {method.name}) — frozen objects are shared "
                        "across queries and processes",
                    )

        # -- part B: instances anywhere else ----------------------------
        local_names, self_attrs = tracked_receivers(
            module.tree, FROZEN_CLASSES, factory_attrs=FACTORY_ATTRS
        )
        param_locals = set()
        for func in module.functions():
            for arg in func.args.posonlyargs + func.args.args + func.args.kwonlyargs:
                if arg.arg in PARAM_NAMES:
                    param_locals.add(arg.arg)
        names = local_names | param_locals

        def receiver_ok(recv: ast.AST) -> bool:
            return receiver_matches(recv, names, self_attrs)

        # Skip statements that live inside the frozen classes' own
        # constructor-adjacent methods (freeze builds via a local `frozen`).
        allowed_regions = {
            method
            for cls in module.classes()
            if cls.name in FROZEN_CLASSES
            for method in methods_of(cls)
            if method.name in ALLOWED_METHODS or is_classmethod(method)
        }

        skip_regions = allowed_regions | frozen_method_nodes

        def skipped(node: ast.AST) -> bool:
            # Constructor contexts are allowed; part A already covered the
            # remaining method bodies of the frozen classes themselves.
            return any(anc in skip_regions for anc in module.ancestors(node))

        for node, line, what in _mutations(list(module.tree.body), receiver_ok):
            if skipped(node):
                continue
            yield (
                line,
                f"{what} after construction — frozen objects are "
                "shared across queries and processes",
            )
