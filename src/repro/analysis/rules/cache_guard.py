"""cache-version-guard: every cache read validates against Graph.version.

The engine's caches (``QueryCache``, ``RankCache``, ``SnapshotCache``,
``OracleCache``) are all version-validated: ``get`` takes the live
``Graph.version`` and drops stale entries instead of serving them, so an
out-of-band graph mutation can never resurface an old answer (PR 3
introduced the pattern for ``RankCache``; PR 8 closed the last gap by
giving ``QueryCache`` the same contract).

What this rule matches: the file is scanned for names bound to one of the
four cache constructors (``self._cache = QueryCache(...)``, ``cache =
RankCache(...)``); on those receivers,

* a ``.get(...)`` call must carry a version argument — at least two
  positional arguments, or a ``graph_version=`` keyword;
* a ``.peek(...)`` call is flagged unconditionally: peek is the
  deliberately version-unchecked accessor, so every use must justify
  itself with a suppression.

Known miss: caches reached through another object (``engine._cache``)
are not tracked — the rule is per-file by construction.  Membership
tests (``key in cache``) are structural by design and stay unflagged;
version-aware planning paths should call ``QueryCache.fresh`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleUnderLint, Rule, register
from repro.analysis.rules._util import receiver_matches, tracked_receivers

CACHE_CLASSES = frozenset(
    {"QueryCache", "RankCache", "SnapshotCache", "OracleCache"}
)


@register
class CacheVersionGuardRule(Rule):
    id = "cache-version-guard"
    description = (
        "reads of the version-validated caches must pass the live "
        "Graph.version (get) or justify the unchecked accessor (peek)"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[tuple[int, str]]:
        local_names, self_attrs = tracked_receivers(module.tree, CACHE_CLASSES)
        if not local_names and not self_attrs:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if not receiver_matches(func.value, local_names, self_attrs):
                continue
            if func.attr == "get":
                has_version = len(node.args) >= 2 or any(
                    keyword.arg == "graph_version" for keyword in node.keywords
                )
                if not has_version:
                    yield (
                        node.lineno,
                        "cache read without a Graph.version argument — a "
                        "stale entry would be served after an out-of-band "
                        "mutation (pass graph.version to get())",
                    )
            elif func.attr == "peek":
                yield (
                    node.lineno,
                    "peek() bypasses version validation — use get(key, "
                    "graph.version), or justify the unchecked read",
                )
