"""fault-point-registered: every injection site is in the central registry.

The crash-recovery sweep (``repro.testing.chaos``) enumerates
:data:`repro.testing.faults.FAULT_POINTS` and kills the process at every
registered point.  That guarantee inverts into a requirement: a
``fault_point("...")`` call whose name is *not* in the registry is an
injection site the sweep silently never exercises — exactly the kind of
quiet coverage hole fault injection exists to eliminate.

What this rule matches (only in modules that reference ``fault_point``):

* ``fault_point("name")`` where the string literal is not a member of
  ``FAULT_POINTS`` — including typos, since the runtime check in
  :func:`repro.testing.faults.fault_point` only fires on paths a test
  actually reaches;
* ``fault_point(expr)`` with a non-literal argument — a computed name
  cannot be enumerated statically, so the sweep could not prove it is
  covered; fault point names are part of the crash-safety contract and
  must be spelled out.

The definition site itself (``repro/testing/faults.py``) is exempt: its
``fault_point`` *is* the function, not a call site of interest.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.core import ModuleUnderLint, Rule, register


def _registry() -> frozenset[str]:
    # Imported lazily so linting a tree never requires the whole library
    # import graph at rule-registration time.
    from repro.testing.faults import FAULT_POINTS

    return FAULT_POINTS


@register
class FaultRegistryRule(Rule):
    id = "fault-point-registered"
    description = (
        "every fault_point(\"name\") literal must appear in "
        "repro.testing.faults.FAULT_POINTS so the crash sweep covers it"
    )

    def check(self, module: ModuleUnderLint) -> Iterator[tuple[int, str]]:
        if module.path_endswith("testing/faults.py"):
            return
        registry = None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name != "fault_point":
                continue
            if registry is None:
                registry = _registry()
            if not node.args:
                yield node.lineno, "fault_point() called without a name"
                continue
            arg = node.args[0]
            if not (isinstance(arg, ast.Constant) and isinstance(arg.value, str)):
                yield (
                    node.lineno,
                    "fault_point() argument must be a string literal — a "
                    "computed name cannot be enumerated by the crash sweep",
                )
                continue
            if arg.value not in registry:
                yield (
                    node.lineno,
                    f"fault point {arg.value!r} is not registered in "
                    "repro.testing.faults.FAULT_POINTS — the crash sweep "
                    "would silently skip it",
                )
