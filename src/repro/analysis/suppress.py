"""Per-line suppression comments with mandatory justifications.

The directive grammar (one comment, same line as the finding or a
standalone comment on the line directly above it)::

    # repro-lint: disable=rule-a,rule-b -- why this exception is sound

The justification after ``--`` is *mandatory*: an empty one, like an
unknown rule id, is reported as a ``bad-suppression`` finding — which is
itself unsuppressable.  The point is that every grandfathered exception in
the tree carries its own reviewable argument, not a bare mute.

Comments are found with :mod:`tokenize` (not regex over raw lines) so
directive-looking text inside string literals is never honoured — a string
cannot silence the linter.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.core import BAD_SUPPRESSION, Finding

# Lazy rule-list match so ``--`` reliably starts the justification even
# though rule ids themselves contain hyphens.
DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<rules>[A-Za-z0-9_, -]*?)"
    r"\s*(?:--\s*(?P<why>.*))?$"
)


@dataclass
class Suppressions:
    """rule id -> set of line numbers it is disabled on."""

    by_rule: dict[str, set[int]] = field(default_factory=dict)

    def add(self, rule: str, line: int) -> None:
        self.by_rule.setdefault(rule, set()).add(line)

    def covers(self, rule: str, line: int) -> bool:
        return line in self.by_rule.get(rule, ())


def collect_suppressions(
    source: str, path: str
) -> tuple[Suppressions, list[Finding]]:
    """Parse every suppression directive in ``source``.

    Returns the suppression table plus the audit findings
    (``bad-suppression``) for malformed directives.  A directive on a line
    of its own covers the *next* line; a trailing directive covers its own
    line.  Known rule ids are checked lazily against the registry so this
    module does not import the rule pack at import time.
    """
    from repro.analysis.core import all_rules

    known = set(all_rules()) | {BAD_SUPPRESSION, "parse-error"}
    table = Suppressions()
    audit: list[Finding] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # An unparsable file is reported by the driver as parse-error;
        # there is nothing to suppress in it.
        return table, audit
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = DIRECTIVE.search(token.string)
        if match is None:
            # Only the tool name followed by a colon marks a directive
            # attempt; prose comments may mention the tool by name.
            if "repro-lint" + ":" in token.string:
                audit.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        path=path,
                        line=token.start[0],
                        message=(
                            "malformed repro-lint directive (expected "
                            "'# repro-lint: disable=<rule> -- <justification>')"
                        ),
                        source_line=token.string.strip(),
                    )
                )
            continue
        line = token.start[0]
        # A comment that is the only thing on its line covers the next line
        # as well (the directive-above-the-statement style); a trailing
        # comment covers exactly its own line.
        own_line_only = token.line.strip().startswith("#")
        justification = (match.group("why") or "").strip()
        rules = [name.strip() for name in match.group("rules").split(",")]
        rules = [name for name in rules if name]
        if not rules:
            audit.append(
                Finding(
                    rule=BAD_SUPPRESSION,
                    path=path,
                    line=line,
                    message="suppression names no rules",
                    source_line=token.string.strip(),
                )
            )
            continue
        if not justification:
            audit.append(
                Finding(
                    rule=BAD_SUPPRESSION,
                    path=path,
                    line=line,
                    message=(
                        "suppression has no justification "
                        "(add ' -- <why this exception is sound>')"
                    ),
                    source_line=token.string.strip(),
                )
            )
            continue
        for name in rules:
            if name not in known:
                audit.append(
                    Finding(
                        rule=BAD_SUPPRESSION,
                        path=path,
                        line=line,
                        message=f"suppression names unknown rule {name!r}",
                        source_line=token.string.strip(),
                    )
                )
                continue
            table.add(name, line)
            if own_line_only:
                table.add(name, line + 1)
    return table, audit
