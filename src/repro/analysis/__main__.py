"""``python -m repro.analysis`` — the repro-lint entry point."""

import sys

from repro.analysis.cli import main

if __name__ == "__main__":  # pragma: no cover - subprocess-only entry point
    sys.exit(main())
