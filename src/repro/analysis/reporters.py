"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json

from repro.analysis.core import Finding, LintResult


def _sorted(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule))


def render_text(
    result: LintResult,
    show_suppressed: bool = False,
    show_baselined: bool = True,
) -> str:
    """Human-readable report: one line per finding plus a summary."""
    lines: list[str] = []
    for finding in _sorted(result.findings):
        if finding.suppressed and not show_suppressed:
            continue
        if finding.baselined and not show_baselined:
            continue
        marker = ""
        if finding.suppressed:
            marker = " (suppressed)"
        elif finding.baselined:
            marker = " (baselined)"
        lines.append(
            f"{finding.path}:{finding.line}: [{finding.rule}] "
            f"{finding.message}{marker}"
        )
        if finding.source_line:
            lines.append(f"    {finding.source_line}")
    active = len(result.active)
    summary = (
        f"repro-lint: {active} finding{'s' if active != 1 else ''} "
        f"({len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined) "
        f"in {result.files_checked} file{'s' if result.files_checked != 1 else ''}"
    )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable key order)."""
    payload = {
        "files_checked": result.files_checked,
        "counts": {
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
        "findings": [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "message": finding.message,
                "source_line": finding.source_line,
                "suppressed": finding.suppressed,
                "baselined": finding.baselined,
                "fingerprint": finding.fingerprint(),
            }
            for finding in _sorted(result.findings)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
