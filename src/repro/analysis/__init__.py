"""repro-lint: AST-based enforcement of the engine's invariants.

Public surface:

>>> from repro.analysis import lint_source
>>> [f.rule for f in lint_source("import ast\\n")]
[]

See :mod:`repro.analysis.core` for the framework,
:mod:`repro.analysis.rules` for the seven project rules, and run
``python -m repro.analysis --list-rules`` (or ``repro lint``) for the
command-line front end.
"""

from repro.analysis.core import (
    Finding,
    LintResult,
    ModuleUnderLint,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
    rule_ids,
    select_rules,
)

__all__ = [
    "Finding",
    "LintResult",
    "ModuleUnderLint",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
    "rule_ids",
    "select_rules",
]
