"""The `repro-lint` core: findings, rules, and the per-file lint driver.

Seven PRs of engine work have accumulated load-bearing invariants —
version-validated cache reads, immutable frozen buffers, guard threading,
spawn-safe pool payloads, deterministic kernels, single version bumps,
wrapped boundary errors — that lived only in prose and in tests that catch
violations *after* they ship.  This package checks them at the source
level, over the Python ``ast``, before a line ever runs.

The moving parts:

* :class:`Finding` — one diagnostic, with a content-based
  :meth:`~Finding.fingerprint` so baselines survive line-number drift;
* :class:`Rule` — a named check over a parsed :class:`ModuleUnderLint`;
  concrete rules live in :mod:`repro.analysis.rules` and register
  themselves via :func:`register`;
* :func:`lint_source` / :func:`lint_paths` — the drivers: parse, run every
  rule, apply suppression comments (:mod:`repro.analysis.suppress`) and a
  baseline (:mod:`repro.analysis.baseline`).

Rules are *approximations by design*: static analysis over names and
shapes, not a type system.  Each rule's docstring states exactly what it
matches and what it knowingly misses; deliberate exceptions at call sites
carry a ``# repro-lint: disable=<rule> -- <justification>`` comment whose
justification text is itself asserted non-empty (``bad-suppression``).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

#: Directory names the path walker skips by default.  ``lint_fixtures``
#: holds deliberately-violating corpus files for the linter's own tests;
#: linting them as part of the repo sweep would defeat their purpose.
DEFAULT_EXCLUDED_DIRS = frozenset(
    {"lint_fixtures", "__pycache__", ".git", ".hypothesis", ".pytest_cache"}
)

#: Meta rule ids (not registered visitors; emitted by the driver itself).
PARSE_ERROR = "parse-error"
BAD_SUPPRESSION = "bad-suppression"

#: Rules that cannot be suppressed (suppressing a broken suppression with
#: another suppression would be turtles all the way down).
UNSUPPRESSABLE = frozenset({BAD_SUPPRESSION})


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule against one source line."""

    rule: str
    path: str
    line: int
    message: str
    source_line: str = ""
    suppressed: bool = False
    baselined: bool = False

    def fingerprint(self) -> str:
        """Content-based identity for baselining.

        Hashes the rule id, the file path and the *stripped source line*
        (not the line number), so a finding keeps its identity when code
        above it moves.  Two identical violations on identical lines in
        one file do collide — the baseline treats them as one, which is
        the conservative direction (the second one resurfaces the moment
        the first is fixed).
        """
        text = f"{self.rule}::{self.path}::{self.source_line.strip()}"
        return hashlib.sha1(text.encode("utf-8")).hexdigest()

    @property
    def active(self) -> bool:
        """True when the finding should fail the run."""
        return not self.suppressed and not self.baselined


class ModuleUnderLint:
    """A parsed source file handed to every rule.

    ``path`` is kept as given (posix-normalised) so rules can scope by
    path shape (``module.path_endswith("engine/storage.py")``) and so
    fixtures can opt into a scope by mirroring the directory layout.
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = Path(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self._parents: dict[ast.AST, ast.AST] | None = None

    # -- path scoping --------------------------------------------------
    def path_endswith(self, *suffixes: str) -> bool:
        return any(self.path.endswith(suffix) for suffix in suffixes)

    def has_path_part(self, *parts: str) -> bool:
        own = set(Path(self.path).parts)
        return any(part in own for part in parts)

    # -- tree helpers --------------------------------------------------
    def parents(self) -> dict[ast.AST, ast.AST]:
        """child -> parent map over the whole tree (built once, lazily)."""
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        parents = self.parents()
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def classes(self) -> Iterator[ast.ClassDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.ClassDef):
                yield node


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`id` / :attr:`description` and implement
    :meth:`check`, yielding ``(line, message)`` pairs.  The driver turns
    those into :class:`Finding` objects, attaches source lines, and
    applies suppressions and the baseline.
    """

    id: str = ""
    description: str = ""

    def check(self, module: ModuleUnderLint) -> Iterator[tuple[int, str]]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate and register a rule by its id."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id: {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    """id -> rule instance for every registered rule (loads the rule pack)."""
    # Importing the package registers every rule module exactly once.
    from repro.analysis import rules  # noqa: F401  (import-for-effect)

    return dict(_REGISTRY)


def rule_ids() -> list[str]:
    return sorted(all_rules())


def select_rules(only: Iterable[str] | None = None) -> list[Rule]:
    registry = all_rules()
    if only is None:
        return [registry[rule_id] for rule_id in sorted(registry)]
    chosen = []
    for rule_id in only:
        if rule_id not in registry:
            raise KeyError(f"unknown rule: {rule_id!r} (see --list-rules)")
        chosen.append(registry[rule_id])
    return chosen


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    path: str = "<string>",
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; returns findings sorted by (line, rule).

    Suppression comments are honoured (and audited: a directive with an
    empty justification or an unknown rule id is itself a finding).  The
    baseline is a :func:`lint_paths` concern — this function reports raw.

    >>> findings = lint_source("import time\\n")
    >>> findings
    []
    """
    from repro.analysis.suppress import collect_suppressions

    if rules is None:
        rules = select_rules()
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        line = exc.lineno or 1
        return [
            Finding(
                rule=PARSE_ERROR,
                path=Path(path).as_posix(),
                line=line,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    module = ModuleUnderLint(path, source, tree)
    findings: list[Finding] = []
    seen: set[tuple[str, int, str]] = set()
    for rule in rules:
        for line, message in rule.check(module):
            if (rule.id, line, message) in seen:
                continue  # overlapping walks may surface a site twice
            seen.add((rule.id, line, message))
            findings.append(
                Finding(
                    rule=rule.id,
                    path=module.path,
                    line=line,
                    message=message,
                    source_line=module.source_line(line).strip(),
                )
            )
    suppressions, audit = collect_suppressions(source, module.path)
    checked: list[Finding] = []
    for finding in findings:
        if finding.rule not in UNSUPPRESSABLE and suppressions.covers(
            finding.rule, finding.line
        ):
            finding = replace(finding, suppressed=True)
        checked.append(finding)
    checked.extend(audit)
    checked.sort(key=lambda f: (f.line, f.rule))
    return checked


@dataclass
class LintResult:
    """Everything :func:`lint_paths` learned in one run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def baselined(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.baselined]

    @property
    def ok(self) -> bool:
        return not self.active


def iter_python_files(
    paths: Iterable[str | Path],
    excluded_dirs: frozenset[str] = DEFAULT_EXCLUDED_DIRS,
) -> Iterator[Path]:
    """Yield ``*.py`` files under ``paths``, sorted, skipping excluded dirs."""
    seen: set[Path] = set()
    for raw in paths:
        root = Path(raw)
        if root.is_file():
            candidates: Iterable[Path] = [root]
        elif root.is_dir():
            candidates = sorted(root.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {root}")
        for candidate in candidates:
            if candidate in seen:
                continue
            if any(part in excluded_dirs for part in candidate.parts):
                continue
            seen.add(candidate)
            yield candidate


def lint_paths(
    paths: Iterable[str | Path],
    rules: Sequence[Rule] | None = None,
    baseline_fingerprints: frozenset[str] | None = None,
    excluded_dirs: frozenset[str] = DEFAULT_EXCLUDED_DIRS,
    read_text: Callable[[Path], str] | None = None,
) -> LintResult:
    """Lint every Python file under ``paths``.

    Findings whose fingerprint appears in ``baseline_fingerprints`` are
    marked ``baselined`` (grandfathered: reported but not failing).
    """
    if rules is None:
        rules = select_rules()
    result = LintResult()
    for file_path in iter_python_files(paths, excluded_dirs=excluded_dirs):
        source = (
            read_text(file_path)
            if read_text is not None
            else file_path.read_text(encoding="utf-8")
        )
        findings = lint_source(source, path=str(file_path), rules=rules)
        if baseline_fingerprints:
            findings = [
                replace(finding, baselined=True)
                if not finding.suppressed
                and finding.fingerprint() in baseline_fingerprints
                else finding
                for finding in findings
            ]
        result.findings.extend(findings)
        result.files_checked += 1
    return result
