"""Node-equivalence computation for query-preserving compression.

Two nodes may be merged when they are **mutually similar**: each
out-simulates the other with respect to a *compression label* (a projection
of node attributes).  Pat and Fred in the paper's example "simulate the
behavior of each other in the collaboration network" and hence "could be
considered equivalent when computing M(Q,G)".

Two algorithms, trading compression ratio for speed:

* :func:`bisimulation_partition` — iterated refinement by successor-class
  signatures (Kanellakis–Smolka style).  Fast; produces a *finer* partition
  (bisimilar ⇒ mutually similar), so it is always query-preserving, merely
  sometimes less compact.
* :func:`simulation_equivalence` — the maximum self-simulation preorder,
  mutualized.  Matches the SIGMOD'12 construction exactly and merges more
  (e.g. chains of differing length below equivalent heads), at quadratic
  cost *per label block* — acceptable because social-graph label blocks are
  small relative to the graph.

Both return a partition as ``{node: class index}`` with contiguous indices.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.graph.digraph import Graph, NodeId

LabelFn = Callable[[NodeId], Hashable]
Partition = dict[NodeId, int]


def bisimulation_partition(graph: Graph, label_of: LabelFn) -> Partition:
    """Coarsest partition stable under successor-class signatures.

    Starts from label classes and repeatedly regroups nodes by
    ``(current class, set of successor classes)`` until a fixpoint.  Each
    round is O(|V| + |E|); rounds are bounded by the final class count.
    """
    block_ids: dict[Hashable, int] = {}
    partition: Partition = {}
    for node in graph.nodes():
        label = label_of(node)
        if label not in block_ids:
            block_ids[label] = len(block_ids)
        partition[node] = block_ids[label]

    num_classes = len(block_ids)
    while True:
        signature_ids: dict[tuple, int] = {}
        fresh: Partition = {}
        for node in graph.nodes():
            signature = (
                partition[node],
                frozenset(partition[s] for s in graph.successors(node)),
            )
            if signature not in signature_ids:
                signature_ids[signature] = len(signature_ids)
            fresh[node] = signature_ids[signature]
        if len(signature_ids) == num_classes:
            return fresh
        num_classes = len(signature_ids)
        partition = fresh


def simulation_preorder(graph: Graph, label_of: LabelFn) -> dict[NodeId, set[NodeId]]:
    """The maximum label-respecting self-simulation of ``graph``.

    Returns ``SIM`` where ``w ∈ SIM[v]`` means *w simulates v*: they share a
    label and every move of ``v`` can be mimicked by ``w`` (for each
    successor ``v'`` of ``v`` there is a successor ``w'`` of ``w`` with
    ``w' ∈ SIM[v']``).  Candidate pairs are restricted to label blocks, so
    cost is quadratic in the largest block rather than in |V|.
    """
    blocks: dict[Hashable, list[NodeId]] = {}
    for node in graph.nodes():
        blocks.setdefault(label_of(node), []).append(node)

    sim: dict[NodeId, set[NodeId]] = {}
    for members in blocks.values():
        with_successors = [n for n in members if graph.out_degree(n) > 0]
        for node in members:
            if graph.out_degree(node) == 0:
                # Nodes without successors are simulated by every same-label node.
                sim[node] = set(members)
            else:
                # A node with moves can only be simulated by nodes with moves.
                sim[node] = set(with_successors)

    changed = True
    while changed:
        changed = False
        for node, simulators in sim.items():
            successors = list(graph.successors(node))
            if not successors:
                continue
            doomed: list[NodeId] = []
            for simulator in simulators:
                if simulator == node:
                    continue
                for child in successors:
                    child_sim = sim[child]
                    if not any(s in child_sim for s in graph.successors(simulator)):
                        doomed.append(simulator)
                        break
            if doomed:
                simulators.difference_update(doomed)
                changed = True
    return sim


def simulation_equivalence(graph: Graph, label_of: LabelFn) -> Partition:
    """Partition by mutual similarity (the SIGMOD'12 merge relation).

    Mutual similarity is an equivalence relation (similarity is a preorder);
    two nodes are equivalent iff their simulator sets coincide, so classes
    are formed by grouping on ``frozenset(SIM[v])``.
    """
    sim = simulation_preorder(graph, label_of)
    class_ids: dict[frozenset, int] = {}
    partition: Partition = {}
    for node in graph.nodes():
        key = frozenset(sim[node])
        if key not in class_ids:
            class_ids[key] = len(class_ids)
        partition[node] = class_ids[key]
    return partition


def mutually_similar(
    graph: Graph, label_of: LabelFn, first: NodeId, second: NodeId
) -> bool:
    """Do ``first`` and ``second`` simulate each other? (test/diagnostic)"""
    sim = simulation_preorder(graph, label_of)
    return second in sim[first] and first in sim[second]


def is_stable_partition(graph: Graph, label_of: LabelFn, partition: Partition) -> bool:
    """Is ``partition`` label-respecting and signature-stable?

    Signature stability (same label + same successor-class set within every
    class) certifies that merged nodes are bisimilar, hence mutually
    similar, hence safe to merge.  Used by tests and by the maintenance
    module's self-checks.
    """
    per_class_label: dict[int, Hashable] = {}
    per_class_sig: dict[int, frozenset[int]] = {}
    for node in graph.nodes():
        cls = partition[node]
        label = label_of(node)
        signature = frozenset(partition[s] for s in graph.successors(node))
        if cls not in per_class_label:
            per_class_label[cls] = label
            per_class_sig[cls] = signature
        elif per_class_label[cls] != label or per_class_sig[cls] != signature:
            return False
    return True
