"""Query-preserving graph compression (construction).

The compressed graph ``Gc`` merges each equivalence class of
:mod:`repro.compression.equivalence` into a single node.  ``Gc`` "(1) has
less nodes and edges than G, and (2) can be directly queried by the query
engine ... such that for any (bounded) simulation query Q, M(Q,G) can be
obtained by a linear time post-processing from M(Q,Gc)".

Compression is relative to a tuple of node attributes (the *compression
label*): merged nodes agree on those attributes, so any pattern whose
search conditions only read them evaluates identically on class nodes —
:meth:`CompressedGraph.is_compatible` is the engine's check.  Queries
reading other attributes must run on the original graph (or a compression
over a wider attribute tuple).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.errors import CompressionError
from repro.graph.digraph import Graph, NodeId
from repro.compression.equivalence import (
    LabelFn,
    Partition,
    bisimulation_partition,
    simulation_equivalence,
)
from repro.pattern.pattern import Pattern

#: Valid ``method`` arguments for :func:`compress`.
METHODS = ("bisimulation", "simulation")


@dataclass(frozen=True)
class CompressionSpec:
    """What a compressed graph preserves: label attributes and algorithm."""

    attrs: tuple[str, ...]
    method: str

    def __post_init__(self) -> None:
        if not self.attrs:
            raise CompressionError("compression needs at least one label attribute")
        if self.method not in METHODS:
            raise CompressionError(
                f"unknown method {self.method!r} (choose from {METHODS})"
            )


class CompressedGraph:
    """A quotient graph plus the bookkeeping to map results back.

    Attributes
    ----------
    original:
        The graph that was compressed (held by reference).
    quotient:
        An ordinary :class:`Graph` over class nodes ``c0, c1, ...``; each
        class node carries the compression-label attributes (shared by all
        members) plus ``_size`` (member count).
    node_to_class / members:
        The partition in both directions.
    """

    __slots__ = ("original", "quotient", "node_to_class", "members", "spec")

    def __init__(
        self,
        original: Graph,
        quotient: Graph,
        node_to_class: dict[NodeId, str],
        members: dict[str, list[NodeId]],
        spec: CompressionSpec,
    ) -> None:
        self.original = original
        self.quotient = quotient
        self.node_to_class = node_to_class
        self.members = members
        self.spec = spec

    # ------------------------------------------------------------------
    # effectiveness metrics (the paper's "reduced by 57%")
    # ------------------------------------------------------------------
    @property
    def node_reduction(self) -> float:
        """Fraction of nodes eliminated, in [0, 1)."""
        return 1.0 - self.quotient.num_nodes / max(self.original.num_nodes, 1)

    @property
    def edge_reduction(self) -> float:
        """Fraction of edges eliminated, in [0, 1]."""
        if self.original.num_edges == 0:
            return 0.0
        return 1.0 - self.quotient.num_edges / self.original.num_edges

    @property
    def size_reduction(self) -> float:
        """Fraction of |G| = |V| + |E| eliminated — the paper's headline metric."""
        return 1.0 - self.quotient.size / max(self.original.size, 1)

    # ------------------------------------------------------------------
    def class_of(self, node: NodeId) -> str:
        """Quotient node holding ``node``."""
        try:
            return self.node_to_class[node]
        except KeyError:
            raise CompressionError(f"node not in compressed graph: {node!r}") from None

    def is_compatible(self, pattern: Pattern) -> bool:
        """May ``pattern`` be answered on this compressed graph?

        True iff every search condition reads only the compression-label
        attributes (then predicates are constant across each class).
        """
        return pattern.referenced_attrs() <= set(self.spec.attrs)

    def require_compatible(self, pattern: Pattern) -> None:
        if not self.is_compatible(pattern):
            extra = pattern.referenced_attrs() - set(self.spec.attrs)
            raise CompressionError(
                f"pattern reads attributes not preserved by compression: {sorted(extra)}"
            )

    def __repr__(self) -> str:
        return (
            f"<CompressedGraph {self.quotient.num_nodes}/{self.original.num_nodes} nodes, "
            f"{self.quotient.num_edges}/{self.original.num_edges} edges, "
            f"method={self.spec.method}>"
        )


def label_function(graph: Graph, attrs: tuple[str, ...]) -> LabelFn:
    """The compression label: the projection of a node onto ``attrs``."""
    def label_of(node: NodeId) -> Hashable:
        node_attrs = graph.attrs(node)
        return tuple(node_attrs.get(a) for a in attrs)

    return label_of


def build_quotient(
    graph: Graph, partition: Partition, spec: CompressionSpec
) -> CompressedGraph:
    """Materialize the quotient of ``graph`` under ``partition``."""
    class_name: dict[int, str] = {}
    members: dict[str, list[NodeId]] = {}
    node_to_class: dict[NodeId, str] = {}
    for node in graph.nodes():
        raw = partition[node]
        if raw not in class_name:
            class_name[raw] = f"c{len(class_name)}"
            members[class_name[raw]] = []
        cls = class_name[raw]
        members[cls].append(node)
        node_to_class[node] = cls

    quotient = Graph(name=f"{graph.name}~{spec.method}" if graph.name else "quotient")
    for cls, nodes in members.items():
        representative = graph.attrs(nodes[0])
        label_attrs = {a: representative.get(a) for a in spec.attrs}
        quotient.add_node(cls, _size=len(nodes), **label_attrs)
    for source, target in graph.edges():
        quotient.add_edge(node_to_class[source], node_to_class[target])
    return CompressedGraph(graph, quotient, node_to_class, members, spec)


def compress(
    graph: Graph,
    attrs: tuple[str, ...] | list[str],
    method: str = "bisimulation",
) -> CompressedGraph:
    """Compress ``graph`` relative to the given label attributes.

    >>> from repro.datasets.paper_example import paper_graph, EDGE_E1
    >>> g = paper_graph(include_e1=True)
    >>> c = compress(g, attrs=("field", "specialty"), method="simulation")
    >>> c.class_of("Pat") == c.class_of("Fred")   # the paper's merge example
    True
    """
    spec = CompressionSpec(attrs=tuple(attrs), method=method)
    label_of = label_function(graph, spec.attrs)
    if spec.method == "bisimulation":
        partition = bisimulation_partition(graph, label_of)
    else:
        partition = simulation_equivalence(graph, label_of)
    return build_quotient(graph, partition, spec)
