"""Incremental maintenance of compressed graphs.

"Moreover, Gc is incrementally maintained in response to changes to G."
This module keeps a quotient partition synchronized with its graph under
edge updates without recompressing:

* quotient edge multiplicities are counted, so a unit update adjusts one
  counter;
* the updated edge's source class becomes *dirty*; dirty classes are
  re-grouped by successor-class signature and split if needed, with splits
  propagating dirtiness to predecessor classes until the partition is
  signature-stable again.

Splitting never merges, so long update sequences can leave the partition
finer than optimal — correctness is unaffected (a finer stable partition is
still query-preserving), only the compression ratio decays.  Call
:meth:`MaintainedCompression.recompress` (or set ``auto_recompress_after``)
to restore the coarsest partition.

**Soundness note** (verified by counterexample in the test suite): local
signature splitting is only sound on *signature-stable* partitions.  The
coarser ``method="simulation"`` partitions are not signature-stable, and an
update far from any split can silently invalidate a merge.  Maintenance
therefore always works on bisimulation partitions; compress with
``method="simulation"`` only for static graphs, or recompress after updates.
"""

from __future__ import annotations

from collections import deque

from repro.errors import CompressionError
from repro.graph.digraph import Graph, NodeId
from repro.compression.compress import (
    CompressedGraph,
    CompressionSpec,
    label_function,
)
from repro.compression.equivalence import bisimulation_partition
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    Update,
)

ClassId = str
ClassEdge = tuple[ClassId, ClassId]


class MaintainedCompression:
    """A compressed graph that follows its data graph through edge updates.

    >>> from repro.graph.generators import collaboration_graph
    >>> from repro.incremental.updates import random_updates
    >>> g = collaboration_graph(80, seed=3)
    >>> mc = MaintainedCompression(g, attrs=("field",))
    >>> before = mc.compressed().quotient.num_nodes
    >>> mc.apply_batch(random_updates(g, 5, seed=4))
    >>> mc.check_partition()  # still signature-stable
    """

    def __init__(
        self,
        graph: Graph,
        attrs: tuple[str, ...] | list[str],
        auto_recompress_after: int | None = None,
    ) -> None:
        if auto_recompress_after is not None and auto_recompress_after < 1:
            raise CompressionError("auto_recompress_after must be >= 1 or None")
        self.graph = graph
        self.spec = CompressionSpec(attrs=tuple(attrs), method="bisimulation")
        self.auto_recompress_after = auto_recompress_after
        self.staleness = 0
        self._label_of = label_function(graph, self.spec.attrs)
        self._node_class: dict[NodeId, ClassId] = {}
        self._class_members: dict[ClassId, set[NodeId]] = {}
        self._edge_count: dict[ClassEdge, int] = {}
        self._next_index = 0
        self._cached: CompressedGraph | None = None
        self._rebuild()

    # ------------------------------------------------------------------
    # construction / full recompression
    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        partition = bisimulation_partition(self.graph, self._label_of)
        self._node_class.clear()
        self._class_members.clear()
        self._edge_count.clear()
        self._next_index = 0
        seen: dict[int, ClassId] = {}
        for node in self.graph.nodes():
            raw = partition[node]
            if raw not in seen:
                seen[raw] = self._new_class_id()
                self._class_members[seen[raw]] = set()
            self._node_class[node] = seen[raw]
            self._class_members[seen[raw]].add(node)
        for source, target in self.graph.edges():
            self._bump_edge(self._node_class[source], self._node_class[target], +1)
        self._cached = None

    def recompress(self) -> None:
        """Throw the partition away and recompute the coarsest one."""
        self._rebuild()
        self.staleness = 0

    def _new_class_id(self) -> ClassId:
        cid = f"c{self._next_index}"
        self._next_index += 1
        return cid

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def apply(self, update: Update, apply_to_graph: bool = True) -> None:
        """Apply one edge update to the graph and re-stabilize the partition.

        ``apply_to_graph=False`` assumes the caller already mutated the
        shared graph and only the partition needs to follow.
        """
        if isinstance(update, EdgeInsertion):
            if apply_to_graph:
                update.apply(self.graph)
            self._edge_changed(update.source, update.target, +1)
        elif isinstance(update, EdgeDeletion):
            if apply_to_graph:
                update.apply(self.graph)
            self._edge_changed(update.source, update.target, -1)
        elif isinstance(update, NodeInsertion):
            if apply_to_graph:
                update.apply(self.graph)
            self._node_added(update.node)
        elif isinstance(update, AttributeUpdate):
            if apply_to_graph:
                update.apply(self.graph)
            self._label_maybe_changed(update.node)
        elif isinstance(update, NodeDeletion):
            self._apply_node_deletion(update, apply_to_graph)
        else:
            raise CompressionError(f"unknown update type: {update!r}")
        self._cached = None
        self.staleness += 1
        if (
            self.auto_recompress_after is not None
            and self.staleness >= self.auto_recompress_after
        ):
            self.recompress()

    def _edge_changed(self, source: NodeId, target: NodeId, delta: int) -> None:
        source_class = self._node_class[source]
        target_class = self._node_class[target]
        self._bump_edge(source_class, target_class, delta)
        self._stabilize(deque([source_class]))

    def _node_added(self, node: NodeId) -> None:
        """A fresh node gets its own singleton class (trivially stable;
        recompression may merge it with an existing leaf class later)."""
        cid = self._new_class_id()
        self._class_members[cid] = {node}
        self._node_class[node] = cid

    def _label_maybe_changed(self, node: NodeId) -> None:
        """After an attribute update, re-home the node if its compression
        label no longer matches its class."""
        cid = self._node_class[node]
        peers = self._class_members[cid] - {node}
        if not peers:
            return  # singleton classes stay label-uniform by definition
        peer_label = self._label_of(next(iter(peers)))
        if self._label_of(node) == peer_label:
            return  # label untouched (or changed to the same value)
        touched = [node]
        touched_set = {node}
        self._shift_incident_edges(touched, touched_set, delta=-1)
        self._class_members[cid].discard(node)
        new_cid = self._new_class_id()
        self._class_members[new_cid] = {node}
        self._node_class[node] = new_cid
        self._shift_incident_edges(touched, touched_set, delta=+1)
        dirty = self._dirty_after_split(cid, [new_cid], touched)
        self._stabilize(deque(dirty))

    def _apply_node_deletion(self, update: NodeDeletion, apply_to_graph: bool) -> None:
        node = update.node
        if apply_to_graph:
            for successor in list(self.graph.successors(node)):
                self.apply(EdgeDeletion(node, successor))
            for predecessor in list(self.graph.predecessors(node)):
                if predecessor != node:
                    self.apply(EdgeDeletion(predecessor, node))
            update.apply(self.graph)
        cid = self._node_class.pop(node)
        members = self._class_members[cid]
        members.discard(node)
        if not members:
            del self._class_members[cid]

    def apply_batch(self, updates: list[Update], apply_to_graph: bool = True) -> None:
        for update in updates:
            self.apply(update, apply_to_graph=apply_to_graph)

    # ------------------------------------------------------------------
    # split-based stabilization
    # ------------------------------------------------------------------
    def _stabilize(self, queue: deque[ClassId]) -> None:
        pending = set(queue)
        while queue:
            cid = queue.popleft()
            pending.discard(cid)
            members = self._class_members.get(cid)
            if members is None or len(members) <= 1:
                continue
            groups: dict[frozenset[ClassId], list[NodeId]] = {}
            for member in members:
                signature = frozenset(
                    self._node_class[s] for s in self.graph.successors(member)
                )
                groups.setdefault(signature, []).append(member)
            if len(groups) == 1:
                continue
            # Keep the largest group under the old id (fewer reassignments).
            ordered = sorted(groups.values(), key=len, reverse=True)
            moved_groups = ordered[1:]
            touched = [m for group in moved_groups for m in group]
            touched_set = set(touched)

            self._shift_incident_edges(touched, touched_set, delta=-1)
            new_ids: list[ClassId] = []
            for group in moved_groups:
                new_cid = self._new_class_id()
                new_ids.append(new_cid)
                self._class_members[new_cid] = set(group)
                for member in group:
                    self._node_class[member] = new_cid
            self._class_members[cid] = set(ordered[0])
            self._shift_incident_edges(touched, touched_set, delta=+1)

            for dirty in self._dirty_after_split(cid, new_ids, touched):
                if dirty not in pending:
                    pending.add(dirty)
                    queue.append(dirty)

    def _shift_incident_edges(
        self, touched: list[NodeId], touched_set: set[NodeId], delta: int
    ) -> None:
        """Adjust class-edge counters for every graph edge incident to
        ``touched`` members, each edge exactly once."""
        for member in touched:
            member_class = self._node_class[member]
            for successor in self.graph.successors(member):
                self._bump_edge(member_class, self._node_class[successor], delta)
            for predecessor in self.graph.predecessors(member):
                if predecessor not in touched_set:
                    self._bump_edge(
                        self._node_class[predecessor], member_class, delta
                    )

    def _dirty_after_split(
        self, kept: ClassId, new_ids: list[ClassId], touched: list[NodeId]
    ) -> set[ClassId]:
        dirty: set[ClassId] = {kept, *new_ids}
        for member in touched:
            for predecessor in self.graph.predecessors(member):
                dirty.add(self._node_class[predecessor])
        return dirty

    def _bump_edge(self, source_class: ClassId, target_class: ClassId, delta: int) -> None:
        key = (source_class, target_class)
        value = self._edge_count.get(key, 0) + delta
        if value < 0:
            raise CompressionError(f"class-edge count underflow for {key}")
        if value == 0:
            self._edge_count.pop(key, None)
        else:
            self._edge_count[key] = value

    # ------------------------------------------------------------------
    # views / diagnostics
    # ------------------------------------------------------------------
    def compressed(self) -> CompressedGraph:
        """The current compressed graph (rebuilt lazily after changes)."""
        if self._cached is None:
            quotient = Graph(
                name=f"{self.graph.name}~maintained" if self.graph.name else "quotient"
            )
            for cid, members in self._class_members.items():
                representative = self.graph.attrs(next(iter(members)))
                label_attrs = {a: representative.get(a) for a in self.spec.attrs}
                quotient.add_node(cid, _size=len(members), **label_attrs)
            for (source_class, target_class) in self._edge_count:
                quotient.add_edge(source_class, target_class)
            self._cached = CompressedGraph(
                self.graph,
                quotient,
                dict(self._node_class),
                {cid: sorted(ms, key=repr) for cid, ms in self._class_members.items()},
                self.spec,
            )
        return self._cached

    @property
    def num_classes(self) -> int:
        return len(self._class_members)

    def check_partition(self) -> None:
        """Verify signature stability and counter consistency (test support)."""
        from repro.compression.equivalence import is_stable_partition

        numeric = {
            node: int(cid[1:]) for node, cid in self._node_class.items()
        }
        if not is_stable_partition(self.graph, self._label_of, numeric):
            raise CompressionError("partition is not signature-stable")
        recount: dict[ClassEdge, int] = {}
        for source, target in self.graph.edges():
            key = (self._node_class[source], self._node_class[target])
            recount[key] = recount.get(key, 0) + 1
        if recount != self._edge_count:
            raise CompressionError("class-edge counters out of sync")
        for cid, members in self._class_members.items():
            for member in members:
                if self._node_class[member] != cid:
                    raise CompressionError("node/class maps out of sync")
