"""Query-preserving graph compression and its incremental maintenance."""

from repro.compression.compress import (
    METHODS,
    CompressedGraph,
    CompressionSpec,
    build_quotient,
    compress,
    label_function,
)
from repro.compression.decompress import decompress_relation, decompress_result
from repro.compression.equivalence import (
    bisimulation_partition,
    is_stable_partition,
    mutually_similar,
    simulation_equivalence,
    simulation_preorder,
)
from repro.compression.maintain import MaintainedCompression

__all__ = [
    "METHODS",
    "CompressedGraph",
    "CompressionSpec",
    "build_quotient",
    "compress",
    "label_function",
    "decompress_relation",
    "decompress_result",
    "bisimulation_partition",
    "is_stable_partition",
    "mutually_similar",
    "simulation_equivalence",
    "simulation_preorder",
    "MaintainedCompression",
]
