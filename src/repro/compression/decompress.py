"""Linear post-processing: recover ``M(Q,G)`` from ``M(Q,Gc)``.

The whole point of query-preserving compression is that evaluation runs on
the small quotient and results expand back exactly: a pattern node matches
a class node iff it matches every member, so decompression is a single pass
replacing each matched class with its member list.
"""

from __future__ import annotations

from repro.errors import CompressionError
from repro.graph.digraph import NodeId
from repro.matching.base import MatchRelation, MatchResult
from repro.compression.compress import CompressedGraph


def decompress_relation(
    relation: MatchRelation, compressed: CompressedGraph
) -> MatchRelation:
    """Expand a relation over quotient nodes to one over original nodes."""
    expanded: dict[str, set[NodeId]] = {}
    for pattern_node, class_nodes in relation.items():
        bucket: set[NodeId] = set()
        for class_node in class_nodes:
            try:
                bucket.update(compressed.members[class_node])
            except KeyError:
                raise CompressionError(
                    f"match {class_node!r} is not a class of the compressed graph"
                ) from None
        expanded[pattern_node] = bucket
    return MatchRelation(expanded)


def decompress_result(result: MatchResult, compressed: CompressedGraph) -> MatchResult:
    """Wrap :func:`decompress_relation`, re-targeting the original graph.

    The returned result's ``stats`` records the compressed route so the
    engine's explainability chain stays intact.  The result graph is built
    against the *original* graph on demand (distances in the quotient are
    not the original distances, so they are never reused).
    """
    relation = decompress_relation(result.relation, compressed)
    stats = dict(result.stats)
    stats["route"] = "compressed"
    stats["quotient_nodes"] = compressed.quotient.num_nodes
    stats["quotient_edges"] = compressed.quotient.num_edges
    return MatchResult(compressed.original, result.pattern, relation, stats=stats)
