"""Exception hierarchy for the ExpFinder reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one type at the boundary.  Subclasses are split by
subsystem; constructors take a plain message (and occasionally structured
context) so errors remain cheap to raise and easy to test.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Invalid operation on a data graph (unknown node, duplicate edge, ...)."""


class PatternError(ReproError):
    """Invalid pattern query (unknown node, bad bound, missing output node)."""


class PredicateError(ReproError):
    """Invalid search condition (unknown operator, unparsable expression)."""


class EvaluationError(ReproError):
    """A matcher was invoked with inconsistent inputs or state."""


class BudgetExceededError(EvaluationError):
    """A query blew its :class:`~repro.engine.estimator.QueryBudget`.

    Raised only when the budget was created with ``allow_partial=False``;
    with partial results allowed, the guard degrades gracefully instead
    and flags the result ``stats["partial"] = True``.
    """


class RankingError(ReproError):
    """Ranking was requested for a node that is not a match of the output node."""


class UpdateError(ReproError):
    """An edge update cannot be applied to the graph (or replayed on state)."""


class CompressionError(ReproError):
    """Compression failed or a query is incompatible with a compressed graph."""


class StorageError(ReproError):
    """File-backed graph/query/result storage failed or is inconsistent."""


class CacheError(ReproError):
    """Query cache misuse (e.g. pinning a query for an unknown graph)."""


class ServerError(ReproError):
    """The query service received an invalid request or is misconfigured."""


class AdmissionError(ServerError):
    """The query service refused a request at admission control.

    Raised when the bounded worker budget is exhausted and the waiting
    queue is full (or the wait timed out); the HTTP layer maps it to a
    ``429 Too Many Requests`` response so well-behaved clients back off.
    """


class CliError(ReproError):
    """Command-line front end received invalid arguments or files."""
