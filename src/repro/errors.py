"""Exception hierarchy for the ExpFinder reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch one type at the boundary.  Subclasses are split by
subsystem; constructors take a plain message (and occasionally structured
context) so errors remain cheap to raise and easy to test.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Invalid operation on a data graph (unknown node, duplicate edge, ...)."""


class PatternError(ReproError):
    """Invalid pattern query (unknown node, bad bound, missing output node)."""


class PredicateError(ReproError):
    """Invalid search condition (unknown operator, unparsable expression)."""


class EvaluationError(ReproError):
    """A matcher was invoked with inconsistent inputs or state."""


class BudgetExceededError(EvaluationError):
    """A query blew its :class:`~repro.engine.estimator.QueryBudget`.

    Raised only when the budget was created with ``allow_partial=False``;
    with partial results allowed, the guard degrades gracefully instead
    and flags the result ``stats["partial"] = True``.
    """


class RankingError(ReproError):
    """Ranking was requested for a node that is not a match of the output node."""


class UpdateError(ReproError):
    """An edge update cannot be applied to the graph (or replayed on state)."""


class CompressionError(ReproError):
    """Compression failed or a query is incompatible with a compressed graph."""


class StorageError(ReproError):
    """File-backed graph/query/result storage failed or is inconsistent."""


class WalError(StorageError):
    """The write-ahead changelog is corrupt, misconfigured or misused.

    Subclasses :class:`StorageError`: a broken WAL is a broken durability
    artefact, and callers guarding persistence with ``except
    StorageError`` must see WAL failures through the same funnel.
    """


class CacheError(ReproError):
    """Query cache misuse (e.g. pinning a query for an unknown graph)."""


class ServerError(ReproError):
    """The query service received an invalid request or is misconfigured."""


class AdmissionError(ServerError):
    """The query service refused a request at admission control.

    Raised when the bounded worker budget is exhausted and the waiting
    queue is full (or the wait timed out); the HTTP layer maps it to a
    ``429 Too Many Requests`` response so well-behaved clients back off.
    """


class AdmissionTimeoutError(AdmissionError):
    """A queued request waited ``queue_timeout`` without getting a slot.

    Distinct from the capacity refusal (queue full on arrival, HTTP 429):
    the request *was* admitted to the queue and then timed out, which the
    HTTP layer reports as ``408 Request Timeout`` so clients and
    dashboards can tell sustained saturation (429s) from slow drains
    (408s) apart.
    """


class ServiceDegradedError(ServerError):
    """An update was durably logged but the new epoch could not be built.

    The service keeps serving the last good epoch; ``/health`` reports
    ``degraded`` with the WAL replay lag, and the HTTP layer maps this to
    ``503 Service Unavailable`` (the write is preserved — recovery or the
    next successful publish will surface it).
    """


class FaultError(ReproError):
    """Fault-injection misuse (unknown fault point, malformed arming spec)."""


class CliError(ReproError):
    """Command-line front end received invalid arguments or files."""
