"""Long-running concurrent query service (MVCC-lite snapshot epochs).

Public surface:

* :class:`~repro.server.registry.SnapshotRegistry` /
  :class:`~repro.server.registry.Epoch` /
  :class:`~repro.server.registry.EpochHandle` — pinned immutable reads,
  atomic epoch publishing;
* :class:`~repro.server.admission.AdmissionController` — bounded
  inflight/queue admission;
* :class:`~repro.server.app.ExpFinderService` — the in-process facade;
* :class:`~repro.server.app.QueryServer` — the HTTP front end
  (``expfinder serve``).
"""

from repro.server.admission import AdmissionController
from repro.server.app import ExpFinderService, QueryServer, ServiceConfig
from repro.server.registry import Epoch, EpochHandle, SnapshotRegistry

__all__ = [
    "AdmissionController",
    "Epoch",
    "EpochHandle",
    "ExpFinderService",
    "QueryServer",
    "ServiceConfig",
    "SnapshotRegistry",
]
