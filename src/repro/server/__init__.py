"""Long-running concurrent query service (MVCC-lite snapshot epochs).

Public surface:

* :class:`~repro.server.registry.SnapshotRegistry` /
  :class:`~repro.server.registry.Epoch` /
  :class:`~repro.server.registry.EpochHandle` — pinned immutable reads,
  atomic epoch publishing;
* :class:`~repro.server.admission.AdmissionController` — bounded
  inflight/queue admission;
* :class:`~repro.server.wal.WriteAheadLog` /
  :class:`~repro.server.wal.Checkpointer` — the durable changelog every
  acknowledged publish is framed into, and the debounced snapshotter
  that bounds its replay suffix;
* :class:`~repro.server.app.ExpFinderService` — the in-process facade;
* :class:`~repro.server.app.QueryServer` — the HTTP front end
  (``expfinder serve``).
"""

from repro.server.admission import AdmissionController
from repro.server.app import ExpFinderService, QueryServer, ServiceConfig
from repro.server.registry import Epoch, EpochHandle, SnapshotRegistry
from repro.server.wal import Checkpointer, WriteAheadLog

__all__ = [
    "AdmissionController",
    "Checkpointer",
    "Epoch",
    "EpochHandle",
    "ExpFinderService",
    "QueryServer",
    "ServiceConfig",
    "SnapshotRegistry",
    "WriteAheadLog",
]
