"""Durable write-ahead changelog for the query service.

PR 9's registry made update batches *atomic* (scratch-copy apply, one
pointer swap) but not *durable*: a crash between ``publish()`` and the
next snapshot persist silently lost every committed batch.  This module
closes that gap with the classic discipline, built from the same
primitives as :mod:`repro.engine.storage` (magic/version headers, CRC-32
framing, atomic ``os.replace`` for metadata):

* :class:`WriteAheadLog` — an append-only, segment-rotated changelog.
  Every update batch is one CRC-framed record appended (and, per the
  fsync policy, synced) **before** the batch touches the master graph,
  so an acknowledged publish is on disk by construction.
* :class:`Checkpointer` — debounced snapshot persistence: every N
  batches/bytes it captures the current epoch (immutable, so the work
  happens off the write lock), persists the graph + frozen snapshot into
  the :class:`~repro.engine.storage.GraphStore` under an LSN-stamped
  artifact name, atomically replaces the checkpoint metadata, and
  truncates sealed segments the checkpoint floor has passed.
* :meth:`SnapshotRegistry.recover` (in :mod:`repro.server.registry`)
  replays the unapplied WAL suffix over the last checkpoint at startup.

On-disk layout (``wal_dir/``)::

    00000001.wal                 segment: 16-byte header + records
    00000002.wal                 ... rotated at segment_bytes
    checkpoint.<graph>.json      atomic checkpoint metadata per graph

Record framing: ``<QII`` (lsn, type, payload length) + CRC-32 over that
prefix and the payload + the JSON payload.  A torn tail — a crash mid
``write(2)`` — fails the length or CRC check and replay stops there;
valid records *after* an invalid one mean real corruption and raise
:class:`~repro.errors.WalError` instead of being silently dropped, as do
LSN gaps (a deleted or reordered segment).

Fsync policy decision table (``fsync=``):

============  =========================================  ==============
policy        loss window after OS/power failure          relative cost
============  =========================================  ==============
``always``    nothing acknowledged is ever lost          one fsync/batch
``batch``     at most ``fsync_interval``-1 latest        amortized
              batches (process crash alone loses none)
``none``      the OS page cache (seconds)                write+flush only
============  =========================================  ==============

A *process* crash (the common case, and what the fault-injection sweep
simulates) loses nothing under any policy: every append is flushed to
the OS before ``publish`` proceeds.  The policy only sizes the loss
window of a machine-level failure.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import StorageError, WalError
from repro.graph.io import atomic_write_text
from repro.testing.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.server.registry import SnapshotRegistry

SEGMENT_MAGIC = b"EXPFWALS"
WAL_FORMAT_VERSION = 1
#: magic, format version, 2 reserved + 4 pad bytes.
_SEGMENT_HEADER = struct.Struct("<8sHH4x")
#: lsn, record type, payload byte length (CRC-32 follows as one ``<I``).
_RECORD_PREFIX = struct.Struct("<QII")
_CRC = struct.Struct("<I")

RECORD_BATCH = 1
RECORD_SEAL = 2

_FSYNC_POLICIES = ("always", "batch", "none")

_SEGMENT_SUFFIX = ".wal"
_CHECKPOINT_PREFIX = "checkpoint."

#: Separator between a graph name and the LSN stamp in checkpoint
#: artifact names inside the GraphStore: ``<name>.ckpt-000000000042``.
CHECKPOINT_ARTIFACT_SEP = ".ckpt-"


@dataclass(frozen=True)
class WalRecord:
    """One decoded changelog record."""

    lsn: int
    type: int
    graph: str
    base_version: int
    updates: list[dict[str, Any]]


def checkpoint_artifact(graph: str, lsn: int) -> str:
    """The store name a checkpoint of ``graph`` at ``lsn`` persists under."""
    return f"{graph}{CHECKPOINT_ARTIFACT_SEP}{lsn:012d}"


class WriteAheadLog:
    """Append-only, CRC-framed, segment-rotated update changelog.

    One instance per service process.  Opening an existing directory
    scans every segment (validating framing and LSN continuity), learns
    the last LSN and any torn tail, and starts a *fresh* active segment
    — an unsealed predecessor is exactly what a crash leaves behind, and
    appending to it would turn its torn tail into mid-log corruption.

    >>> import tempfile
    >>> wal = WriteAheadLog(tempfile.mkdtemp())
    >>> wal.append("g", [{"op": "add-node", "node": "n"}], base_version=0)
    1
    >>> [record.graph for record in wal.records()]
    ['g']
    >>> wal.close()
    """

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "batch",
        segment_bytes: int = 4 * 1024 * 1024,
        fsync_interval: int = 16,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r} (one of {', '.join(_FSYNC_POLICIES)})"
            )
        if segment_bytes < _SEGMENT_HEADER.size + _RECORD_PREFIX.size + _CRC.size:
            raise WalError(f"segment_bytes too small: {segment_bytes}")
        if fsync_interval < 1:
            raise WalError(f"fsync_interval must be >= 1: {fsync_interval}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_policy = fsync
        self.segment_bytes = segment_bytes
        self.fsync_interval = fsync_interval
        self._lock = threading.RLock()
        self._closed = False
        self._active: Any = None
        self._active_seq = 0
        self._active_size = 0
        self._appends_since_fsync = 0
        self.counters = {
            "appends": 0,
            "fsyncs": 0,
            "rotations": 0,
            "seals": 0,
            "truncated_segments": 0,
        }
        # Scan what a previous process left behind: last LSN, per-segment
        # LSN ranges (for truncation) and the torn-tail diagnosis.
        self._segment_index: dict[int, tuple[int, int]] = {}
        #: highest segment number kept on disk by the startup scan —
        #: includes record-less segments (header + torn first record)
        #: that never enter ``_segment_index``, so the next segment this
        #: process opens can never collide with a crash artifact.
        self._max_disk_seq = 0
        #: byte size of the most recent batch frame (checkpoint debounce)
        self.last_frame_bytes = 0
        self.torn_tail_bytes = 0
        last_lsn: int | None = None
        for seq, path in self._segment_paths():
            size = path.stat().st_size
            if size == 0 or size == _SEGMENT_HEADER.size:
                # A crash between creating the segment and writing its
                # first record (empty: before the header reached the OS;
                # header-sized: after).  It holds nothing, and leaving it
                # would collide with the next segment this process opens.
                path.unlink()
                continue
            self._max_disk_seq = max(self._max_disk_seq, seq)
            lsns = [record.lsn for record, _ in self._read_segment(path, last_lsn)]
            if lsns:
                self._segment_index[seq] = (min(lsns), max(lsns))
                last_lsn = max(lsns)
        self._next_lsn = (last_lsn or 0) + 1
        self._open_next_segment()

    # ------------------------------------------------------------------
    # appending
    # ------------------------------------------------------------------
    def append(
        self, graph: str, updates: list[dict[str, Any]], base_version: int
    ) -> int:
        """Durably frame one update batch; returns its LSN.

        Called by :meth:`SnapshotRegistry.publish` *before* the batch is
        applied — write-ahead.  The frame reaches the OS in a single
        unbuffered ``write(2)``; the fsync policy decides whether the
        kernel is also forced to media before this returns.
        """
        try:
            payload = json.dumps(
                {"graph": graph, "base_version": base_version, "updates": updates},
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise WalError(f"update batch is not JSON-serializable: {exc}") from exc
        with self._lock:
            self._check_open()
            return self._append_locked(RECORD_BATCH, payload)

    def _append_locked(self, record_type: int, payload: bytes) -> int:
        frame_size = _RECORD_PREFIX.size + _CRC.size + len(payload)
        if (
            record_type == RECORD_BATCH
            and self._active_size > _SEGMENT_HEADER.size
            and self._active_size + frame_size > self.segment_bytes
        ):
            self._rotate_locked()
        lsn = self._next_lsn
        self._next_lsn += 1
        prefix = _RECORD_PREFIX.pack(lsn, record_type, len(payload))
        crc = zlib.crc32(payload, zlib.crc32(prefix))
        self._active.write(prefix + _CRC.pack(crc) + payload)
        fault_point("wal.append")
        self._active_size += frame_size
        low, high = self._segment_index.get(self._active_seq, (lsn, lsn))
        self._segment_index[self._active_seq] = (min(low, lsn), max(high, lsn))
        if record_type == RECORD_BATCH:
            self.counters["appends"] += 1
            self.last_frame_bytes = frame_size
            self._appends_since_fsync += 1
            if self.fsync_policy == "always" or (
                self.fsync_policy == "batch"
                and self._appends_since_fsync >= self.fsync_interval
            ):
                self._fsync_locked()
        return lsn

    def _fsync_locked(self) -> None:
        fault_point("wal.fsync")
        os.fsync(self._active.fileno())
        self.counters["fsyncs"] += 1
        self._appends_since_fsync = 0

    # ------------------------------------------------------------------
    # sealing / rotation / close
    # ------------------------------------------------------------------
    def _seal_locked(self) -> None:
        """End the active segment with a seal record and force it down.

        A sealed segment is durably complete regardless of fsync policy:
        truncation only ever deletes sealed segments, and deleting one
        whose records were still in the page cache would destroy the only
        copy of an acknowledged batch.
        """
        fault_point("wal.seal")
        payload = json.dumps({"graph": "", "sealed": self._active_seq}).encode("utf-8")
        lsn = self._next_lsn
        self._next_lsn += 1
        prefix = _RECORD_PREFIX.pack(lsn, RECORD_SEAL, len(payload))
        crc = zlib.crc32(payload, zlib.crc32(prefix))
        self._active.write(prefix + _CRC.pack(crc) + payload)
        os.fsync(self._active.fileno())
        low, high = self._segment_index.get(self._active_seq, (lsn, lsn))
        self._segment_index[self._active_seq] = (min(low, lsn), max(high, lsn))
        self.counters["seals"] += 1
        self._appends_since_fsync = 0

    def _rotate_locked(self) -> None:
        self._seal_locked()
        self._active.close()
        self._active = None
        fault_point("wal.rotate")
        self.counters["rotations"] += 1
        self._open_next_segment()

    def _open_next_segment(self) -> None:
        seq = max(self._segment_index, default=0)
        seq = max(seq, self._active_seq, self._max_disk_seq) + 1
        path = self.directory / f"{seq:08d}{_SEGMENT_SUFFIX}"
        # Unbuffered on purpose: every frame reaches the OS in the append
        # call itself, so a *process* crash (the fault-injection model)
        # loses nothing ever acknowledged — no userspace buffer whose
        # flush-on-GC timing could make crash simulations nondeterministic.
        try:
            handle = open(path, "xb", buffering=0)
        except OSError as exc:
            raise WalError(f"cannot create WAL segment {path}: {exc}") from exc
        handle.write(_SEGMENT_HEADER.pack(SEGMENT_MAGIC, WAL_FORMAT_VERSION, 0))
        self._active = handle
        self._active_seq = seq
        self._active_size = _SEGMENT_HEADER.size
        fault_point("wal.open-segment")

    def sync(self) -> None:
        """Force everything appended so far to media (any policy)."""
        with self._lock:
            self._check_open()
            self._fsync_locked()

    def close(self) -> None:
        """Seal the active segment and close the log (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._active is not None:
                self._seal_locked()
                self._active.close()
                self._active = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise WalError("write-ahead log is closed")

    # ------------------------------------------------------------------
    # reading / replay
    # ------------------------------------------------------------------
    def _segment_paths(self) -> list[tuple[int, Path]]:
        out = []
        for path in sorted(self.directory.glob(f"*{_SEGMENT_SUFFIX}")):
            try:
                out.append((int(path.name[: -len(_SEGMENT_SUFFIX)]), path))
            except ValueError:
                raise WalError(f"alien file in WAL directory: {path}") from None
        return out

    def _read_segment(
        self, path: Path, last_lsn: int | None
    ) -> Iterator[tuple[WalRecord, int]]:
        """Yield ``(record, end_offset)`` pairs; stop at a torn tail.

        ``last_lsn`` is the LSN of the last record of the *previous*
        segment — or ``None`` before the first record of the log, which
        may start past LSN 1 once truncation has deleted segments below
        the checkpoint floor.  From the anchor on, continuity across the
        whole log is enforced (a gap means a segment went missing *above*
        the floor — corruption, not a tail).
        """
        raw = path.read_bytes()
        if len(raw) == 0:
            # A crash between creating the file and writing its header.
            self.torn_tail_bytes += 0
            return
        if len(raw) < _SEGMENT_HEADER.size:
            raise WalError(
                f"truncated header in WAL segment {path}: {len(raw)} bytes is "
                f"smaller than the {_SEGMENT_HEADER.size}-byte header"
            )
        magic, version, _reserved = _SEGMENT_HEADER.unpack_from(raw)
        if magic != SEGMENT_MAGIC:
            raise WalError(f"{path} is not a WAL segment (bad magic {magic!r})")
        if version != WAL_FORMAT_VERSION:
            raise WalError(
                f"unsupported WAL format version {version} in {path} "
                f"(this build reads version {WAL_FORMAT_VERSION})"
            )
        offset = _SEGMENT_HEADER.size
        while offset < len(raw):
            frame = self._decode_frame(raw, offset, path)
            if frame is None:
                # Torn tail: remember how much was dropped, then make
                # sure nothing valid follows (that would be corruption).
                self.torn_tail_bytes = len(raw) - offset
                remainder = raw[offset + 1 :]
                if self._contains_valid_frame(remainder):
                    raise WalError(
                        f"corrupt record mid-log in {path} at byte {offset}: "
                        f"valid records follow an invalid one"
                    )
                return
            record, end = frame
            if last_lsn is not None and record.lsn != last_lsn + 1:
                raise WalError(
                    f"LSN gap in {path}: expected {last_lsn + 1}, found "
                    f"{record.lsn} (a segment above the checkpoint floor "
                    f"is missing or reordered)"
                )
            last_lsn = record.lsn
            yield record, end
            offset = end

    def _decode_frame(
        self, raw: bytes, offset: int, path: Path
    ) -> tuple[WalRecord, int] | None:
        if offset + _RECORD_PREFIX.size + _CRC.size > len(raw):
            return None
        lsn, record_type, length = _RECORD_PREFIX.unpack_from(raw, offset)
        body_start = offset + _RECORD_PREFIX.size + _CRC.size
        if record_type not in (RECORD_BATCH, RECORD_SEAL):
            return None
        if body_start + length > len(raw):
            return None
        (crc,) = _CRC.unpack_from(raw, offset + _RECORD_PREFIX.size)
        payload = raw[body_start : body_start + length]
        expected = zlib.crc32(payload, zlib.crc32(raw[offset : offset + _RECORD_PREFIX.size]))
        if crc != expected:
            return None
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError:
            return None
        record = WalRecord(
            lsn=lsn,
            type=record_type,
            graph=decoded.get("graph", ""),
            base_version=decoded.get("base_version", 0),
            updates=decoded.get("updates", []),
        )
        return record, body_start + length

    def _contains_valid_frame(self, raw: bytes) -> bool:
        """Whether any byte offset in ``raw`` decodes as a valid frame."""
        for offset in range(len(raw)):
            lsn_ok = len(raw) - offset >= _RECORD_PREFIX.size + _CRC.size
            if lsn_ok and self._decode_frame(raw, offset, Path("<scan>")) is not None:
                return True
        return False

    def records(
        self, after_lsn: int = 0, graph: str | None = None
    ) -> list[WalRecord]:
        """All batch records with ``lsn > after_lsn`` (optionally one graph).

        Re-reads the segment files, so it sees exactly what a recovering
        process would; a torn tail is tolerated (and measured), mid-log
        corruption raises :class:`WalError`.
        """
        with self._lock:
            self.torn_tail_bytes = 0
            out: list[WalRecord] = []
            last_lsn: int | None = None
            for _seq, path in self._segment_paths():
                for record, _end in self._read_segment(path, last_lsn):
                    last_lsn = record.lsn
                    if record.type != RECORD_BATCH or record.lsn <= after_lsn:
                        continue
                    if graph is not None and record.graph != graph:
                        continue
                    out.append(record)
            return out

    # ------------------------------------------------------------------
    # checkpoints
    # ------------------------------------------------------------------
    def _checkpoint_path(self, graph: str) -> Path:
        return self.directory / f"{_CHECKPOINT_PREFIX}{graph}.json"

    def write_checkpoint(
        self, graph: str, lsn: int, graph_version: int, artifact: str
    ) -> None:
        """Atomically replace the checkpoint metadata for ``graph``.

        The artifacts named here are already on disk (and fsynced by the
        store's atomic-write discipline) before this runs, so a crash on
        either side of the ``os.replace`` leaves a *consistent* pair:
        old meta + old artifacts, or new meta + new artifacts.
        """
        atomic_write_text(
            self._checkpoint_path(graph),
            json.dumps(
                {
                    "format": "repro.wal-checkpoint",
                    "version": WAL_FORMAT_VERSION,
                    "graph": graph,
                    "lsn": lsn,
                    "graph_version": graph_version,
                    "artifact": artifact,
                },
                indent=2,
                sort_keys=True,
            ),
        )

    def read_checkpoints(self) -> dict[str, dict[str, Any]]:
        """graph name → checkpoint metadata, for every checkpointed graph."""
        out: dict[str, dict[str, Any]] = {}
        for path in sorted(self.directory.glob(f"{_CHECKPOINT_PREFIX}*.json")):
            try:
                meta = json.loads(path.read_text())
            except (OSError, json.JSONDecodeError) as exc:
                raise WalError(f"corrupt checkpoint metadata {path}: {exc}") from exc
            if (
                not isinstance(meta, dict)
                or meta.get("format") != "repro.wal-checkpoint"
                or not isinstance(meta.get("lsn"), int)
            ):
                raise WalError(f"malformed checkpoint metadata {path}")
            out[meta["graph"]] = meta
        return out

    def checkpoint_floor(self) -> int | None:
        """The lowest checkpoint LSN across graphs (truncation bound)."""
        checkpoints = self.read_checkpoints()
        if not checkpoints:
            return None
        return min(meta["lsn"] for meta in checkpoints.values())

    def truncate(self, upto_lsn: int) -> int:
        """Delete sealed segments fully covered by ``upto_lsn``.

        Only non-active segments whose *highest* LSN is ``<= upto_lsn``
        go; the active segment and anything with a newer record stay.
        Returns how many segments were removed.
        """
        removed = 0
        with self._lock:
            for seq, path in self._segment_paths():
                if seq == self._active_seq:
                    continue
                bounds = self._segment_index.get(seq)
                if bounds is None or bounds[1] > upto_lsn:
                    continue
                path.unlink()
                self._segment_index.pop(seq, None)
                removed += 1
                self.counters["truncated_segments"] += 1
        return removed

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def last_lsn(self) -> int:
        with self._lock:
            return self._next_lsn - 1

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "directory": str(self.directory),
                "fsync_policy": self.fsync_policy,
                "segment_bytes": self.segment_bytes,
                "fsync_interval": self.fsync_interval,
                "last_lsn": self._next_lsn - 1,
                "active_segment": self._active_seq,
                "segments": len(self._segment_paths()),
                "torn_tail_bytes": self.torn_tail_bytes,
                "closed": self._closed,
                **self.counters,
            }

    def __repr__(self) -> str:
        return f"<WriteAheadLog {self.directory} fsync={self.fsync_policy}>"


class Checkpointer:
    """Debounced snapshot persistence + WAL truncation.

    ``notify(graph)`` is cheap bookkeeping on the publish path; when a
    graph crosses ``every_batches`` (or ``every_bytes`` appended) the
    actual checkpoint runs — on the background thread by default, inline
    in ``background=False`` mode (deterministic tests and the crash
    sweep).  The work never holds the registry write lock: it captures
    the current epoch (immutable by construction) plus its applied LSN
    under the registry mutex, then persists off-lock.
    """

    def __init__(
        self,
        registry: "SnapshotRegistry",
        wal: WriteAheadLog,
        store: Any,
        every_batches: int = 64,
        every_bytes: int | None = None,
        background: bool = True,
    ) -> None:
        if every_batches < 1:
            raise WalError(f"checkpoint every_batches must be >= 1: {every_batches}")
        if every_bytes is not None and every_bytes < 1:
            raise WalError(f"checkpoint every_bytes must be >= 1: {every_bytes}")
        self.registry = registry
        self.wal = wal
        self.store = store
        self.every_batches = every_batches
        self.every_bytes = every_bytes
        self.background = background
        self._lock = threading.Lock()
        self._pending: dict[str, dict[str, int]] = {}
        self._checkpointed_lsn: dict[str, int] = {
            name: meta["lsn"] for name, meta in wal.read_checkpoints().items()
        }
        self.counters = {"checkpoints": 0, "failures": 0}
        self.last_error: str | None = None
        self._dirty: set[str] = set()
        self._wake = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        if background:
            self._thread = threading.Thread(
                target=self._run, name="expfinder-checkpointer", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------
    def notify(self, graph: str, appended_bytes: int = 0) -> None:
        """Record one published batch; trigger a checkpoint past threshold."""
        with self._lock:
            entry = self._pending.setdefault(graph, {"batches": 0, "bytes": 0})
            entry["batches"] += 1
            entry["bytes"] += appended_bytes
            due = entry["batches"] >= self.every_batches or (
                self.every_bytes is not None and entry["bytes"] >= self.every_bytes
            )
            if due:
                self._dirty.add(graph)
        if due:
            if self.background:
                self._wake.set()
            else:
                self._drain_dirty()

    def _run(self) -> None:  # pragma: no cover - exercised via events/join
        while not self._stop.is_set():
            self._wake.wait(timeout=0.5)
            self._wake.clear()
            self._drain_dirty()

    def _drain_dirty(self) -> None:
        while True:
            with self._lock:
                if not self._dirty:
                    return
                graph = sorted(self._dirty)[0]
                self._dirty.discard(graph)
            try:
                self.checkpoint(graph)
            except (StorageError, OSError) as exc:
                # A failed checkpoint must not take the service down: the
                # WAL suffix still covers everything since the last good
                # one, so durability holds — only replay gets longer.
                # StorageError covers WalError *and* a plain store failure
                # from save_graph/save_snapshot — in background mode an
                # escape here kills the checkpointer thread for good, in
                # inline mode it fails an already-committed publish.
                with self._lock:
                    self.counters["failures"] += 1
                    self.last_error = f"{type(exc).__name__}: {exc}"

    # ------------------------------------------------------------------
    def checkpoint(self, graph: str) -> dict[str, Any] | None:
        """Persist ``graph``'s current epoch and advance the WAL floor."""
        capture = self.registry.checkpoint_capture(graph)
        if capture is None:
            return None
        epoch, applied_lsn = capture
        with self._lock:
            already = self._checkpointed_lsn.get(graph)
        if already is not None and already >= applied_lsn:
            return None  # nothing new since the last checkpoint
        artifact = checkpoint_artifact(graph, applied_lsn)
        self.store.save_graph(artifact, epoch.graph)
        self.store.save_snapshot(artifact, epoch.frozen)
        fault_point("checkpoint.snapshot")
        self.wal.write_checkpoint(graph, applied_lsn, epoch.graph.version, artifact)
        fault_point("checkpoint.meta")
        with self._lock:
            self._checkpointed_lsn[graph] = applied_lsn
            self._pending.pop(graph, None)
            self.counters["checkpoints"] += 1
        self._gc_artifacts(graph, keep_lsn=applied_lsn)
        floor = self.wal.checkpoint_floor()
        fault_point("checkpoint.truncate")
        truncated = self.wal.truncate(floor) if floor is not None else 0
        return {
            "graph": graph,
            "lsn": applied_lsn,
            "artifact": artifact,
            "truncated_segments": truncated,
        }

    def checkpoint_all(self) -> list[dict[str, Any]]:
        """Checkpoint every registered graph (shutdown / drain path)."""
        out = []
        for name in self.registry.graphs():
            result = self.checkpoint(name)
            if result is not None:
                out.append(result)
        return out

    def _gc_artifacts(self, graph: str, keep_lsn: int) -> None:
        """Drop checkpoint artifacts older than the one just written.

        A crash mid-GC merely leaves orphans; the next checkpoint sweeps
        them, so this needs no atomicity of its own.
        """
        prefix = f"{graph}{CHECKPOINT_ARTIFACT_SEP}"
        for name in self.store.list_graphs():
            if not name.startswith(prefix):
                continue
            try:
                lsn = int(name[len(prefix) :])
            except ValueError:
                continue
            if lsn >= keep_lsn:
                continue
            self.store.delete_graph(name)
            if self.store.has_snapshot(name):
                self.store.delete_snapshot(name)

    # ------------------------------------------------------------------
    def close(self, final_checkpoint: bool = True) -> None:
        """Stop the background thread; optionally checkpoint everything."""
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if final_checkpoint:
            self.checkpoint_all()

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "every_batches": self.every_batches,
                "every_bytes": self.every_bytes,
                "background": self.background,
                "checkpointed_lsn": dict(self._checkpointed_lsn),
                "pending": {name: dict(entry) for name, entry in self._pending.items()},
                "last_error": self.last_error,
                **self.counters,
            }
