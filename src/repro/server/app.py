"""The query service: epochs + admission + a stdlib HTTP front end.

Layering (each usable on its own):

* :class:`ExpFinderService` — the in-process facade: graph registration,
  epoch-pinned reads, atomic update publishing, admission control and a
  warm :class:`~repro.engine.parallel.ParallelExecutor` pool built at
  startup, through which ``evaluate``/``batch``/``topk`` fan sharded
  evaluation out when ``workers > 1``.  Tests and benchmarks drive this
  object directly; its read path is relation-identical to
  :class:`~repro.engine.engine.QueryEngine`.
* :class:`QueryServer` — ``ThreadingHTTPServer`` + JSON around the
  service; one daemon thread per connection, HTTP/1.1 keep-alive.

Endpoints::

    GET  /health                          liveness + graph inventory
    GET  /stats                           registry/admission/request counters
    POST /graphs                          {"name", "graph"} register a graph
    POST /graphs/<name>/evaluate          {"pattern", "budget"?}
    POST /graphs/<name>/batch             {"patterns": [...], "budget"?}
    POST /graphs/<name>/topk              {"pattern", "k", "budget"?}
    POST /graphs/<name>/explain           {"pattern"}
    POST /graphs/<name>/update            {"updates": [...]}

Error mapping: :class:`~repro.errors.AdmissionError` → 429,
:class:`~repro.errors.AdmissionTimeoutError` and
:class:`~repro.errors.BudgetExceededError` → 408,
:class:`~repro.errors.ServiceDegradedError` → 503, any other
:class:`~repro.errors.ReproError` → 400, everything else → 500.

With ``wal_dir`` configured the service is **durable**: every update
batch is appended to a :class:`~repro.server.wal.WriteAheadLog` before
it applies, a debounced :class:`~repro.server.wal.Checkpointer` persists
snapshots behind the publish path, and construction replays any
unapplied WAL suffix over the last checkpoint
(:meth:`SnapshotRegistry.recover`) before the first request is accepted.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any

from repro.engine.estimator import QueryBudget
from repro.engine.parallel import ParallelExecutor, validate_workers
from repro.errors import ReproError, ServerError
from repro.graph.digraph import Graph
from repro.graph.io import graph_from_dict
from repro.server.admission import AdmissionController
from repro.server.registry import SnapshotRegistry
from repro.server.wal import Checkpointer, WriteAheadLog
from repro.server.wire import (
    decode_budget,
    decode_pattern,
    decode_updates,
    encode_ranked,
    encode_relation,
    error_payload,
    error_status,
)


@dataclass
class ServiceConfig:
    """Tunables of one service instance (all have serving-safe defaults)."""

    workers: int = 1
    max_inflight: int = 8
    max_queue: int = 16
    queue_timeout: float = 5.0
    cache_capacity: int = 64
    default_budget: QueryBudget | None = None
    oracle: dict[str, Any] | None = field(default=None)
    # Durability plane (all inert while wal_dir is None):
    wal_dir: str | None = None
    fsync: str = "batch"
    checkpoint_every: int = 64
    wal_segment_bytes: int = 4 * 1024 * 1024
    # Inline (synchronous) checkpointing for deterministic tests/sweeps;
    # production keeps the background thread so publishes never block.
    checkpoint_background: bool = True

    def validated(self) -> "ServiceConfig":
        validate_workers(self.workers)
        # the same checks the controller applies, surfaced at config time
        # so the CLI can name the offending flag
        AdmissionController(
            max_inflight=self.max_inflight,
            max_queue=self.max_queue,
            queue_timeout=self.queue_timeout,
        )
        if self.default_budget is not None:
            self.default_budget.validate()
        if self.fsync not in ("always", "batch", "none"):
            raise ServerError(
                f"fsync policy must be always, batch or none: {self.fsync!r}"
            )
        if self.checkpoint_every < 1:
            raise ServerError(
                f"checkpoint_every must be >= 1: {self.checkpoint_every}"
            )
        return self


class ExpFinderService:
    """Registry + admission + warm pool behind one facade.

    The executor pool (``workers > 1``) is built once at construction —
    :meth:`ParallelExecutor.warm` — and every cache-miss ``evaluate`` /
    ``batch`` / ``topk`` evaluation routes through it
    (:meth:`Epoch.evaluate` with ``executor=``), so no request ever pays
    pool construction; the executor serializes its own fan-out section
    internally because the sharded path installs module globals.
    """

    def __init__(self, config: ServiceConfig | None = None, store: Any = None) -> None:
        self.config = (config or ServiceConfig()).validated()
        self.wal: WriteAheadLog | None = None
        self.checkpointer: Checkpointer | None = None
        self.recovered: dict[str, dict[str, Any]] = {}
        if self.config.wal_dir is not None:
            if store is None:
                # Checkpoints need somewhere to live; co-locate a store
                # under the WAL directory unless the caller brought one.
                from repro.engine.storage import GraphStore

                store = GraphStore(Path(self.config.wal_dir) / "store")
            self.wal = WriteAheadLog(
                self.config.wal_dir,
                fsync=self.config.fsync,
                segment_bytes=self.config.wal_segment_bytes,
            )
        self.registry = SnapshotRegistry(
            store=store, cache_capacity=self.config.cache_capacity, wal=self.wal
        )
        if self.wal is not None:
            self.checkpointer = Checkpointer(
                self.registry,
                self.wal,
                store,
                every_batches=self.config.checkpoint_every,
                background=self.config.checkpoint_background,
            )
            self.registry.attach_checkpointer(self.checkpointer)
            # Crash recovery happens *before* the first request can pin an
            # epoch: replay the unapplied WAL suffix over the last
            # checkpoint of every graph the previous process served.
            self.recovered = self.registry.recover()
        self.admission = AdmissionController(
            max_inflight=self.config.max_inflight,
            max_queue=self.config.max_queue,
            queue_timeout=self.config.queue_timeout,
        )
        self._executor: ParallelExecutor | None = None
        if self.config.workers > 1:
            self._executor = ParallelExecutor(self.config.workers).warm()
        self._requests_lock = threading.Lock()
        self._requests: dict[str, int] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def drain(self, timeout: float = 10.0) -> bool:
        """Wait for in-flight and queued requests to finish (SIGTERM path).

        Returns whether the service went quiet within ``timeout``; either
        way the caller proceeds to :meth:`close`, which checkpoints and
        seals the WAL — nothing acknowledged is lost even on a hard exit.
        """
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            stats = self.admission.stats()
            if stats["inflight"] == 0 and stats["waiting"] == 0:
                return True
            time.sleep(0.02)
        stats = self.admission.stats()
        return stats["inflight"] == 0 and stats["waiting"] == 0

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            if self.checkpointer is not None:
                # Final checkpoint: recovery after a clean shutdown replays
                # nothing (the WAL suffix past the checkpoint is empty).
                self.checkpointer.close(final_checkpoint=True)
            if self.wal is not None:
                self.wal.close()
            if self._executor is not None:
                self._executor.close()

    def __enter__(self) -> "ExpFinderService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _count(self, endpoint: str) -> None:
        with self._requests_lock:
            self._requests[endpoint] = self._requests.get(endpoint, 0) + 1

    # ------------------------------------------------------------------
    # graph management
    # ------------------------------------------------------------------
    def register_graph(
        self,
        name: str,
        graph: Graph,
        oracle: dict[str, Any] | None = None,
        replace: bool = False,
    ) -> dict[str, Any]:
        self._count("register")
        epoch = self.registry.register(
            name, graph, oracle=oracle or self.config.oracle, replace=replace
        )
        return {
            "graph": name,
            "epoch": epoch.epoch_id,
            "nodes": epoch.graph.num_nodes,
            "edges": epoch.graph.num_edges,
            "oracle": epoch.oracle is not None,
        }

    def preload(self, name: str) -> dict[str, Any]:
        """Warm-start ``name`` from the store (mmap snapshots, no freeze)."""
        self._count("preload")
        epoch = self.registry.preload(name, oracle=self.config.oracle)
        return {
            "graph": name,
            "epoch": epoch.epoch_id,
            "nodes": epoch.graph.num_nodes,
            "edges": epoch.graph.num_edges,
            "oracle": epoch.oracle is not None,
            "fault_ins": self.registry.counters["fault_ins"],
        }

    def update_graph(self, name: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Apply a wire-format update batch; publish the next epoch."""
        self._count("update")
        updates = decode_updates(payload)
        epoch = self.registry.publish(name, updates)
        return {
            "graph": name,
            "epoch": epoch.epoch_id,
            "graph_version": epoch.graph.version,
            "applied": len(updates),
        }

    # ------------------------------------------------------------------
    # reads (admission-gated, epoch-pinned)
    # ------------------------------------------------------------------
    def evaluate(self, name: str, payload: dict[str, Any]) -> dict[str, Any]:
        self._count("evaluate")
        pattern = decode_pattern(payload)
        budget = decode_budget(payload, default=self.config.default_budget)
        with self.admission.slot():
            with self.registry.pin(name) as epoch:
                result = epoch.evaluate(
                    pattern, budget=budget, executor=self._executor
                )
                return {
                    "graph": name,
                    "epoch": epoch.epoch_id,
                    "graph_version": epoch.graph.version,
                    "relation": encode_relation(result.relation),
                    "stats": _json_stats(result.stats),
                }

    def batch(self, name: str, payload: dict[str, Any]) -> dict[str, Any]:
        """Evaluate several patterns against ONE pinned epoch.

        The whole batch sees a single consistent graph version even if
        updates publish mid-batch — that is the point of the pin.
        """
        self._count("batch")
        raw = payload.get("patterns")
        if not isinstance(raw, list) or not raw:
            raise ServerError("request needs a non-empty 'patterns' array")
        patterns = [
            decode_pattern({"pattern": text}, field="pattern") for text in raw
        ]
        budget = decode_budget(payload, default=self.config.default_budget)
        with self.admission.slot():
            with self.registry.pin(name) as epoch:
                results = [
                    epoch.evaluate(
                        pattern, budget=budget, executor=self._executor
                    )
                    for pattern in patterns
                ]
                return {
                    "graph": name,
                    "epoch": epoch.epoch_id,
                    "graph_version": epoch.graph.version,
                    "results": [
                        {
                            "relation": encode_relation(result.relation),
                            "stats": _json_stats(result.stats),
                        }
                        for result in results
                    ],
                }

    def topk(self, name: str, payload: dict[str, Any]) -> dict[str, Any]:
        self._count("topk")
        pattern = decode_pattern(payload)
        k = payload.get("k", 10)
        if not isinstance(k, int) or k < 1:
            raise ServerError(f"k must be a positive integer (got {k!r})")
        budget = decode_budget(payload, default=self.config.default_budget)
        with self.admission.slot():
            with self.registry.pin(name) as epoch:
                ranked = epoch.top_k(
                    pattern, k, budget=budget, executor=self._executor
                )
                return {
                    "graph": name,
                    "epoch": epoch.epoch_id,
                    "graph_version": epoch.graph.version,
                    "experts": encode_ranked(ranked),
                }

    def explain(self, name: str, payload: dict[str, Any]) -> dict[str, Any]:
        self._count("explain")
        pattern = decode_pattern(payload)
        with self.registry.pin(name) as epoch:
            return {"graph": name, **epoch.explain(pattern)}

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def health(self) -> dict[str, Any]:
        """Liveness + durability posture.

        ``status`` flips to ``"degraded"`` when any graph serves a stale
        epoch after a failed rebuild; with a WAL attached the payload
        carries per-graph replay lag (``appended_lsn - applied_lsn``) so
        operators can see exactly how far serving trails durability.
        """
        degraded = self.registry.degraded
        payload: dict[str, Any] = {
            "status": "degraded" if degraded else "ok",
            "graphs": self.registry.graphs(),
        }
        if self.wal is not None:
            wal_status = self.registry.wal_status()
            payload["wal"] = {
                "last_lsn": wal_status["wal"]["last_lsn"],
                "graphs": wal_status["graphs"],
            }
        return payload

    def stats(self) -> dict[str, Any]:
        with self._requests_lock:
            requests = dict(self._requests)
        stats: dict[str, Any] = {
            "registry": self.registry.stats(),
            "admission": self.admission.stats(),
            "requests": requests,
            "workers": self.config.workers,
        }
        if self.wal is not None:
            stats["wal"] = self.registry.wal_status()
        if self._executor is not None:
            stats["pools_created"] = self._executor.pools_created
        return stats


def _json_stats(stats: dict[str, Any]) -> dict[str, Any]:
    """Evaluation stats restricted to JSON-serializable values."""
    safe: dict[str, Any] = {}
    for key, value in stats.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        elif isinstance(value, dict):
            safe[key] = _json_stats(value)
    return safe


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON adapter; all logic lives in :class:`ExpFinderService`."""

    protocol_version = "HTTP/1.1"
    # Headers and body go out in separate writes; without TCP_NODELAY the
    # second write can stall ~40ms behind the peer's delayed ACK, which
    # would dominate every small-response request.
    disable_nagle_algorithm = True
    service: ExpFinderService  # installed by QueryServer on the class

    # The default handler logs every request to stderr; a load benchmark
    # issuing thousands of requests must not pay terminal I/O for each.
    def log_message(self, format: str, *args: Any) -> None:
        pass

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        try:
            if self.path == "/health":
                self._reply(200, self.service.health())
            elif self.path == "/stats":
                self._reply(200, self.service.stats())
            else:
                self._reply(404, {"error": "NotFound", "message": self.path})
        except Exception as exc:
            self._reply(error_status(exc), error_payload(exc))

    def do_POST(self) -> None:
        try:
            payload = self._read_json()
            self._reply(200, self._route_post(payload))
        except Exception as exc:
            self._reply(error_status(exc), error_payload(exc))

    # ------------------------------------------------------------------
    def _route_post(self, payload: dict[str, Any]) -> dict[str, Any]:
        parts = [part for part in self.path.split("/") if part]
        if parts == ["graphs"]:
            return self._register(payload)
        if len(parts) == 3 and parts[0] == "graphs":
            name, action = parts[1], parts[2]
            service = self.service
            if action == "evaluate":
                return service.evaluate(name, payload)
            if action == "batch":
                return service.batch(name, payload)
            if action == "topk":
                return service.topk(name, payload)
            if action == "explain":
                return service.explain(name, payload)
            if action == "update":
                return service.update_graph(name, payload)
        raise ServerError(f"no such endpoint: POST {self.path}")

    def _register(self, payload: dict[str, Any]) -> dict[str, Any]:
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise ServerError("request needs a non-empty string field 'name'")
        if "graph" in payload:
            try:
                graph = graph_from_dict(payload["graph"])
            except ReproError:
                raise
            except Exception as exc:
                raise ServerError(f"malformed graph payload: {exc}") from exc
            return self.service.register_graph(
                name, graph, replace=bool(payload.get("replace", False))
            )
        if payload.get("preload"):
            return self.service.preload(name)
        raise ServerError(
            "register needs either a 'graph' object or 'preload': true"
        )

    # ------------------------------------------------------------------
    def _read_json(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise ServerError("request body must be a JSON object")
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServerError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServerError("request body must be a JSON object")
        return payload

    def _reply(self, status: int, payload: dict[str, Any]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        # Explicit length keeps HTTP/1.1 keep-alive working (no chunking),
        # which the load generator relies on for steady connections.
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class QueryServer:
    """``ThreadingHTTPServer`` wrapper with a background serve thread.

    ``port=0`` binds an ephemeral port (tests); :attr:`address` reports
    the bound ``(host, port)``.  ``close()`` shuts the socket down and
    closes the service (idempotent).
    """

    def __init__(
        self,
        service: ExpFinderService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        handler = type("BoundHandler", (_Handler,), {"service": service})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._serving = False
        self._closed = False

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "QueryServer":
        """Serve in a daemon thread; returns immediately."""
        if self._thread is None:
            self._serving = True
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="expfinder-serve",
                daemon=True,
            )
            self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI foreground path)."""
        self._serving = True
        self._httpd.serve_forever()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            # shutdown() blocks on the serve loop's exit handshake; if the
            # loop never started there is nothing to hand-shake with.
            if self._serving:
                self._httpd.shutdown()
            self._httpd.server_close()
            if self._thread is not None:
                self._thread.join(timeout=5)
            self.service.close()

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
