"""JSON wire schemas: request decoding and response encoding.

Every decoder maps malformed input to :class:`~repro.errors.ServerError`
with a message naming the offending field — the HTTP layer turns the
``repro.errors`` hierarchy into status codes (400 for bad requests, 429
for admission refusals, 408 for blown budgets), so a client never sees a
raw ``KeyError`` as a 500.

Relations travel in the persisted ``repro.relation`` format
(:meth:`MatchRelation.to_dict`): sorted, deterministic — two services
serving the same epoch emit byte-identical JSON, which is what lets the
E18 load benchmark assert identity against direct engine calls.
"""

from __future__ import annotations

from typing import Any

from repro.engine.estimator import QueryBudget
from repro.errors import (
    AdmissionError,
    AdmissionTimeoutError,
    BudgetExceededError,
    ReproError,
    ServerError,
    ServiceDegradedError,
)
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
    Update,
)
from repro.matching.base import MatchRelation
from repro.pattern.parser import parse_pattern
from repro.pattern.pattern import Pattern


def decode_pattern(payload: dict[str, Any], field: str = "pattern") -> Pattern:
    """``{"pattern": "<text form>"}`` → a validated :class:`Pattern`."""
    text = payload.get(field)
    if not isinstance(text, str) or not text.strip():
        raise ServerError(f"request needs a non-empty string field {field!r}")
    pattern = parse_pattern(text, name=field)
    pattern.validate()
    return pattern


def decode_budget(
    payload: dict[str, Any], default: QueryBudget | None = None
) -> QueryBudget | None:
    """``{"budget": {...}}`` → a :class:`QueryBudget`, or the default.

    Keys: ``node_visits`` (int), ``seconds`` (number), ``allow_partial``
    (bool).  An absent or null ``budget`` falls back to the service
    default; an explicit ``{}`` means "unlimited" and returns ``None``.
    """
    raw = payload.get("budget")
    if raw is None:
        return default
    if not isinstance(raw, dict):
        raise ServerError(f"budget must be an object, got {type(raw).__name__}")
    if not raw:
        return None
    node_visits = raw.get("node_visits")
    seconds = raw.get("seconds")
    allow_partial = raw.get("allow_partial", True)
    if node_visits is not None and not isinstance(node_visits, int):
        raise ServerError("budget.node_visits must be an integer")
    if seconds is not None and not isinstance(seconds, (int, float)):
        raise ServerError("budget.seconds must be a number")
    if not isinstance(allow_partial, bool):
        raise ServerError("budget.allow_partial must be a boolean")
    budget = QueryBudget(
        node_visits=node_visits,
        seconds=float(seconds) if seconds is not None else None,
        allow_partial=allow_partial,
    )
    try:
        budget.validate()
    except ReproError as exc:
        raise ServerError(f"invalid budget: {exc}") from exc
    return budget


_UPDATE_OPS = ("add-edge", "remove-edge", "add-node", "remove-node", "set-attr")


def decode_updates(payload: dict[str, Any]) -> list[Update]:
    """``{"updates": [{"op": ..., ...}, ...]}`` → update objects.

    Ops: ``add-edge``/``remove-edge`` (``source``, ``target``),
    ``add-node`` (``node``, optional ``attrs`` object), ``remove-node``
    (``node``), ``set-attr`` (``node``, ``attr``, ``value``).
    """
    raw = payload.get("updates")
    if not isinstance(raw, list) or not raw:
        raise ServerError("request needs a non-empty 'updates' array")
    updates: list[Update] = []
    for position, item in enumerate(raw):
        if not isinstance(item, dict):
            raise ServerError(f"updates[{position}] must be an object")
        op = item.get("op")
        if op not in _UPDATE_OPS:
            raise ServerError(
                f"updates[{position}].op must be one of {', '.join(_UPDATE_OPS)} "
                f"(got {op!r})"
            )
        updates.append(_decode_one_update(op, item, position))
    return updates


def _decode_one_update(op: str, item: dict[str, Any], position: int) -> Update:
    def need(field: str) -> Any:
        value = item.get(field)
        if value is None:
            raise ServerError(f"updates[{position}] ({op}) needs field {field!r}")
        return value

    if op == "add-edge":
        return EdgeInsertion(need("source"), need("target"))
    if op == "remove-edge":
        return EdgeDeletion(need("source"), need("target"))
    if op == "add-node":
        attrs = item.get("attrs", {})
        if not isinstance(attrs, dict):
            raise ServerError(f"updates[{position}].attrs must be an object")
        return NodeInsertion.with_attrs(need("node"), **attrs)
    if op == "remove-node":
        return NodeDeletion(need("node"))
    return AttributeUpdate(need("node"), need("attr"), need("value"))


def encode_update(update: Update) -> dict[str, Any]:
    """An update object → its wire form (inverse of :func:`decode_updates`).

    The WAL stores batches in exactly this shape, so a record replayed at
    recovery goes through the same ``decode_updates`` → ``decompose`` →
    ``apply`` path as the original request — one codec, no drift.
    """
    if isinstance(update, EdgeInsertion):
        return {"op": "add-edge", "source": update.source, "target": update.target}
    if isinstance(update, EdgeDeletion):
        return {"op": "remove-edge", "source": update.source, "target": update.target}
    if isinstance(update, NodeInsertion):
        return {"op": "add-node", "node": update.node, "attrs": dict(update.attrs)}
    if isinstance(update, NodeDeletion):
        return {"op": "remove-node", "node": update.node}
    if isinstance(update, AttributeUpdate):
        return {
            "op": "set-attr",
            "node": update.node,
            "attr": update.attr,
            "value": update.value,
        }
    raise ServerError(f"cannot encode update of type {type(update).__name__}")


def encode_relation(relation: MatchRelation) -> dict[str, Any]:
    """The deterministic persisted form (sorted sets, stable keys)."""
    return relation.to_dict()


def encode_ranked(ranked: list) -> list[dict[str, Any]]:
    """RankedMatch list → JSON rows (node, rank, evidence sizes)."""
    return [
        {
            "node": match.node,
            "rank": match.rank,
            "impact_set_size": match.impact_set_size,
            "attrs": dict(match.attrs),
        }
        for match in ranked
    ]


def error_status(exc: Exception) -> int:
    """HTTP status for one error of the ``repro.errors`` hierarchy."""
    if isinstance(exc, AdmissionTimeoutError):
        return 408  # queued, then timed out — before the broader 429 check
    if isinstance(exc, AdmissionError):
        return 429
    if isinstance(exc, ServiceDegradedError):
        return 503  # write durably logged; epoch rebuild failed
    if isinstance(exc, BudgetExceededError):
        return 408
    if isinstance(exc, ReproError):
        return 400
    return 500


def error_payload(exc: Exception) -> dict[str, str]:
    return {"error": type(exc).__name__, "message": str(exc)}
