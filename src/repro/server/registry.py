"""MVCC-lite snapshot epochs: pinned immutable reads, atomic publishes.

The serving problem: queries traverse a ``(FrozenGraph, DistanceOracle)``
pair for milliseconds to seconds, while ``update_graph`` batches arrive
concurrently.  Classic reader/writer locking makes one side wait; the
registry instead versions the world into **epochs**:

* every epoch owns a *private* :class:`~repro.graph.digraph.Graph` copy,
  its frozen CSR snapshot, the (optional) distance oracle built from the
  same lineage, an attribute index and per-epoch query/rank caches —
  all immutable or internally locked, so any number of reader threads
  evaluate against one epoch without coordination;
* readers :meth:`~SnapshotRegistry.pin` the current epoch through a
  refcounted :class:`EpochHandle`; the pin guarantees the epoch's
  snapshots stay alive for the whole query even if newer epochs publish
  meanwhile;
* a writer applies its update batch to a *scratch copy* of the
  registry's master graph (readers never touch either) which replaces
  the master only once the whole batch has succeeded — a primitive that
  raises mid-batch leaves the served state untouched — then builds the
  next epoch off the result and swaps the ``current`` pointer under the
  registry lock: one pointer assignment is the entire critical section
  readers can observe, so a query sees either epoch N or N+1 in full,
  never a half-applied batch;
* when the last pin on a superseded epoch drains, the epoch is retired
  and its snapshots become garbage.

Distance oracles carry over between epochs when every primitive in the
batch is distance-preserving (``DistanceOracle.survives``), exactly
mirroring the single-engine refresh rule — so an attribute-only write
burst republishes in O(copy + freeze) without any label rebuild.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Sequence

from repro.engine.cache import QueryCache, RankCache, cache_key
from repro.engine.estimator import QueryBudget
from repro.engine.planner import make_plan
from repro.errors import (
    ReproError,
    ServerError,
    ServiceDegradedError,
    StorageError,
)
from repro.graph.digraph import Graph
from repro.graph.frozen import FrozenGraph
from repro.graph.index import AttributeIndex
from repro.graph.oracle import DistanceOracle
from repro.incremental.updates import Update, decompose
from repro.matching.base import MatchResult, Stopwatch
from repro.matching.bounded import match_bounded
from repro.matching.simulation import match_simulation, simulation_candidates
from repro.pattern.pattern import Pattern
from repro.ranking.topk import RankingContext, bulk_top_k_detail
from repro.testing.faults import fault_point


class Epoch:
    """One immutable published version of a graph, self-sufficient for reads.

    The graph object is private to the epoch (a copy of the master at
    publish time), so its version/attributes can never change under a
    reader.  Candidate generation shares the epoch's lazily-built
    :class:`AttributeIndex` and is serialized by a per-epoch lock (the
    index memoizes postings on first use); matching itself runs unlocked
    over the frozen snapshot.
    """

    __slots__ = (
        "name",
        "epoch_id",
        "graph",
        "frozen",
        "oracle",
        "attr_index",
        "cache",
        "rank_cache",
        "_index_lock",
        "_pins",
        "retired",
    )

    def __init__(
        self,
        name: str,
        epoch_id: int,
        graph: Graph,
        frozen: FrozenGraph,
        oracle: DistanceOracle | None,
        cache_capacity: int = 64,
    ) -> None:
        self.name = name
        self.epoch_id = epoch_id
        self.graph = graph
        self.frozen = frozen
        self.oracle = oracle
        self.attr_index = AttributeIndex(graph)
        self.cache = QueryCache(capacity=cache_capacity)
        self.rank_cache = RankCache(capacity=max(4, cache_capacity // 4))
        self._index_lock = threading.Lock()
        self._pins = 0
        self.retired = False

    # ------------------------------------------------------------------
    def candidates(self, pattern: Pattern) -> dict[str, set]:
        """Predicate candidates via the epoch's shared attribute index.

        The lock covers the index's lazy posting builds; once built,
        lookups are read-only dict probes, so contention is a startup
        phenomenon per distinct predicate.
        """
        with self._index_lock:
            return simulation_candidates(self.graph, pattern, index=self.attr_index)

    def evaluate(
        self,
        pattern: Pattern,
        budget: QueryBudget | None = None,
        executor: Any = None,
    ) -> MatchResult:
        """``M(Q,G)`` against this epoch — cache, then frozen kernels.

        Identical inputs to the single-engine direct path (same candidate
        generation, same kernels, same snapshot lineage), so the relation
        is byte-identical to ``QueryEngine.evaluate`` on the same graph
        version — the E18 benchmark asserts exactly that.  Partial
        (budget-tripped) results are never cached.

        An ``executor`` (a :class:`~repro.engine.parallel.ParallelExecutor`
        with ``workers > 1``) fans cache-miss evaluation out across its
        worker pool instead of running the kernels inline; the sharded
        result is relation-identical to the inline one (asserted by the
        differential suite), so the cache and byte-identity contracts are
        unchanged.
        """
        pattern.validate()
        watch = Stopwatch()
        key = cache_key(self.name, pattern)
        entry = self.cache.get(key, self.graph.version)
        if entry is not None:
            result = MatchResult(
                self.graph,
                pattern,
                entry.relation,
                stats=self._stamp({"route": "cache", "algorithm": "cached"}, watch),
            )
            return result
        candidates = self.candidates(pattern)
        if executor is not None and executor.workers > 1:
            result = executor.match(
                self.graph,
                pattern,
                candidates=candidates,
                frozen=self.frozen,
                oracle=self.oracle,
                budget=budget,
            )
        elif pattern.is_simulation_pattern:
            result = match_simulation(
                self.graph, pattern, candidates=candidates, frozen=self.frozen
            )
        else:
            result = match_bounded(
                self.graph,
                pattern,
                candidates=candidates,
                frozen=self.frozen,
                oracle=self.oracle,
                budget=budget,
            )
        if not result.stats.get("partial"):
            self.cache.put(key, result.relation, self.graph.version)
        result.stats.update(self._stamp({"route": "direct"}, watch))
        return result

    def top_k(
        self,
        pattern: Pattern,
        k: int,
        budget: QueryBudget | None = None,
        executor: Any = None,
    ) -> list:
        """Top-K ranked experts against this epoch (rank-cache aware)."""
        key = cache_key(self.name, pattern)
        entry = self.rank_cache.get(key, self.graph.version)
        if entry is not None:
            return bulk_top_k_detail(entry.context, k)
        result = self.evaluate(pattern, budget=budget, executor=executor)
        context = RankingContext(result.result_graph())
        ranked = bulk_top_k_detail(context, k)
        if not result.stats.get("partial"):
            self.rank_cache.put(key, context, self.graph.version)
        return ranked

    def explain(self, pattern: Pattern) -> dict[str, Any]:
        """The plan the epoch would run for ``pattern``, plus epoch facts."""
        pattern.validate()
        key = cache_key(self.name, pattern)
        plan = make_plan(
            pattern,
            cached=self.cache.fresh(key, self.graph.version),
            compression_available=False,
        )
        return {
            "route": plan.route,
            "algorithm": plan.algorithm,
            "reasons": list(plan.reasons),
            "epoch": self.epoch_id,
            "graph_version": self.graph.version,
            "oracle": self.oracle is not None,
        }

    def _stamp(self, stats: dict[str, Any], watch: Stopwatch) -> dict[str, Any]:
        stats["seconds"] = watch.seconds()
        stats["epoch"] = self.epoch_id
        stats["graph_version"] = self.graph.version
        return stats

    @property
    def pins(self) -> int:
        return self._pins

    def __repr__(self) -> str:
        state = "retired" if self.retired else "live"
        return (
            f"<Epoch {self.name}@{self.epoch_id} v{self.graph.version} "
            f"pins={self._pins} ({state})>"
        )


class EpochHandle:
    """A refcounted pin on one epoch; release exactly once.

    Usable as a context manager.  While any handle is open the epoch's
    snapshots survive, even if the registry has published successors; the
    last release of a superseded epoch retires it.
    """

    __slots__ = ("epoch", "_registry", "_released")

    def __init__(self, epoch: Epoch, registry: "SnapshotRegistry") -> None:
        self.epoch = epoch
        self._registry = registry
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._registry._unpin(self.epoch)

    @property
    def released(self) -> bool:
        return self._released

    def __enter__(self) -> Epoch:
        return self.epoch

    def __exit__(self, *exc_info: Any) -> None:
        self.release()

    def __del__(self) -> None:
        # GC can run this finalizer on a thread that already holds the
        # registry lock (any allocation inside pin()/stats() may trigger a
        # collection), so it must never take that lock: the leaked pin is
        # parked on a lock-free list the registry drains during its next
        # locked operation.
        if not self._released:
            self._released = True
            try:
                self._registry._defer_unpin(self.epoch)
            except Exception:  # pragma: no cover - interpreter teardown
                pass


class _GraphState:
    """Registry-internal per-graph record: master graph + epoch chain."""

    __slots__ = (
        "master",
        "write_lock",
        "current",
        "live",
        "next_epoch_id",
        "oracle_config",
        "appended_lsn",
        "applied_lsn",
        "degraded",
        "degraded_reason",
    )

    def __init__(self, master: Graph, oracle_config: dict[str, Any] | None) -> None:
        self.master = master
        # One writer at a time per graph; readers never take this lock.
        self.write_lock = threading.Lock()
        self.current: Epoch | None = None
        self.live: dict[int, Epoch] = {}
        self.next_epoch_id = 0
        self.oracle_config = oracle_config
        # WAL bookkeeping: LSN of the last batch durably appended for this
        # graph vs the last one whose outcome is reflected in an installed
        # epoch.  `appended - applied` is the replay lag /health reports.
        self.appended_lsn = 0
        self.applied_lsn = 0
        self.degraded = False
        self.degraded_reason: str | None = None


class SnapshotRegistry:
    """Epoch lifecycle for any number of named graphs.

    ``pin``/``release`` are O(1) under one registry lock; ``publish``
    serializes per graph on its write lock and holds the registry lock
    only for the final pointer swap.  Counters make warm-start and
    lifecycle behaviour observable (and testable): ``freezes`` counts
    snapshot builds paid in-process, ``fault_ins`` counts snapshots
    mmapped from a store instead.
    """

    def __init__(
        self, store: Any = None, cache_capacity: int = 64, wal: Any = None
    ) -> None:
        self.store = store
        self.cache_capacity = cache_capacity
        # Optional durability plane: a WriteAheadLog every publish appends
        # to before applying, and a Checkpointer (attached by the service
        # after construction — it needs the registry) that persists
        # epochs and truncates the log behind the publish path.
        self.wal = wal
        self._checkpointer: Any = None
        self._lock = threading.Lock()
        self._graphs: dict[str, _GraphState] = {}
        # Pins leaked by garbage-collected handles.  Finalizers may run on
        # a thread that holds the registry lock, so they append here
        # without taking it (list.append/pop are atomic under the GIL) and
        # the next locked registry operation drains the backlog.
        self._leaked_pins: list[Epoch] = []
        self.counters = {
            "epochs_published": 0,
            "epochs_retired": 0,
            "freezes": 0,
            "fault_ins": 0,
            "oracle_builds": 0,
            "oracle_carries": 0,
        }

    # ------------------------------------------------------------------
    # registration / preload
    # ------------------------------------------------------------------
    def register(
        self,
        name: str,
        graph: Graph,
        oracle: dict[str, Any] | None = None,
        replace: bool = False,
    ) -> Epoch:
        """Make ``graph`` servable: build and publish epoch 0.

        ``oracle`` enables the distance oracle for every epoch of this
        graph (keys: ``cap``, ``top`` — the :meth:`DistanceOracle.build`
        knobs); epoch 0 pays the label build, later epochs carry the
        labels over distance-preserving updates.
        """
        with self._lock:
            if name in self._graphs and not replace:
                raise ServerError(f"graph {name!r} already registered")
        state = _GraphState(graph, oracle)
        with state.write_lock:
            epoch = self._build_epoch(name, state, prior=None)
            with self._lock:
                self._drain_leaked_locked()
                # Re-check under the installing lock: a concurrent
                # register() may have won the name while this one was
                # building its epoch off-lock, and overwriting would
                # silently drop the winner's published epoch.
                if name in self._graphs and not replace:
                    raise ServerError(f"graph {name!r} already registered")
                self._graphs[name] = state
                self._install(state, epoch)
        # A synchronous baseline checkpoint: once register() returns, the
        # graph is recoverable — every later WAL record replays over this
        # artifact, so acknowledgement implies durability from batch one.
        if self._checkpointer is not None:
            self._checkpointer.checkpoint(name)
        return epoch

    def preload(self, name: str, oracle: dict[str, Any] | None = None) -> Epoch:
        """Warm-start a graph from the store: mmap snapshots, no freeze.

        Loads the stored graph, then faults in its ``.frozen.snap`` (and
        ``.oracle.snap``, when present — enabling the oracle for later
        epochs too) via the store, validated against the loaded graph's
        version.  Missing snapshot files degrade to an in-process freeze;
        a missing *graph* is an error.
        """
        if self.store is None:
            raise ServerError("registry has no file store configured")
        graph = self.store.load_graph(name)
        artifacts = self.store.artifacts(name)
        frozen = None
        loaded_oracle = None
        if artifacts["snapshot"]:
            frozen = self.store.load_snapshot(name, expected_version=graph.version)
            with self._lock:
                self.counters["fault_ins"] += 1
        if artifacts["oracle"]:
            loaded_oracle = self.store.load_oracle(
                name, expected_version=graph.version
            )
            with self._lock:
                self.counters["fault_ins"] += 1
            if oracle is None:
                oracle = {}
        state = _GraphState(graph, oracle)
        with state.write_lock:
            epoch = self._build_epoch(
                name, state, prior=None, frozen=frozen, oracle_obj=loaded_oracle
            )
            with self._lock:
                self._drain_leaked_locked()
                if name in self._graphs:
                    raise ServerError(f"graph {name!r} already registered")
                self._graphs[name] = state
                self._install(state, epoch)
        if self._checkpointer is not None:
            self._checkpointer.checkpoint(name)
        return epoch

    def attach_checkpointer(self, checkpointer: Any) -> None:
        """Wire the (service-owned) checkpointer into the publish path."""
        self._checkpointer = checkpointer

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def pin(self, name: str) -> EpochHandle:
        """Pin the current epoch of ``name`` for the caller's lifetime."""
        with self._lock:
            self._drain_leaked_locked()
            state = self._graphs.get(name)
            if state is None or state.current is None:
                known = ", ".join(sorted(self._graphs)) or "none"
                raise ServerError(
                    f"unknown graph: {name!r} (registered: {known})"
                )
            epoch = state.current
            epoch._pins += 1
            return EpochHandle(epoch, self)

    def _unpin(self, epoch: Epoch) -> None:
        with self._lock:
            self._drain_leaked_locked()
            self._unpin_locked(epoch)

    def _unpin_locked(self, epoch: Epoch) -> None:
        epoch._pins -= 1
        if epoch._pins <= 0 and epoch.retired:
            state = self._graphs.get(epoch.name)
            if state is not None and state.live.pop(epoch.epoch_id, None):
                self.counters["epochs_retired"] += 1

    def _defer_unpin(self, epoch: Epoch) -> None:
        """Finalizer-safe unpin: park the epoch for the next locked drain.

        Called from ``EpochHandle.__del__`` — possibly on a thread that
        already holds the registry lock — so it must not acquire it.
        """
        self._leaked_pins.append(epoch)

    def _drain_leaked_locked(self) -> None:
        """Apply parked finalizer unpins.  Caller holds the registry lock."""
        while self._leaked_pins:
            self._unpin_locked(self._leaked_pins.pop())

    def current_epoch(self, name: str) -> Epoch:
        """The current epoch without pinning (metadata/stats paths only)."""
        with self._lock:
            state = self._graphs.get(name)
            if state is None or state.current is None:
                known = ", ".join(sorted(self._graphs)) or "none"
                raise ServerError(
                    f"unknown graph: {name!r} (registered: {known})"
                )
            return state.current

    def graphs(self) -> list[str]:
        with self._lock:
            return sorted(self._graphs)

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def publish(self, name: str, updates: Sequence[Update]) -> Epoch:
        """Apply an update batch and atomically publish the next epoch.

        The batch is all-or-nothing: primitives apply to a *scratch* copy
        of the master graph, which becomes the new master only once every
        primitive has succeeded.  A primitive that raises mid-batch (e.g.
        removing a missing edge — any HTTP client can send one and gets a
        400 back) therefore leaves the served state exactly as it was; no
        later publish can build an epoch from a half-applied prefix.
        In-flight queries keep their pinned epoch; new pins see the new
        epoch only after the pointer swap, so no request can observe a
        partially-applied batch.

        With a WAL attached, the batch is appended to the changelog
        **before** any primitive applies (write-ahead): an acknowledged
        publish is on disk even if the process dies during apply or epoch
        build.  A batch that fails validation mid-apply is *not* marked
        in the log — replay re-runs it against the identical base content
        at recovery, where it deterministically fails again and is
        skipped, so the log needs no commit/abort records.
        """
        with self._lock:
            state = self._graphs.get(name)
            known = "" if state is not None else (
                ", ".join(sorted(self._graphs)) or "none"
            )
        if state is None:
            raise ServerError(f"unknown graph: {name!r} (registered: {known})")
        with state.write_lock:
            lsn: int | None = None
            if self.wal is not None:
                # Local import: wire depends on repro.incremental, not on
                # this module, but keeping the codec import here avoids a
                # module-level cycle through repro.server.__init__.
                from repro.server.wire import encode_update

                wire_batch = [encode_update(update) for update in updates]
                lsn = self.wal.append(name, wire_batch, state.master.version)
                state.appended_lsn = lsn
            scratch = state.master.copy(name=state.master.name)
            oracle_survives = True
            try:
                for update in updates:
                    for primitive in decompose(scratch, update):
                        oracle_survives = oracle_survives and DistanceOracle.survives(
                            primitive
                        )
                        primitive.apply(scratch)
                        fault_point("registry.apply")
            except ReproError:
                # The batch is invalid against this base: its WAL record
                # will fail identically at replay and be skipped, so its
                # outcome ("no state change") is already fully applied.
                if lsn is not None:
                    state.applied_lsn = lsn
                raise
            # Every primitive succeeded: adopt the batch in one assignment.
            state.master = scratch
            fault_point("registry.publish")
            prior = state.current
            try:
                epoch = self._build_epoch(
                    name, state, prior=prior if oracle_survives else None
                )
            except (StorageError, MemoryError) as exc:
                # Graceful degradation: the master has the batch (and the
                # WAL has it durably), only the servable epoch is missing.
                # Keep serving the last good epoch, surface the lag.
                with self._lock:
                    state.degraded = True
                    state.degraded_reason = f"{type(exc).__name__}: {exc}"
                durability = (
                    f"durably logged (lsn {lsn})" if lsn is not None else "applied"
                )
                raise ServiceDegradedError(
                    f"update batch for {name!r} was {durability} but the new "
                    f"epoch failed to build: {exc}; serving the last good epoch"
                ) from exc
            with self._lock:
                self._drain_leaked_locked()
                self._install(state, epoch)
                if lsn is not None:
                    state.applied_lsn = lsn
                state.degraded = False
                state.degraded_reason = None
                if prior is not None:
                    prior.retired = True
                    if prior._pins <= 0:
                        if state.live.pop(prior.epoch_id, None):
                            self.counters["epochs_retired"] += 1
        if self._checkpointer is not None:
            self._checkpointer.notify(
                name, appended_bytes=self.wal.last_frame_bytes if self.wal else 0
            )
        return epoch

    # ------------------------------------------------------------------
    # durability: recovery + checkpoint support
    # ------------------------------------------------------------------
    def recover(self) -> dict[str, dict[str, Any]]:
        """Rebuild every checkpointed graph + replay its WAL suffix.

        Startup path (before the service accepts traffic).  Per graph:
        load the checkpoint artifacts from the store, then re-apply every
        batch record with ``lsn > checkpoint.lsn`` through the same
        decode → decompose → apply pipeline as live publishes.  Each
        batch replays all-or-nothing on a scratch copy; a batch that
        fails (it failed identically when first published — see
        :meth:`publish`) is skipped, never half-applied.  Returns a
        per-graph report (``replayed``/``skipped``/``lsn``).

        Records for graphs without a checkpoint are reported and ignored:
        registration writes its baseline checkpoint *before* returning,
        so such records belong to a registration that was never
        acknowledged.
        """
        if self.wal is None or self.store is None:
            raise ServerError("recovery needs both a WAL and a file store")
        from repro.server.wire import decode_updates

        checkpoints = self.wal.read_checkpoints()
        pending: dict[str, list[Any]] = {}
        for record in self.wal.records():
            pending.setdefault(record.graph, []).append(record)
        report: dict[str, dict[str, Any]] = {}
        for name in sorted(set(checkpoints) | set(pending)):
            checkpoint = checkpoints.get(name)
            if checkpoint is None:
                report[name] = {
                    "status": "skipped",
                    "reason": "records without a checkpoint (unacknowledged "
                    "registration)",
                    "records": len(pending.get(name, [])),
                }
                continue
            artifact = checkpoint["artifact"]
            graph = self.store.load_graph(artifact)
            if graph.version != checkpoint["graph_version"]:
                raise ServerError(
                    f"checkpoint artifact {artifact!r} has version "
                    f"{graph.version}, metadata says "
                    f"{checkpoint['graph_version']} — checkpoint is corrupt"
                )
            graph = graph.copy(name=name)
            frozen = None
            if self.store.artifacts(artifact)["snapshot"]:
                frozen = self.store.load_snapshot(
                    artifact, expected_version=graph.version
                )
                with self._lock:
                    self.counters["fault_ins"] += 1
            replayed = skipped = 0
            last_lsn = checkpoint["lsn"]
            for record in pending.get(name, []):
                if record.lsn <= checkpoint["lsn"]:
                    continue
                updates = decode_updates({"updates": record.updates})
                scratch = graph.copy(name=name)
                try:
                    for update in updates:
                        for primitive in decompose(scratch, update):
                            primitive.apply(scratch)
                except ReproError:
                    skipped += 1
                else:
                    graph = scratch
                    frozen = None  # the stored snapshot is now stale
                    replayed += 1
                last_lsn = record.lsn
            state = _GraphState(graph, None)
            state.appended_lsn = last_lsn
            state.applied_lsn = last_lsn
            with state.write_lock:
                epoch = self._build_epoch(name, state, prior=None, frozen=frozen)
                with self._lock:
                    self._drain_leaked_locked()
                    if name in self._graphs:
                        raise ServerError(f"graph {name!r} already registered")
                    self._graphs[name] = state
                    self._install(state, epoch)
            report[name] = {
                "status": "recovered",
                "replayed": replayed,
                "skipped": skipped,
                "lsn": last_lsn,
                "epoch": epoch.epoch_id,
                "graph_version": epoch.graph.version,
            }
        return report

    def checkpoint_capture(self, name: str) -> tuple[Epoch, int] | None:
        """The current epoch + its applied LSN, atomically (checkpointer).

        ``applied_lsn`` only advances when an epoch installs (or a batch
        deterministically fails, changing nothing), so the pair is always
        consistent: the epoch's graph *is* the state as of that LSN.
        """
        with self._lock:
            state = self._graphs.get(name)
            if state is None or state.current is None:
                return None
            return state.current, state.applied_lsn

    def wal_status(self) -> dict[str, Any]:
        """Durability status: per-graph replay lag + WAL/checkpoint stats."""
        with self._lock:
            graphs = {
                name: {
                    "appended_lsn": state.appended_lsn,
                    "applied_lsn": state.applied_lsn,
                    "replay_lag": state.appended_lsn - state.applied_lsn,
                    "degraded": state.degraded,
                    "degraded_reason": state.degraded_reason,
                }
                for name, state in sorted(self._graphs.items())
            }
        out: dict[str, Any] = {"enabled": self.wal is not None, "graphs": graphs}
        if self.wal is not None:
            out["wal"] = self.wal.stats()
        if self._checkpointer is not None:
            out["checkpointer"] = self._checkpointer.stats()
        return out

    @property
    def degraded(self) -> bool:
        """Whether any graph is serving a stale epoch after a failed build."""
        with self._lock:
            return any(state.degraded for state in self._graphs.values())

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _build_epoch(
        self,
        name: str,
        state: _GraphState,
        prior: Epoch | None,
        frozen: FrozenGraph | None = None,
        oracle_obj: DistanceOracle | None = None,
    ) -> Epoch:
        """Copy + freeze + (carry | build | skip) oracle, outside any swap.

        Called under the graph's write lock but *not* the registry lock —
        the expensive work (graph copy, CSR freeze, adjacency prewarm,
        possible oracle build) happens while readers continue against the
        previous epoch untouched.
        """
        fault_point("registry.rebuild")
        graph = state.master.copy(name=state.master.name)
        if frozen is None:
            frozen = FrozenGraph.freeze(graph)
            with self._lock:
                self.counters["freezes"] += 1
        elif not frozen.matches(graph):  # pragma: no cover - store corruption
            raise ServerError(
                f"stored snapshot for {name!r} does not match graph version "
                f"{graph.version}"
            )
        # Readers share these adjacency views; building them at publish
        # time keeps the lazy build out of the (concurrent) request path.
        frozen.successor_sets()
        frozen.predecessor_sets()
        oracle = oracle_obj
        if oracle is None and state.oracle_config is not None:
            carried = None
            if prior is not None and prior.oracle is not None:
                carried = prior.oracle if prior.oracle.compatible_with(frozen) else None
            if carried is not None:
                oracle = carried
                with self._lock:
                    self.counters["oracle_carries"] += 1
            else:
                config = state.oracle_config
                oracle = DistanceOracle.build(
                    frozen, cap=config.get("cap"), top=config.get("top")
                )
                with self._lock:
                    self.counters["oracle_builds"] += 1
        epoch = Epoch(
            name,
            state.next_epoch_id,
            graph,
            frozen,
            oracle,
            cache_capacity=self.cache_capacity,
        )
        state.next_epoch_id += 1
        return epoch

    def _install(self, state: _GraphState, epoch: Epoch) -> None:
        """The atomic publish: one pointer swap under the registry lock."""
        state.current = epoch
        state.live[epoch.epoch_id] = epoch
        self.counters["epochs_published"] += 1

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Lifecycle counters plus a per-graph epoch inventory."""
        with self._lock:
            self._drain_leaked_locked()
            graphs = {
                name: {
                    "current_epoch": (
                        state.current.epoch_id if state.current else None
                    ),
                    "graph_version": (
                        state.current.graph.version if state.current else None
                    ),
                    "live_epochs": len(state.live),
                    "pins": sum(e._pins for e in state.live.values()),
                    "oracle": state.oracle_config is not None,
                    "nodes": state.master.num_nodes,
                    "edges": state.master.num_edges,
                }
                for name, state in sorted(self._graphs.items())
            }
            counters = dict(self.counters)
        cache_totals: dict[str, Any] = {}
        for name in graphs:
            try:
                epoch = self.current_epoch(name)
            except ReproError:  # pragma: no cover - racing a deregister
                continue
            cache_totals[name] = {
                "cache": epoch.cache.stats(),
                "rank_cache": epoch.rank_cache.stats(),
            }
        return {"graphs": graphs, "counters": counters, "caches": cache_totals}

    def live_epochs(self, name: str) -> list[Epoch]:
        """All non-collected epochs of ``name`` (tests inspect lifecycle)."""
        with self._lock:
            state = self._graphs.get(name)
            return list(state.live.values()) if state is not None else []


def batch_updates(updates: Iterable[Update]) -> list[Update]:
    """Normalize an update iterable into the list ``publish`` expects."""
    return list(updates)
