"""Admission control: a bounded worker budget with a bounded wait queue.

A ThreadingHTTPServer spawns one thread per connection, so without a gate
a traffic spike turns into unbounded concurrent matcher runs — memory
blow-up and collapsing tail latency.  The controller caps *executing*
requests at ``max_inflight``; up to ``max_queue`` more may wait at most
``queue_timeout`` seconds for a slot.

The two refusals are distinct failures and carry distinct errors:

* queue full on arrival → :class:`~repro.errors.AdmissionError`
  (HTTP 429) — the service is saturated *right now*, back off;
* queued but no slot freed in time →
  :class:`~repro.errors.AdmissionTimeoutError` (HTTP 408) — capacity
  exists but drains too slowly, a latency problem, not a load problem.

``stats()`` counts them separately (``rejected_full`` /
``rejected_timeout``) plus a combined ``rejected`` total, so dashboards
can tell sustained saturation from slow drains at a glance.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator

from repro.errors import AdmissionError, AdmissionTimeoutError, ServerError


class AdmissionController:
    """Gate work behind ``max_inflight`` slots and a bounded wait queue.

    >>> controller = AdmissionController(max_inflight=2, max_queue=0)
    >>> with controller.slot():
    ...     controller.stats()["inflight"]
    1
    """

    def __init__(
        self,
        max_inflight: int = 8,
        max_queue: int = 16,
        queue_timeout: float = 5.0,
    ) -> None:
        if max_inflight < 1:
            raise ServerError(f"max_inflight must be >= 1: {max_inflight}")
        if max_queue < 0:
            raise ServerError(f"max_queue must be >= 0: {max_queue}")
        if queue_timeout < 0:
            raise ServerError(f"queue_timeout must be >= 0: {queue_timeout}")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.queue_timeout = queue_timeout
        self._slots = threading.Semaphore(max_inflight)
        self._lock = threading.Lock()
        self._inflight = 0
        self._waiting = 0
        self._admitted = 0
        self._rejected_full = 0
        self._rejected_timeout = 0
        self._peak_inflight = 0
        self._peak_waiting = 0

    # ------------------------------------------------------------------
    def acquire(self) -> None:
        """Take a slot or raise :class:`AdmissionError`.

        Fast path: a free slot admits immediately.  Otherwise the caller
        joins the wait queue if it has room — a full queue refuses on the
        spot — and is refused if no slot frees within ``queue_timeout``.
        """
        if self._slots.acquire(blocking=False):
            self._admitted_one(waited=False)
            return
        with self._lock:
            if self._waiting >= self.max_queue:
                self._rejected_full += 1
                raise AdmissionError(
                    f"service saturated: {self.max_inflight} in flight and "
                    f"{self._waiting} already queued (queue depth "
                    f"{self.max_queue}); retry with backoff"
                )
            self._waiting += 1
            self._peak_waiting = max(self._peak_waiting, self._waiting)
        try:
            admitted = self._slots.acquire(timeout=self.queue_timeout)
        finally:
            with self._lock:
                self._waiting -= 1
        if not admitted:
            with self._lock:
                self._rejected_timeout += 1
            raise AdmissionTimeoutError(
                f"queued request timed out: no worker slot freed within "
                f"{self.queue_timeout}s (inflight cap {self.max_inflight}); "
                "retry with backoff"
            )
        self._admitted_one(waited=True)

    def release(self) -> None:
        with self._lock:
            self._inflight -= 1
        self._slots.release()

    @contextmanager
    def slot(self) -> Iterator[None]:
        """``with controller.slot():`` — acquire around one request."""
        self.acquire()
        try:
            yield
        finally:
            self.release()

    def _admitted_one(self, waited: bool) -> None:
        with self._lock:
            self._inflight += 1
            self._admitted += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)

    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "queue_timeout": self.queue_timeout,
                "inflight": self._inflight,
                "waiting": self._waiting,
                "admitted": self._admitted,
                "rejected": self._rejected_full + self._rejected_timeout,
                "rejected_full": self._rejected_full,
                "rejected_timeout": self._rejected_timeout,
                "peak_inflight": self._peak_inflight,
                "peak_waiting": self._peak_waiting,
            }
