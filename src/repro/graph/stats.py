"""Descriptive statistics over data graphs.

The ExpFinder Manager panel lets users "select, view and modify the
detailed information of data graphs"; this module computes the summary
numbers those views (and the benchmark write-ups) need: size, degree
moments and tails, attribute histograms, reachability samples, and a
single-call :func:`graph_profile` used by the CLI.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.errors import GraphError
from repro.graph.digraph import Graph, NodeId
from repro.graph.distance import bounded_descendants


@dataclass(frozen=True)
class DegreeStats:
    """Moments and extremes of a degree distribution."""

    minimum: int
    maximum: int
    mean: float
    median: float
    zeros: int

    @classmethod
    def from_values(cls, values: list[int]) -> "DegreeStats":
        if not values:
            raise GraphError("cannot summarize an empty degree sequence")
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            median = float(ordered[mid])
        else:
            median = (ordered[mid - 1] + ordered[mid]) / 2
        return cls(
            minimum=ordered[0],
            maximum=ordered[-1],
            mean=sum(ordered) / len(ordered),
            median=median,
            zeros=sum(1 for v in ordered if v == 0),
        )


def degree_stats(graph: Graph, direction: str = "out") -> DegreeStats:
    """Degree statistics in one direction (``"out"`` or ``"in"``)."""
    if direction not in ("in", "out"):
        raise GraphError("direction must be 'in' or 'out'")
    degree_of = graph.out_degree if direction == "out" else graph.in_degree
    return DegreeStats.from_values([degree_of(v) for v in graph.nodes()])


def attribute_histogram(graph: Graph, attr: str) -> dict[Any, int]:
    """``{value: count}`` for one node attribute (None = unset)."""
    histogram: dict[Any, int] = {}
    for node in graph.nodes():
        value = graph.get(node, attr)
        histogram[value] = histogram.get(value, 0) + 1
    return histogram


def density(graph: Graph) -> float:
    """|E| / (|V| * (|V|-1)) — the filled fraction of possible edges."""
    if graph.num_nodes < 2:
        return 0.0
    return graph.num_edges / (graph.num_nodes * (graph.num_nodes - 1))


def reciprocity(graph: Graph) -> float:
    """Fraction of edges whose reverse edge also exists."""
    if graph.num_edges == 0:
        return 0.0
    mutual = sum(1 for s, t in graph.edges() if graph.has_edge(t, s))
    return mutual / graph.num_edges


def sampled_reach(
    graph: Graph, bound: int | None, samples: int = 50, seed: int = 0
) -> float:
    """Average number of nodes within ``bound`` hops of a sampled node.

    This is the quantity that drives bounded-simulation cost (each
    candidate's truncated BFS touches exactly this neighbourhood).
    """
    nodes = list(graph.nodes())
    if not nodes:
        return 0.0
    rng = random.Random(seed)
    chosen = nodes if len(nodes) <= samples else rng.sample(nodes, samples)
    total = sum(len(bounded_descendants(graph, v, bound)) for v in chosen)
    return total / len(chosen)


def graph_profile(graph: Graph, attr: str = "field") -> dict[str, Any]:
    """One dictionary with everything the Manager view shows."""
    out = degree_stats(graph, "out")
    inc = degree_stats(graph, "in")
    return {
        "name": graph.name,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "size": graph.size,
        "density": density(graph),
        "reciprocity": reciprocity(graph),
        "out_degree": out,
        "in_degree": inc,
        "attribute": attr,
        "histogram": attribute_histogram(graph, attr),
        "avg_reach_2": sampled_reach(graph, 2),
    }
