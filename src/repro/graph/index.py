"""Attribute indexes: inverted ``(attribute, value) -> node set`` postings.

Every matcher starts from predicate-satisfying candidate sets, and the scan
path (:func:`~repro.matching.simulation.simulation_candidates`) pays one
predicate evaluation per pattern node per graph node to get them.  Real
expert-finding deployments put indexes in front of that step — per-attribute
indexes created before any query runs — and this module is the engine's
version of the same idea: an :class:`AttributeIndex` over a graph's node
attributes answers equality-shaped predicates by set algebra over postings
instead of scanning.

Design points:

* **lazy** — registering a graph costs nothing; postings are built on the
  first query that needs them;
* **consistent** — the index records the graph's mutation counter
  (:attr:`~repro.graph.digraph.Graph.version`) whenever it (re)builds or is
  told about an update.  Engine-routed updates are maintained incrementally
  in O(attributes of the touched node); any out-of-band mutation is detected
  by the version mismatch and triggers a lazy rebuild instead of serving
  stale answers;
* **exactness over coverage** — :meth:`AttributeIndex.resolve` answers only
  the fragment it can answer *exactly* (equality, membership, and their
  and/or combinations) or as a verified superset (conjunctions with one
  indexable part).  Ranges, negation and ``AlwaysTrue`` fall back to the
  scan path, so index-backed candidates always equal scan-backed ones.

:func:`candidates_from_index` and :func:`batch_candidates` are the
candidate-generation entry points the matchers and the query engine's batch
evaluator route through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, NamedTuple

from repro.errors import GraphError
from repro.graph.digraph import Graph, NodeId
from repro.pattern.predicates import AlwaysTrue, And, Cmp, In, Or, Predicate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.pattern.pattern import Pattern

PostingKey = tuple[str, Any]


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class Resolution(NamedTuple):
    """An index answer: the node set and whether it is exact.

    ``exact=False`` means ``nodes`` is a *superset* of the satisfying nodes
    (a conjunction where only some parts were indexable); the caller must
    verify members against the full predicate.
    """

    nodes: set[NodeId]
    exact: bool


class AttributeIndex:
    """Inverted index from attribute key/value pairs to node sets.

    Built lazily over a :class:`~repro.graph.digraph.Graph`; postings map
    ``(attr, value)`` to the set of nodes carrying exactly that value
    (labels are ordinary attributes, so a ``field`` or ``label`` index
    needs no special casing).  Unhashable attribute values are skipped:
    they can never equal a predicate's atomic comparison value.

    >>> from repro.graph.digraph import Graph
    >>> g = Graph.from_edges([], nodes={
    ...     "bob": {"field": "SA", "experience": 7},
    ...     "dan": {"field": "SD", "experience": 3},
    ...     "eva": {"field": "SD", "experience": 2},
    ... })
    >>> index = AttributeIndex(g)
    >>> sorted(index.lookup("field", "SD"))
    ['dan', 'eva']
    >>> from repro.pattern.predicates import Cmp, And
    >>> index.resolve(Cmp("field", "==", "SA"))
    Resolution(nodes={'bob'}, exact=True)
    >>> index.resolve(Cmp("experience", ">=", 3)) is None   # ranges fall back
    True
    """

    __slots__ = (
        "graph",
        "_postings",
        "_node_keys",
        "_unindexed_attrs",
        "_synced_version",
        "_discarded",
        "_builds",
        "_rebuilds",
        "_exact_hits",
        "_superset_hits",
        "_misses",
    )

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._postings: dict[PostingKey, set[NodeId]] | None = None
        # node -> posting keys it is filed under; makes removal O(attrs).
        self._node_keys: dict[NodeId, tuple[PostingKey, ...]] = {}
        # Attrs for which some node value could not be filed (unhashable).
        # Postings for these attrs are incomplete, so equality lookups on
        # them must decline (an unhashable value can compare equal to a
        # hashable query constant, e.g. {1} == frozenset({1})).
        self._unindexed_attrs: set[str] = set()
        self._synced_version = graph.version
        self._discarded = False  # a built index was dropped via refresh()
        self._builds = 0
        self._rebuilds = 0
        self._exact_hits = 0
        self._superset_hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # construction / maintenance
    # ------------------------------------------------------------------
    @property
    def is_built(self) -> bool:
        """Whether postings exist right now (they build on first use)."""
        return self._postings is not None

    def _ensure(self) -> dict[PostingKey, set[NodeId]]:
        if self._postings is not None and self._synced_version == self.graph.version:
            return self._postings
        if self._postings is not None or self._discarded:
            self._rebuilds += 1
        self._discarded = False
        self._builds += 1
        postings: dict[PostingKey, set[NodeId]] = {}
        node_keys: dict[NodeId, tuple[PostingKey, ...]] = {}
        self._unindexed_attrs = set()
        for node in self.graph.nodes():
            keys = self._keys_of(self.graph.attrs(node))
            node_keys[node] = keys
            for key in keys:
                postings.setdefault(key, set()).add(node)
        self._postings = postings
        self._node_keys = node_keys
        self._synced_version = self.graph.version
        return postings

    def _keys_of(self, attrs: dict[str, Any]) -> tuple[PostingKey, ...]:
        keys = []
        for attr, value in attrs.items():
            try:
                hash(value)
            except TypeError:
                self._unindexed_attrs.add(attr)
                continue
            keys.append((attr, value))
        return tuple(keys)

    def refresh(self) -> None:
        """Force a rebuild on next use (e.g. after mutating attribute dicts
        behind the version counter's back)."""
        if self._postings is not None:
            self._discarded = True
        self._postings = None
        self._node_keys = {}

    def on_update(self, update: Any, prior_version: int | None = None) -> None:
        """Maintain postings for one engine-routed primitive update.

        Must be called *after* the update was applied to the graph (the
        engine's update loop does exactly that).  Edge updates cannot change
        attributes, so they only advance the synchronized version; node and
        attribute updates re-file the touched node.

        ``prior_version`` is the graph version observed just before the
        update was applied.  When provided (the engine always does), a
        mismatch with the version the index last synchronized against
        reveals an out-of-band mutation that happened *before* this update;
        the index then discards its postings instead of silently absorbing
        the gap.
        """
        from repro.incremental.updates import (
            AttributeUpdate,
            EdgeDeletion,
            EdgeInsertion,
            NodeDeletion,
            NodeInsertion,
        )

        if self._postings is None:
            # Nothing built yet: stay lazy, but keep the version in sync so
            # the eventual build is not mistaken for a rebuild.
            self._synced_version = self.graph.version
            return
        if prior_version is not None and prior_version != self._synced_version:
            # The graph was mutated behind our back at some point before
            # this update; incremental maintenance would mask it forever.
            self.refresh()
            return
        if isinstance(update, (EdgeInsertion, EdgeDeletion)):
            pass
        elif isinstance(update, NodeInsertion):
            self._file_node(update.node)
        elif isinstance(update, NodeDeletion):
            self._unfile_node(update.node)
        elif isinstance(update, AttributeUpdate):
            self._unfile_node(update.node)
            self._file_node(update.node)
        else:
            raise GraphError(f"unknown update type: {update!r}")
        self._synced_version = self.graph.version

    def _file_node(self, node: NodeId) -> None:
        assert self._postings is not None
        keys = self._keys_of(self.graph.attrs(node))
        self._node_keys[node] = keys
        for key in keys:
            self._postings.setdefault(key, set()).add(node)

    def _unfile_node(self, node: NodeId) -> None:
        assert self._postings is not None
        for key in self._node_keys.pop(node, ()):
            posting = self._postings.get(key)
            if posting is not None:
                posting.discard(node)
                if not posting:
                    del self._postings[key]

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def lookup(self, attr: str, value: Any) -> frozenset[NodeId]:
        """Nodes whose ``attr`` equals ``value`` (frozen snapshot).

        Attributes carrying unhashable node values have incomplete postings
        (such a value can equal a hashable query constant), so lookups on
        them — and lookups *with* an unhashable value — scan instead.
        """
        postings = self._ensure()
        unindexable = attr in self._unindexed_attrs
        if not unindexable:
            try:
                return frozenset(postings.get((attr, value), ()))
            except TypeError:
                pass  # unhashable query value: postings cannot answer it
        matches = set()
        for node in self.graph.nodes():
            node_attrs = self.graph.attrs(node)
            if attr in node_attrs and node_attrs[attr] == value:
                matches.add(node)
        return frozenset(matches)

    def resolve(self, predicate: Predicate) -> Resolution | None:
        """Answer a predicate from postings, or ``None`` to request a scan.

        Returns an exact node set for the equality fragment (``==``, ``in``,
        and ``and``/``or`` over it), a non-exact superset for conjunctions
        with at least one indexable part, and ``None`` for everything else
        (ranges, ``!=``, negation, ``AlwaysTrue``).  Structurally
        unanswerable predicates decline *without* building postings, so a
        range-only workload never pays for an index it cannot use.
        """
        if not self._could_answer(predicate):
            self._misses += 1
            return None
        self._ensure()
        result = self._resolve(predicate)
        if result is None:
            self._misses += 1
        elif result.exact:
            self._exact_hits += 1
        else:
            self._superset_hits += 1
        return result

    @classmethod
    def _could_answer(cls, predicate: Predicate) -> bool:
        """Structural answerability — decidable without any postings."""
        if isinstance(predicate, Cmp):
            return predicate.op == "==" and _hashable(predicate.value)
        if isinstance(predicate, In):
            return all(_hashable(choice) for choice in predicate.choices)
        if isinstance(predicate, Or):
            return all(cls._could_answer(part) for part in predicate.parts)
        if isinstance(predicate, And):
            return any(cls._could_answer(part) for part in predicate.parts)
        return False

    def _resolve(self, predicate: Predicate) -> Resolution | None:
        postings = self._postings
        assert postings is not None
        if isinstance(predicate, Cmp):
            if predicate.op != "==" or predicate.attr in self._unindexed_attrs:
                # Postings for an attr with unhashable node values are
                # incomplete: such a value can compare equal to a hashable
                # query constant ({1} == frozenset({1})), so only the scan
                # path answers correctly.
                return None
            try:
                posting = postings.get((predicate.attr, predicate.value), ())
            except TypeError:
                # Unhashable comparison value: same story, mirrored — scan.
                return None
            return Resolution(set(posting), True)
        if isinstance(predicate, In):
            if predicate.attr in self._unindexed_attrs:
                return None
            nodes: set[NodeId] = set()
            for choice in predicate.choices:
                try:
                    nodes |= postings.get((predicate.attr, choice), set())
                except TypeError:
                    return None
            return Resolution(nodes, True)
        if isinstance(predicate, Or):
            union: set[NodeId] = set()
            exact = True
            for part in predicate.parts:
                resolved = self._resolve(part)
                if resolved is None:
                    # A superset of an Or needs *every* branch covered.
                    return None
                union |= resolved.nodes
                exact = exact and resolved.exact
            return Resolution(union, exact)
        if isinstance(predicate, And):
            resolved_parts = [
                resolved
                for part in predicate.parts
                if (resolved := self._resolve(part)) is not None
            ]
            if not resolved_parts:
                return None
            nodes = set(resolved_parts[0].nodes)
            for other in resolved_parts[1:]:
                nodes &= other.nodes
            exact = len(resolved_parts) == len(predicate.parts) and all(
                resolved.exact for resolved in resolved_parts
            )
            return Resolution(nodes, exact)
        return None  # AlwaysTrue, Not, and anything user-defined

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._postings) if self._postings is not None else 0

    def stats(self) -> dict[str, int]:
        return {
            "postings": len(self),
            "built": int(self.is_built),
            "builds": self._builds,
            "rebuilds": self._rebuilds,
            "exact_hits": self._exact_hits,
            "superset_hits": self._superset_hits,
            "misses": self._misses,
        }

    def __repr__(self) -> str:
        state = f"{len(self)} postings" if self.is_built else "unbuilt"
        return f"<AttributeIndex {state} over {self.graph!r}>"


def predicate_key(predicate: Predicate) -> tuple:
    """``Predicate.key()``, degraded to an identity key when unhashable.

    ``Cmp``/``In`` values are typed as atoms but nothing enforces that at
    runtime; a predicate built with e.g. a list value has a ``key()`` that
    cannot enter a dict.  Such predicates keep working (scan path, no
    dedup) instead of raising from deep inside candidate generation.
    """
    key = predicate.key()
    try:
        hash(key)
    except TypeError:
        return ("unhashable", id(predicate))
    return key


def batch_candidates(
    graph: Graph,
    predicates: Iterable[Predicate],
    index: AttributeIndex | None = None,
) -> dict[tuple, set[NodeId]]:
    """Candidate sets for many predicates, keyed by :func:`predicate_key`.

    Duplicate predicates (same canonical key) are computed once.  With an
    index, equality-shaped predicates are answered from postings and
    conjunction supersets are verified member-by-member; every predicate the
    index declines is evaluated in one shared pass over the graph's nodes —
    the scan cost is paid once regardless of how many predicates need it.
    """
    by_key: dict[tuple, Predicate] = {}
    for predicate in predicates:
        by_key.setdefault(predicate_key(predicate), predicate)

    out: dict[tuple, set[NodeId]] = {}
    scan: list[tuple[tuple, Predicate]] = []
    for key, predicate in by_key.items():
        if isinstance(predicate, AlwaysTrue):
            out[key] = set(graph.nodes())
            continue
        resolved = index.resolve(predicate) if index is not None else None
        if resolved is None:
            scan.append((key, predicate))
        elif resolved.exact:
            out[key] = resolved.nodes
        else:
            out[key] = {
                node
                for node in resolved.nodes
                if predicate.evaluate(graph.attrs(node))
            }
    if scan:
        for key, _ in scan:
            out[key] = set()
        for node in graph.nodes():
            attrs = graph.attrs(node)
            for key, predicate in scan:
                if predicate.evaluate(attrs):
                    out[key].add(node)
    return out


def candidates_from_index(
    graph: Graph,
    pattern: "Pattern",
    index: AttributeIndex | None = None,
) -> dict[str, set[NodeId]]:
    """Indexed candidate generation: the drop-in replacement for the scan.

    Returns exactly what
    :func:`~repro.matching.simulation.simulation_candidates` would (each
    pattern node gets its own fresh set), but answers what it can from the
    index and shares one scan across the predicates it cannot.

    >>> from repro.graph.digraph import Graph
    >>> from repro.pattern.pattern import Pattern
    >>> g = Graph.from_edges([("a", "b")], nodes={"a": {"l": "X"}, "b": {"l": "Y"}})
    >>> q = Pattern(); q.add_node("X", 'l == "X"'); q.add_node("Y", 'l == "Y"')
    >>> index = AttributeIndex(g)
    >>> sorted((u, sorted(vs)) for u, vs in candidates_from_index(g, q, index).items())
    [('X', ['a']), ('Y', ['b'])]
    """
    predicates = {u: pattern.predicate(u) for u in pattern.nodes()}
    table = batch_candidates(graph, predicates.values(), index=index)
    return {
        u: set(table[predicate_key(predicate)])
        for u, predicate in predicates.items()
    }
