"""Synthetic social-graph generators.

The demo evaluates ExpFinder on (1) a synthetic graph generator able to
"generate arbitrarily large graphs" and (2) a fraction of the real Twitter
graph.  Real Twitter data is not available offline, so this module provides
two seeded generators that reproduce the *properties* the evaluation depends
on — labelled nodes with realistic attribute distributions, skewed degrees,
and team-shaped collaboration structure:

* :func:`collaboration_graph` — project teams with leads and members, the
  shape motivating the paper's hiring scenario (Example 1);
* :func:`twitter_like_graph` — a preferential-attachment digraph with
  power-law in-degrees, standing in for the Twitter fraction;
* :func:`random_digraph` — a uniform random digraph used by property tests.

All generators are deterministic given ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GraphError
from repro.graph.digraph import Graph

#: Field catalogue: code -> (human name, specialties, weight in population).
FIELDS: dict[str, tuple[str, tuple[str, ...], float]] = {
    "SA": ("system architect", ("system architect",), 0.08),
    "PM": ("project manager", ("project manager",), 0.07),
    "SD": ("system developer", ("programmer", "DBA", "web developer"), 0.30),
    "BA": ("business analyst", ("business analyst",), 0.15),
    "ST": ("system tester", ("tester", "QA engineer"), 0.20),
    "UX": ("ux designer", ("ux designer",), 0.10),
    "GD": ("graphic designer", ("graphic designer",), 0.05),
    "DS": ("data scientist", ("data scientist", "ML engineer"), 0.05),
}

_LEAD_FIELDS = ("SA", "PM")


@dataclass(frozen=True)
class CollaborationConfig:
    """Tunable knobs for :func:`collaboration_graph`.

    The defaults target an average total degree of roughly five, which is in
    the band where bounded-simulation queries on 4-node patterns have
    non-trivial (but not universal) match sets.
    """

    num_people: int = 500
    teams_per_person: float = 0.35
    min_team_size: int = 3
    max_team_size: int = 8
    lead_edge_prob: float = 0.9
    chain_edge_prob: float = 0.25
    report_edge_prob: float = 0.1
    cross_edges_per_person: float = 0.15
    field_weights: dict[str, float] = field(
        default_factory=lambda: {code: spec[2] for code, spec in FIELDS.items()}
    )


def collaboration_graph(
    num_people: int = 500,
    seed: int = 0,
    config: CollaborationConfig | None = None,
    name: str = "",
) -> Graph:
    """Generate a team-structured collaboration network.

    Each synthetic "project team" has a lead (an ``SA`` or ``PM``) connected
    to its members; member-to-member and member-to-lead edges appear with
    configurable probabilities, and a sprinkle of cross-team edges joins the
    teams into one social fabric.  Node attributes:

    ``name``        unique person name (``p0``, ``p1``, ...)
    ``field``       one of :data:`FIELDS` (e.g. ``"SD"``)
    ``specialty``   specialty within the field (e.g. ``"DBA"``)
    ``experience``  whole years, leads skew senior

    >>> g = collaboration_graph(60, seed=1)
    >>> g.num_nodes
    60
    >>> all(g.get(v, "field") in FIELDS for v in g.nodes())
    True
    """
    if num_people < 2:
        raise GraphError("collaboration_graph needs at least 2 people")
    cfg = config or CollaborationConfig(num_people=num_people)
    rng = random.Random(seed)
    graph = Graph(name=name or f"collab-{num_people}-s{seed}")

    codes = list(cfg.field_weights)
    weights = [cfg.field_weights[c] for c in codes]
    people = [f"p{i}" for i in range(num_people)]
    leads: list[str] = []
    for person in people:
        code = rng.choices(codes, weights)[0]
        specialty = rng.choice(FIELDS[code][1])
        if code in _LEAD_FIELDS:
            experience = rng.randint(4, 15)
            leads.append(person)
        else:
            experience = rng.randint(1, 10)
        graph.add_node(
            person, name=person, field=code, specialty=specialty, experience=experience
        )
    if not leads:  # tiny populations may sample no lead; promote one person
        person = people[0]
        graph.set(person, "field", "SA")
        graph.set(person, "specialty", "system architect")
        graph.set(person, "experience", rng.randint(5, 15))
        leads.append(person)

    num_teams = max(1, int(num_people * cfg.teams_per_person))
    for _ in range(num_teams):
        lead = rng.choice(leads)
        size = rng.randint(cfg.min_team_size, cfg.max_team_size)
        members = [p for p in rng.sample(people, min(size, num_people)) if p != lead]
        for member in members:
            if rng.random() < cfg.lead_edge_prob:
                graph.add_edge(lead, member)
            if rng.random() < cfg.report_edge_prob:
                graph.add_edge(member, lead)
        for left, right in zip(members, members[1:]):
            if rng.random() < cfg.chain_edge_prob:
                graph.add_edge(left, right)

    num_cross = int(num_people * cfg.cross_edges_per_person)
    for _ in range(num_cross):
        source, target = rng.sample(people, 2)
        graph.add_edge(source, target)
    return graph


def twitter_like_graph(
    num_nodes: int = 1000,
    seed: int = 0,
    attach: int = 3,
    reciprocal_prob: float = 0.08,
    promote_prob: float = 0.35,
    name: str = "",
) -> Graph:
    """A preferential-attachment digraph standing in for the Twitter fraction.

    Edges follow the *influence* direction the expert-search patterns query:
    ``hub -> audience`` (the direction a lead "reaches" collaborators).
    Every new node attaches to ``attach`` existing nodes sampled
    proportionally to out-degree + 1, receiving an edge *from* each — rich
    get richer, so hub out-degrees follow a power law while most nodes keep
    out-degree 0, exactly the skew real social graphs show (and the reason
    they compress so well: same-field audience nodes are bisimilar).  With
    probability ``reciprocal_prob`` the new node links back to the hub.
    Only a ``promote_prob`` fraction of newcomers may themselves become
    hubs; the rest stay pure audience, mirroring the participation skew of
    real platforms.  Node attributes follow the :func:`collaboration_graph`
    schema so the same pattern queries run on both datasets.
    """
    if num_nodes < 2:
        raise GraphError("twitter_like_graph needs at least 2 nodes")
    if attach < 1:
        raise GraphError("attach must be >= 1")
    if not 0.0 <= promote_prob <= 1.0:
        raise GraphError(f"promote_prob must be in [0, 1]: {promote_prob}")
    rng = random.Random(seed)
    graph = Graph(name=name or f"twitter-{num_nodes}-s{seed}")
    codes = list(FIELDS)
    weights = [FIELDS[c][2] for c in codes]

    # Repeated-endpoint trick: sampling uniformly from the pool is
    # equivalent to sampling hubs proportionally to (out-degree + 1).
    hub_pool: list[str] = []
    for index in range(num_nodes):
        node = f"u{index}"
        code = rng.choices(codes, weights)[0]
        graph.add_node(
            node,
            name=node,
            field=code,
            specialty=rng.choice(FIELDS[code][1]),
            experience=rng.randint(1, 15),
        )
        if index == 0:
            hub_pool.append(node)
            continue
        hubs: set[str] = set()
        for _ in range(attach):
            hub = hub_pool[rng.randrange(len(hub_pool))]
            if hub != node:
                hubs.add(hub)
        for hub in hubs:
            graph.add_edge(hub, node)
            hub_pool.append(hub)
            if rng.random() < reciprocal_prob:
                graph.add_edge(node, hub)
        if rng.random() < promote_prob:
            hub_pool.append(node)
    return graph


def random_digraph(
    num_nodes: int,
    num_edges: int,
    num_labels: int = 3,
    seed: int = 0,
    name: str = "",
) -> Graph:
    """A uniform random digraph with ``label`` / ``x`` node attributes.

    Used by property-based tests: ``label`` is a categorical attribute
    (``L0`` ... ``L{num_labels-1}``) and ``x`` an integer in [0, 9] so tests
    can exercise both equality and comparison predicates.
    """
    if num_nodes < 1:
        raise GraphError("random_digraph needs at least 1 node")
    max_edges = num_nodes * (num_nodes - 1)
    if num_edges > max_edges:
        raise GraphError(f"too many edges: {num_edges} > {max_edges}")
    rng = random.Random(seed)
    graph = Graph(name=name or f"rand-{num_nodes}x{num_edges}-s{seed}")
    for index in range(num_nodes):
        graph.add_node(
            index, label=f"L{rng.randrange(num_labels)}", x=rng.randint(0, 9)
        )
    added = 0
    while added < num_edges:
        source = rng.randrange(num_nodes)
        target = rng.randrange(num_nodes)
        if source != target and graph.add_edge(source, target):
            added += 1
    return graph


def degree_histogram(graph: Graph, direction: str = "in") -> dict[int, int]:
    """``{degree: node count}`` — handy for eyeballing generator skew."""
    if direction not in ("in", "out"):
        raise GraphError("direction must be 'in' or 'out'")
    degree_of = graph.in_degree if direction == "in" else graph.out_degree
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        degree = degree_of(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return dict(sorted(histogram.items()))
