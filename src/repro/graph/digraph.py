"""Directed attributed graphs — the data model for social networks.

The paper models a social network as a directed graph whose nodes carry
attributes (name, field, specialty, experience, ...) and whose edges denote
collaboration.  :class:`Graph` implements exactly that: node identifiers are
arbitrary hashable values, each node owns an attribute dictionary, and
adjacency is stored in both directions so matchers can walk predecessors as
cheaply as successors.

Implementation note: adjacency is kept in ``dict`` objects (insertion
ordered) rather than ``set`` so iteration order is deterministic across
processes regardless of ``PYTHONHASHSEED``; determinism matters for
reproducible benchmarks and stable test output.  Membership tests stay O(1).
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Mapping

from repro.errors import GraphError

NodeId = Hashable
Edge = tuple[NodeId, NodeId]


class Graph:
    """A directed graph with per-node attribute dictionaries.

    Parameters
    ----------
    name:
        Optional human-readable name, used by storage and the CLI.

    Examples
    --------
    >>> g = Graph(name="team")
    >>> g.add_node("bob", field="SA", experience=7)
    >>> g.add_node("dan", field="SD", experience=3)
    >>> g.add_edge("bob", "dan")
    True
    >>> g.num_nodes, g.num_edges
    (2, 1)
    >>> list(g.successors("bob"))
    ['dan']
    """

    __slots__ = ("name", "_attrs", "_succ", "_pred", "_num_edges", "_version")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._attrs: dict[NodeId, dict[str, Any]] = {}
        self._succ: dict[NodeId, dict[NodeId, None]] = {}
        self._pred: dict[NodeId, dict[NodeId, None]] = {}
        self._num_edges = 0
        self._version = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, /, **attrs: Any) -> None:
        """Add ``node`` with attributes; re-adding merges the attributes.

        The node parameter is positional-only so attributes named ``node``
        (or ``self``) are ordinary keywords — graphs loaded from storage
        pass arbitrary attribute names through here.
        """
        if node not in self._attrs:
            self._attrs[node] = {}
            self._succ[node] = {}
            self._pred[node] = {}
            self._version += 1
        if attrs:
            self._attrs[node].update(attrs)
            self._version += 1

    def add_nodes(self, nodes: Iterable[NodeId]) -> None:
        """Add many attribute-less nodes at once."""
        for node in nodes:
            self.add_node(node)

    def add_edge(self, source: NodeId, target: NodeId) -> bool:
        """Add the directed edge ``source -> target``.

        Endpoints must already exist (implicit node creation hides typos in
        pattern/graph code, so it is deliberately not supported).  Returns
        ``True`` if the edge was new, ``False`` if it already existed;
        parallel edges are never stored.
        """
        if source not in self._attrs:
            raise GraphError(f"unknown source node: {source!r}")
        if target not in self._attrs:
            raise GraphError(f"unknown target node: {target!r}")
        if target in self._succ[source]:
            return False
        self._succ[source][target] = None
        self._pred[target][source] = None
        self._num_edges += 1
        self._version += 1
        return True

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Add many edges; returns how many were actually new."""
        added = 0
        for source, target in edges:
            if self.add_edge(source, target):
                added += 1
        return added

    def remove_edge(self, source: NodeId, target: NodeId) -> None:
        """Remove the edge ``source -> target``; raises if absent."""
        if source not in self._succ or target not in self._succ[source]:
            raise GraphError(f"no such edge: {source!r} -> {target!r}")
        del self._succ[source][target]
        del self._pred[target][source]
        self._num_edges -= 1
        self._version += 1

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and every incident edge; raises if absent."""
        if node not in self._attrs:
            raise GraphError(f"unknown node: {node!r}")
        for target in list(self._succ[node]):
            self.remove_edge(node, target)
        for source in list(self._pred[node]):
            self.remove_edge(source, node)
        del self._attrs[node]
        del self._succ[node]
        del self._pred[node]
        self._version += 1

    @classmethod
    def from_edges(
        cls,
        edges: Iterable[Edge],
        nodes: Mapping[NodeId, Mapping[str, Any]] | Iterable[NodeId] | None = None,
        name: str = "",
    ) -> "Graph":
        """Build a graph from an edge list, optionally with node attributes.

        ``nodes`` may be a mapping ``{node: attrs}`` or a plain iterable of
        node ids; nodes mentioned only in ``edges`` are created bare.
        """
        graph = cls(name=name)
        if isinstance(nodes, Mapping):
            for node, attrs in nodes.items():
                graph.add_node(node, **dict(attrs))
        elif nodes is not None:
            graph.add_nodes(nodes)
        for source, target in edges:
            if source not in graph:
                graph.add_node(source)
            if target not in graph:
                graph.add_node(target)
            graph.add_edge(source, target)
        return graph

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._attrs)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    @property
    def size(self) -> int:
        """``|G|`` in the paper's sense: nodes plus edges."""
        return self.num_nodes + self._num_edges

    @property
    def version(self) -> int:
        """Mutation counter, bumped by every structural or attribute change.

        Engine-owned caches (:class:`~repro.graph.index.AttributeIndex`,
        :class:`~repro.graph.reach_index.BoundedReachIndex`, the engine's
        ``SnapshotCache`` of :class:`~repro.graph.frozen.FrozenGraph`
        snapshots) compare this against the version they last synchronized
        with to detect out-of-band mutations.  Every attribute write has a
        counting API — :meth:`set` for one attribute, :meth:`update_attrs`
        for several in one bump, or the engine's update objects — so there
        is no reason to assign into :meth:`attrs`' live dict; doing so
        still bypasses the counter and silently poisons every version-keyed
        cache.

        >>> g = Graph()
        >>> g.add_node("a"); g.add_node("b"); g.version
        2
        >>> g.add_edge("a", "b"); g.version
        True
        3
        """
        return self._version

    def __len__(self) -> int:
        return len(self._attrs)

    def __contains__(self, node: object) -> bool:
        return node in self._attrs

    def has_node(self, node: NodeId) -> bool:
        return node in self._attrs

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        succ = self._succ.get(source)
        return succ is not None and target in succ

    def nodes(self) -> Iterator[NodeId]:
        """Iterate node ids in insertion order."""
        return iter(self._attrs)

    def edges(self) -> Iterator[Edge]:
        """Iterate ``(source, target)`` pairs in insertion order."""
        for source, targets in self._succ.items():
            for target in targets:
                yield (source, target)

    def attrs(self, node: NodeId) -> dict[str, Any]:
        """The attribute dictionary of ``node`` (live, not a copy)."""
        try:
            return self._attrs[node]
        except KeyError:
            raise GraphError(f"unknown node: {node!r}") from None

    def get(self, node: NodeId, attr: str, default: Any = None) -> Any:
        """A single attribute of ``node`` (``default`` if unset)."""
        return self.attrs(node).get(attr, default)

    def set(self, node: NodeId, attr: str, value: Any) -> None:
        """Set a single attribute of ``node``."""
        self.attrs(node)[attr] = value
        self._version += 1

    def update_attrs(self, node: NodeId, /, **attrs: Any) -> None:
        """Set several attributes of ``node``, bumping :attr:`version` once.

        This is the blessed bulk write: engine and incremental attribute
        updates route through it (or :meth:`set`) instead of mutating the
        live :meth:`attrs` dict, so version-keyed caches always observe the
        change.  A no-attribute call is a no-op (no version bump).  The
        node parameter is positional-only, so attributes named ``node``
        (or ``self``) pass through like any other keyword.

        >>> g = Graph(); g.add_node("a"); g.version
        1
        >>> g.update_attrs("a", field="SA", experience=7); g.version
        2
        """
        if not attrs:
            return
        self.attrs(node).update(attrs)
        self._version += 1

    def successors(self, node: NodeId) -> Iterator[NodeId]:
        try:
            return iter(self._succ[node])
        except KeyError:
            raise GraphError(f"unknown node: {node!r}") from None

    def predecessors(self, node: NodeId) -> Iterator[NodeId]:
        try:
            return iter(self._pred[node])
        except KeyError:
            raise GraphError(f"unknown node: {node!r}") from None

    def out_degree(self, node: NodeId) -> int:
        try:
            return len(self._succ[node])
        except KeyError:
            raise GraphError(f"unknown node: {node!r}") from None

    def in_degree(self, node: NodeId) -> int:
        try:
            return len(self._pred[node])
        except KeyError:
            raise GraphError(f"unknown node: {node!r}") from None

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "Graph":
        """An independent deep-enough copy (attribute dicts are copied)."""
        clone = Graph(name=self.name if name is None else name)
        for node, attrs in self._attrs.items():
            clone.add_node(node, **attrs)
        for source, target in self.edges():
            clone.add_edge(source, target)
        return clone

    def subgraph(self, nodes: Iterable[NodeId], name: str = "") -> "Graph":
        """The induced subgraph on ``nodes`` (unknown ids raise)."""
        keep = list(nodes)
        sub = Graph(name=name)
        for node in keep:
            sub.add_node(node, **self.attrs(node))
        for node in keep:
            for target in self._succ[node]:
                if target in sub:
                    sub.add_edge(node, target)
        return sub

    def reversed(self, name: str = "") -> "Graph":
        """A copy with every edge direction flipped."""
        rev = Graph(name=name or f"{self.name}~rev")
        for node, attrs in self._attrs.items():
            rev.add_node(node, **attrs)
        for source, target in self.edges():
            rev.add_edge(target, source)
        return rev

    # ------------------------------------------------------------------
    # comparison / display
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self._attrs == other._attrs
            and {n: dict(t) for n, t in self._succ.items()}
            == {n: dict(t) for n, t in other._succ.items()}
        )

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph objects are mutable and unhashable")

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label}: {self.num_nodes} nodes, {self.num_edges} edges>"
