"""Path-length utilities used by bounded simulation and ranking.

Bounded simulation constrains pattern edges by the length of a *nonempty*
path in the data graph, so all helpers here use nonempty-path semantics: the
source node itself appears in a result only when it lies on a cycle (a path
of length >= 1 back to itself).

``bound=None`` means "unbounded" and corresponds to a ``*`` bound on a
pattern edge (plain reachability).

Every label-keyed entry point also accepts a
:class:`~repro.graph.frozen.FrozenGraph` in place of the mutable ``Graph``:
the search then runs int-indexed over the snapshot's CSR rows — frontier
expansion is C-speed ``frozenset`` algebra instead of a per-edge
interpreted loop — and the result is converted back to labels.  The values
are identical to the dict-backed path (the seeded differential suite in
``tests/test_frozen.py`` asserts it); only dict insertion order may differ,
because the set kernels discover a level at once rather than edge by edge.
"""

from __future__ import annotations

import heapq
from array import array
from collections import deque
from typing import Callable, Iterable, Iterator, Mapping

from repro.graph.digraph import Graph, NodeId
from repro.graph.frozen import FrozenGraph

#: Sentinel accepted everywhere a bound is expected: no length restriction.
UNBOUNDED = None

_EMPTY_IDS: frozenset[int] = frozenset()


def bounded_descendants(
    graph: Graph | FrozenGraph, source: NodeId, bound: int | None
) -> dict[NodeId, int]:
    """Nodes reachable from ``source`` by a nonempty path of length <= bound.

    Returns ``{node: shortest nonempty path length}``.  ``source`` itself is
    included only if it can be re-reached through a cycle within the bound.

    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
    >>> bounded_descendants(g, "a", 2)
    {'b': 1, 'c': 2}
    >>> bounded_descendants(g, "a", 3)["a"]
    3
    >>> from repro.graph.frozen import FrozenGraph
    >>> bounded_descendants(FrozenGraph.freeze(g), "a", 2)
    {'b': 1, 'c': 2}
    """
    if isinstance(graph, FrozenGraph):
        return _frozen_to_labels(
            graph, frozen_reach_levels(graph.successor_sets(), graph.id_of(source), bound)
        )
    return _bounded_search(graph.successors, source, bound)


def bounded_ancestors(
    graph: Graph | FrozenGraph, source: NodeId, bound: int | None
) -> dict[NodeId, int]:
    """Nodes that reach ``source`` by a nonempty path of length <= bound."""
    if isinstance(graph, FrozenGraph):
        return _frozen_to_labels(
            graph,
            frozen_reach_levels(graph.predecessor_sets(), graph.id_of(source), bound),
        )
    return _bounded_search(graph.predecessors, source, bound)


def _bounded_search(
    neighbours: Callable[[NodeId], Iterator[NodeId]],
    source: NodeId,
    bound: int | None,
) -> dict[NodeId, int]:
    if bound is not None and bound < 1:
        return {}
    dist: dict[NodeId, int] = {}
    frontier: deque = deque()
    for first in neighbours(source):
        if first not in dist:
            dist[first] = 1
            frontier.append(first)
    _expand(neighbours, dist, frontier, 1, bound)
    return dist


def _expand(
    neighbours: Callable[[NodeId], Iterator[NodeId]],
    dist: dict[NodeId, int],
    frontier: deque,
    depth: int,
    bound: int | None,
) -> None:
    """Level-by-level BFS expansion shared by the search entry points.

    ``dist``/``frontier`` carry the seeded starting level (``depth``);
    expansion stops at ``bound`` (``None`` = exhaustive), mutating ``dist``
    in place.
    """
    while frontier and (bound is None or depth < bound):
        depth += 1
        for _ in range(len(frontier)):
            node = frontier.popleft()
            for nxt in neighbours(node):
                if nxt not in dist:
                    dist[nxt] = depth
                    frontier.append(nxt)


# ----------------------------------------------------------------------
# int-indexed kernels over frozen CSR snapshots
# ----------------------------------------------------------------------

def frozen_reach_levels(
    adjacency_sets: tuple[frozenset[int], ...],
    source_id: int,
    bound: int | None,
) -> list[frozenset[int] | set[int]]:
    """Level sets of a truncated BFS over int adjacency (nonempty paths).

    ``levels[d - 1]`` holds the node ids first reached at distance ``d``;
    the source id appears only if a cycle re-reaches it.  Frontier
    expansion is one C-speed ``frozenset.union`` over the frontier's rows
    plus one set difference per level — the shape that beats the dict
    path's per-edge interpreted loop.
    """
    if bound is not None and bound < 1:
        return []
    frontier: frozenset[int] | set[int] = adjacency_sets[source_id]
    if not frontier:
        return []
    seen = set(frontier)
    levels: list[frozenset[int] | set[int]] = [frontier]
    depth = 1
    while bound is None or depth < bound:
        depth += 1
        if len(frontier) == 1:
            [node] = frontier
            grown: frozenset[int] = adjacency_sets[node]
        else:
            grown = _EMPTY_IDS.union(*map(adjacency_sets.__getitem__, frontier))
        frontier = grown - seen
        if not frontier:
            break
        seen |= frontier
        levels.append(frontier)
    return levels


def frozen_multi_source_ids(
    adjacency_sets: tuple[frozenset[int], ...],
    source_ids: Iterable[int],
    bound: int | None,
) -> dict[int, int]:
    """Int-indexed :func:`multi_source_descendants` (empty-path semantics)."""
    frontier: set[int] | frozenset[int] = set(source_ids)
    dist = dict.fromkeys(frontier, 0)
    depth = 0
    while frontier and (bound is None or depth < bound):
        depth += 1
        if len(frontier) == 1:
            [node] = frontier
            grown: frozenset[int] = adjacency_sets[node]
        else:
            grown = _EMPTY_IDS.union(*map(adjacency_sets.__getitem__, frontier))
        frontier = grown - dist.keys()
        if frontier:
            dist.update(dict.fromkeys(frontier, depth))
    return dist


def _frozen_to_labels(
    frozen: FrozenGraph, levels: list[frozenset[int] | set[int]]
) -> dict[NodeId, int]:
    """Flatten BFS level sets into the label-keyed ``{node: dist}`` dict."""
    labels = frozen.labels
    dist: dict[NodeId, int] = {}
    for depth, level in enumerate(levels, start=1):
        for node_id in level:
            dist[labels[node_id]] = depth
    return dist


def weighted_distances_ids(
    offsets: array, targets: array, weights: array, source_id: int
) -> dict[int, float]:
    """Int-indexed Dijkstra over weighted CSR rows (nonempty paths).

    The label-keyed :func:`weighted_distances` breaks distance ties with an
    ``_order_key`` wrapper whose ``__lt__`` is an interpreted call per heap
    comparison; here ties compare dense ints in C.  When ids are assigned
    in ``_order_key`` order (the ranking snapshot does exactly that), the
    pop order — and hence the result — is identical.
    """
    dist: dict[int, float] = {}
    heap: list[tuple[float, int]] = [
        (weights[position], targets[position])
        for position in range(offsets[source_id], offsets[source_id + 1])
    ]
    heapq.heapify(heap)
    push, pop = heapq.heappush, heapq.heappop
    while heap:
        d, node = pop(heap)
        if node in dist:
            continue
        dist[node] = d
        for position in range(offsets[node], offsets[node + 1]):
            nxt = targets[position]
            if nxt not in dist:
                push(heap, (d + weights[position], nxt))
    return dist


def multi_source_descendants(
    graph: Graph | FrozenGraph, sources: Iterable[NodeId], bound: int | None
) -> dict[NodeId, int]:
    """Distance from the *nearest* of ``sources`` to every node within ``bound``.

    Unlike the rest of this module, this helper uses empty-path semantics:
    every source appears in the result at distance 0.  That is exactly what
    ball covers need — a shard built from a multi-source search contains
    each pivot *and* each pivot's individual radius-``bound`` ball, because
    any node within ``bound`` of some pivot is within ``bound`` of the
    nearest pivot.  One search over the union costs far less than one
    :func:`bounded_descendants` call per pivot.

    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("x", "c")])
    >>> multi_source_descendants(g, ["a", "x"], 1)
    {'a': 0, 'x': 0, 'b': 1, 'c': 1}
    """
    if isinstance(graph, FrozenGraph):
        labels = graph.labels
        reached = frozen_multi_source_ids(
            graph.successor_sets(), (graph.id_of(s) for s in sources), bound
        )
        return {labels[node_id]: d for node_id, d in reached.items()}
    dist: dict[NodeId, int] = {}
    frontier: deque = deque()
    for source in sources:
        if source not in dist:
            dist[source] = 0
            frontier.append(source)
    _expand(graph.successors, dist, frontier, 0, bound)
    return dist


def distance(
    graph: Graph | FrozenGraph, source: NodeId, target: NodeId
) -> int | None:
    """Shortest nonempty path length ``source -> target``; None if unreachable.

    ``distance(g, v, v)`` is the shortest cycle through ``v`` (not 0).
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return None
    return bounded_descendants(graph, source, None).get(target)


def within_bound(
    graph: Graph | FrozenGraph, source: NodeId, target: NodeId, bound: int | None
) -> bool:
    """True iff a nonempty path ``source -> target`` of length <= bound exists."""
    return target in bounded_descendants(graph, source, bound)


def weighted_distances(
    adjacency: Mapping[NodeId, Mapping[NodeId, float]], source: NodeId
) -> dict[NodeId, float]:
    """Dijkstra over an explicit weighted adjacency (nonempty paths).

    Used on result graphs, whose edge weights are shortest-path lengths in
    the data graph.  Weights must be positive.  The source appears in the
    output only when it lies on a (weighted) cycle.
    """
    dist: dict[NodeId, float] = {}
    heap: list[tuple[float, NodeId]] = []
    for nxt, weight in adjacency.get(source, {}).items():
        heapq.heappush(heap, (float(weight), _order_key(nxt)))
    # heapq needs comparable entries even when distances tie; wrap nodes in a
    # stable ordering key and unwrap on pop.
    while heap:
        d, key = heapq.heappop(heap)
        node = key.node
        if node in dist:
            continue
        dist[node] = d
        for nxt, weight in adjacency.get(node, {}).items():
            if nxt not in dist:
                heapq.heappush(heap, (d + float(weight), _order_key(nxt)))
    return dist


def node_order_key(node: NodeId) -> tuple[str, str]:
    """The total-ordering key Dijkstra uses to break distance ties.

    Shared by the label-keyed heap wrapper below and by the ranking
    snapshot's dense-id assignment (:mod:`repro.ranking.topk`): ids sorted
    by this key make int heap tuples order exactly like label ones, which
    is what keeps the two Dijkstra paths byte-identical.
    """
    return (type(node).__name__, repr(node))


class _order_key:
    """Total-ordering wrapper so heterogeneous node ids can share a heap."""

    __slots__ = ("node", "_key")

    def __init__(self, node: NodeId) -> None:
        self.node = node
        self._key = node_order_key(node)

    def __lt__(self, other: "_order_key") -> bool:
        return self._key < other._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _order_key) and self.node == other.node


def eccentricity_within(
    graph: Graph | FrozenGraph, source: NodeId, bound: int | None
) -> int:
    """Length of the longest shortest-path from ``source`` within ``bound``.

    Convenience for diagnostics and tests; 0 when ``source`` reaches nothing.
    """
    reached = bounded_descendants(graph, source, bound)
    return max(reached.values(), default=0)
