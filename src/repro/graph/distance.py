"""Path-length utilities used by bounded simulation and ranking.

Bounded simulation constrains pattern edges by the length of a *nonempty*
path in the data graph, so all helpers here use nonempty-path semantics: the
source node itself appears in a result only when it lies on a cycle (a path
of length >= 1 back to itself).

``bound=None`` means "unbounded" and corresponds to a ``*`` bound on a
pattern edge (plain reachability).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Iterator, Mapping

from repro.graph.digraph import Graph, NodeId

#: Sentinel accepted everywhere a bound is expected: no length restriction.
UNBOUNDED = None


def bounded_descendants(
    graph: Graph, source: NodeId, bound: int | None
) -> dict[NodeId, int]:
    """Nodes reachable from ``source`` by a nonempty path of length <= bound.

    Returns ``{node: shortest nonempty path length}``.  ``source`` itself is
    included only if it can be re-reached through a cycle within the bound.

    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
    >>> bounded_descendants(g, "a", 2)
    {'b': 1, 'c': 2}
    >>> bounded_descendants(g, "a", 3)["a"]
    3
    """
    return _bounded_search(graph.successors, source, bound)


def bounded_ancestors(
    graph: Graph, source: NodeId, bound: int | None
) -> dict[NodeId, int]:
    """Nodes that reach ``source`` by a nonempty path of length <= bound."""
    return _bounded_search(graph.predecessors, source, bound)


def _bounded_search(
    neighbours: Callable[[NodeId], Iterator[NodeId]],
    source: NodeId,
    bound: int | None,
) -> dict[NodeId, int]:
    if bound is not None and bound < 1:
        return {}
    dist: dict[NodeId, int] = {}
    frontier = deque()
    for first in neighbours(source):
        if first not in dist:
            dist[first] = 1
            frontier.append(first)
    depth = 1
    while frontier and (bound is None or depth < bound):
        depth += 1
        for _ in range(len(frontier)):
            node = frontier.popleft()
            for nxt in neighbours(node):
                if nxt not in dist:
                    dist[nxt] = depth
                    frontier.append(nxt)
    return dist


def distance(graph: Graph, source: NodeId, target: NodeId) -> int | None:
    """Shortest nonempty path length ``source -> target``; None if unreachable.

    ``distance(g, v, v)`` is the shortest cycle through ``v`` (not 0).
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return None
    reached = _bounded_search(graph.successors, source, None)
    return reached.get(target)


def within_bound(graph: Graph, source: NodeId, target: NodeId, bound: int | None) -> bool:
    """True iff a nonempty path ``source -> target`` of length <= bound exists."""
    found = _bounded_search(graph.successors, source, bound)
    return target in found


def weighted_distances(
    adjacency: Mapping[NodeId, Mapping[NodeId, float]], source: NodeId
) -> dict[NodeId, float]:
    """Dijkstra over an explicit weighted adjacency (nonempty paths).

    Used on result graphs, whose edge weights are shortest-path lengths in
    the data graph.  Weights must be positive.  The source appears in the
    output only when it lies on a (weighted) cycle.
    """
    dist: dict[NodeId, float] = {}
    heap: list[tuple[float, NodeId]] = []
    for nxt, weight in adjacency.get(source, {}).items():
        heapq.heappush(heap, (float(weight), _order_key(nxt)))
    # heapq needs comparable entries even when distances tie; wrap nodes in a
    # stable ordering key and unwrap on pop.
    while heap:
        d, key = heapq.heappop(heap)
        node = key.node
        if node in dist:
            continue
        dist[node] = d
        for nxt, weight in adjacency.get(node, {}).items():
            if nxt not in dist:
                heapq.heappush(heap, (d + float(weight), _order_key(nxt)))
    return dist


class _order_key:
    """Total-ordering wrapper so heterogeneous node ids can share a heap."""

    __slots__ = ("node", "_key")

    def __init__(self, node: NodeId) -> None:
        self.node = node
        self._key = (type(node).__name__, repr(node))

    def __lt__(self, other: "_order_key") -> bool:
        return self._key < other._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _order_key) and self.node == other.node


def eccentricity_within(graph: Graph, source: NodeId, bound: int | None) -> int:
    """Length of the longest shortest-path from ``source`` within ``bound``.

    Convenience for diagnostics and tests; 0 when ``source`` reaches nothing.
    """
    reached = bounded_descendants(graph, source, bound)
    return max(reached.values(), default=0)
