"""Path-length utilities used by bounded simulation and ranking.

Bounded simulation constrains pattern edges by the length of a *nonempty*
path in the data graph, so all helpers here use nonempty-path semantics: the
source node itself appears in a result only when it lies on a cycle (a path
of length >= 1 back to itself).

``bound=None`` means "unbounded" and corresponds to a ``*`` bound on a
pattern edge (plain reachability).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable, Iterable, Iterator, Mapping

from repro.graph.digraph import Graph, NodeId

#: Sentinel accepted everywhere a bound is expected: no length restriction.
UNBOUNDED = None


def bounded_descendants(
    graph: Graph, source: NodeId, bound: int | None
) -> dict[NodeId, int]:
    """Nodes reachable from ``source`` by a nonempty path of length <= bound.

    Returns ``{node: shortest nonempty path length}``.  ``source`` itself is
    included only if it can be re-reached through a cycle within the bound.

    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])
    >>> bounded_descendants(g, "a", 2)
    {'b': 1, 'c': 2}
    >>> bounded_descendants(g, "a", 3)["a"]
    3
    """
    return _bounded_search(graph.successors, source, bound)


def bounded_ancestors(
    graph: Graph, source: NodeId, bound: int | None
) -> dict[NodeId, int]:
    """Nodes that reach ``source`` by a nonempty path of length <= bound."""
    return _bounded_search(graph.predecessors, source, bound)


def _bounded_search(
    neighbours: Callable[[NodeId], Iterator[NodeId]],
    source: NodeId,
    bound: int | None,
) -> dict[NodeId, int]:
    if bound is not None and bound < 1:
        return {}
    dist: dict[NodeId, int] = {}
    frontier: deque = deque()
    for first in neighbours(source):
        if first not in dist:
            dist[first] = 1
            frontier.append(first)
    _expand(neighbours, dist, frontier, 1, bound)
    return dist


def _expand(
    neighbours: Callable[[NodeId], Iterator[NodeId]],
    dist: dict[NodeId, int],
    frontier: deque,
    depth: int,
    bound: int | None,
) -> None:
    """Level-by-level BFS expansion shared by the search entry points.

    ``dist``/``frontier`` carry the seeded starting level (``depth``);
    expansion stops at ``bound`` (``None`` = exhaustive), mutating ``dist``
    in place.
    """
    while frontier and (bound is None or depth < bound):
        depth += 1
        for _ in range(len(frontier)):
            node = frontier.popleft()
            for nxt in neighbours(node):
                if nxt not in dist:
                    dist[nxt] = depth
                    frontier.append(nxt)


def multi_source_descendants(
    graph: Graph, sources: Iterable[NodeId], bound: int | None
) -> dict[NodeId, int]:
    """Distance from the *nearest* of ``sources`` to every node within ``bound``.

    Unlike the rest of this module, this helper uses empty-path semantics:
    every source appears in the result at distance 0.  That is exactly what
    ball covers need — a shard built from a multi-source search contains
    each pivot *and* each pivot's individual radius-``bound`` ball, because
    any node within ``bound`` of some pivot is within ``bound`` of the
    nearest pivot.  One search over the union costs far less than one
    :func:`bounded_descendants` call per pivot.

    >>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("x", "c")])
    >>> multi_source_descendants(g, ["a", "x"], 1)
    {'a': 0, 'x': 0, 'b': 1, 'c': 1}
    """
    dist: dict[NodeId, int] = {}
    frontier: deque = deque()
    for source in sources:
        if source not in dist:
            dist[source] = 0
            frontier.append(source)
    _expand(graph.successors, dist, frontier, 0, bound)
    return dist


def distance(graph: Graph, source: NodeId, target: NodeId) -> int | None:
    """Shortest nonempty path length ``source -> target``; None if unreachable.

    ``distance(g, v, v)`` is the shortest cycle through ``v`` (not 0).
    """
    if not graph.has_node(source) or not graph.has_node(target):
        return None
    reached = _bounded_search(graph.successors, source, None)
    return reached.get(target)


def within_bound(graph: Graph, source: NodeId, target: NodeId, bound: int | None) -> bool:
    """True iff a nonempty path ``source -> target`` of length <= bound exists."""
    found = _bounded_search(graph.successors, source, bound)
    return target in found


def weighted_distances(
    adjacency: Mapping[NodeId, Mapping[NodeId, float]], source: NodeId
) -> dict[NodeId, float]:
    """Dijkstra over an explicit weighted adjacency (nonempty paths).

    Used on result graphs, whose edge weights are shortest-path lengths in
    the data graph.  Weights must be positive.  The source appears in the
    output only when it lies on a (weighted) cycle.
    """
    dist: dict[NodeId, float] = {}
    heap: list[tuple[float, NodeId]] = []
    for nxt, weight in adjacency.get(source, {}).items():
        heapq.heappush(heap, (float(weight), _order_key(nxt)))
    # heapq needs comparable entries even when distances tie; wrap nodes in a
    # stable ordering key and unwrap on pop.
    while heap:
        d, key = heapq.heappop(heap)
        node = key.node
        if node in dist:
            continue
        dist[node] = d
        for nxt, weight in adjacency.get(node, {}).items():
            if nxt not in dist:
                heapq.heappush(heap, (d + float(weight), _order_key(nxt)))
    return dist


class _order_key:
    """Total-ordering wrapper so heterogeneous node ids can share a heap."""

    __slots__ = ("node", "_key")

    def __init__(self, node: NodeId) -> None:
        self.node = node
        self._key = (type(node).__name__, repr(node))

    def __lt__(self, other: "_order_key") -> bool:
        return self._key < other._key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _order_key) and self.node == other.node


def eccentricity_within(graph: Graph, source: NodeId, bound: int | None) -> int:
    """Length of the longest shortest-path from ``source`` within ``bound``.

    Convenience for diagnostics and tests; 0 when ``source`` reaches nothing.
    """
    reached = bounded_descendants(graph, source, bound)
    return max(reached.values(), default=0)
