"""Frozen CSR graph snapshots — the immutable substrate for hot kernels.

The query flow of the paper (§II) evaluates many pattern queries against a
social network that does not change between evaluations, yet every traversal
in the mutable :class:`~repro.graph.digraph.Graph` walks dict-of-dicts
adjacency: one method call and two hash probes per node, one hash probe per
edge, and a dictionary allocation per neighbourhood.  A
:class:`FrozenGraph` is a compact, immutable snapshot of a ``Graph`` built
for exactly that read-mostly workload:

* node labels are **interned to dense ints** ``0..n-1`` in the graph's
  deterministic insertion order (``labels[i]`` maps back);
* adjacency is **CSR** (compressed sparse row) in both directions: flat
  ``array('q')`` offset/target buffers, so a neighbourhood is a slice, the
  whole structure pickles as a handful of raw byte buffers, and shipping a
  shard to a worker process costs a fraction of pickling the equivalent
  dict ``Graph``;
* node attributes are stored as **columns** (``attr -> {node id: value
  id}``) over one interned value pool, so a 50k-node graph with three
  distinct ``field`` values stores three field strings, not 50k;
* the snapshot records the ``source_version`` (the graph's mutation
  counter) it was built from, so caches can validate it, and
  :meth:`to_graph` reconstructs an equal ``Graph`` — the round-trip is
  exact (asserted property-based in ``tests/test_frozen.py``).

Traversal kernels (:mod:`repro.graph.distance`,
:func:`repro.matching.bounded.frozen_successor_rows`) work over
:meth:`successor_sets` / :meth:`predecessor_sets` — per-node ``frozenset``
views of the CSR rows, derived lazily and never pickled — because Python's
C-speed set algebra (unions for frontier expansion, intersections for
candidate filtering) is what actually beats the per-edge interpreted loop
of the dict-backed path.

The layout is deliberately the stepping stone the ROADMAP asks for: the
flat buffers are mmap- and NumPy-ready, and every kernel that consumes them
is one function swap away from a vectorized backend.

>>> from repro.graph.digraph import Graph
>>> g = Graph.from_edges([("a", "b"), ("b", "c")], nodes={"a": {"f": "X"}})
>>> frozen = FrozenGraph.freeze(g)
>>> frozen.num_nodes, frozen.num_edges
(3, 2)
>>> list(frozen.successors("a"))
['b']
>>> frozen.to_graph() == g
True
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Iterator

from repro.errors import GraphError
from repro.graph.digraph import Edge, Graph, NodeId


def _own_buffer(buffer: Any) -> array:
    """``buffer`` as an ``array('q')`` that owns its memory.

    Store-loaded snapshots hold int64 ``memoryview`` casts over an mmap;
    those cannot pickle (and must not — the receiving process has no
    mapping), so pickling materializes them.  Already-owned arrays pass
    through untouched.
    """
    return buffer if isinstance(buffer, array) else array("q", buffer)


class FrozenGraph:
    """An immutable CSR snapshot of a :class:`~repro.graph.digraph.Graph`.

    Build one with :meth:`freeze`; derive shard-sized ones with
    :meth:`induced`.  The snapshot never observes later graph mutations
    made through the graph's API — owners (the engine's ``SnapshotCache``)
    compare :attr:`source_version` against ``Graph.version`` to decide
    when to rebuild.  Attribute *values* are held by reference, exactly
    like ``Graph.copy``'s "deep-enough" convention: mutating a stored
    value in place (``graph.attrs(v)["tags"].append(...)``) bypasses the
    version counter everywhere in this codebase, snapshot included.
    """

    __slots__ = (
        "name",
        "source_version",
        "labels",
        "out_offsets",
        "out_targets",
        "in_offsets",
        "in_targets",
        "_columns",
        "_columns_packed",
        "_values",
        "_ids",
        "_succ_sets",
        "_pred_sets",
        "path",
    )

    def __init__(
        self,
        name: str,
        source_version: int,
        labels: tuple[NodeId, ...],
        out_offsets: array,
        out_targets: array,
        in_offsets: array,
        in_targets: array,
        columns: dict[str, dict[int, int]],
        values: list[Any],
    ) -> None:
        self.name = name
        self.source_version = source_version
        self.labels = labels
        self.out_offsets = out_offsets
        self.out_targets = out_targets
        self.in_offsets = in_offsets
        self.in_targets = in_targets
        self._columns = columns
        # Store-loaded snapshots keep the columns packed as paired
        # (node index, value id) int64 sections until first attribute
        # access, so loading is O(1) in attribute count.
        self._columns_packed: dict[str, tuple[Any, Any]] | None = None
        self._values = values
        # Derived structures; rebuilt lazily, excluded from pickles.
        self._ids: dict[NodeId, int] | None = None
        self._succ_sets: tuple[frozenset[int], ...] | None = None
        self._pred_sets: tuple[frozenset[int], ...] | None = None
        # Backing snapshot file when loaded via the store (mmap views);
        # lets the parallel executor ship the path instead of the buffers.
        self.path: Any = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def freeze(cls, graph: Graph) -> "FrozenGraph":
        """Snapshot ``graph`` as it is right now.

        Node order, per-node successor order and per-node predecessor order
        all follow the graph's deterministic insertion order, so kernels
        over the snapshot make the same tie decisions as kernels over the
        dict graph.
        """
        labels = tuple(graph.nodes())
        ids = {label: index for index, label in enumerate(labels)}
        out_offsets = array("q", [0])
        out_targets = array("q")
        for label in labels:
            for target in graph.successors(label):
                out_targets.append(ids[target])
            out_offsets.append(len(out_targets))
        in_offsets = array("q", [0])
        in_targets = array("q")
        for label in labels:
            for source in graph.predecessors(label):
                in_targets.append(ids[source])
            in_offsets.append(len(in_targets))

        columns: dict[str, dict[int, int]] = {}
        values: list[Any] = []
        # Interning key is (type, value): 1, 1.0 and True are equal but must
        # not collapse to one pool slot or the round-trip changes types.
        interned: dict[tuple[type, Any], int] = {}
        for index, label in enumerate(labels):
            for attr, value in graph.attrs(label).items():
                try:
                    value_id = interned[(value.__class__, value)]
                except KeyError:
                    value_id = interned[(value.__class__, value)] = len(values)
                    values.append(value)
                except TypeError:  # unhashable values are stored un-deduped
                    value_id = len(values)
                    values.append(value)
                columns.setdefault(attr, {})[index] = value_id
        frozen = cls(
            graph.name,
            graph.version,
            labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            columns,
            values,
        )
        frozen._ids = ids
        return frozen

    def induced(
        self,
        nodes: Iterable[NodeId],
        name: str = "",
        include_attrs: bool = True,
    ) -> "FrozenGraph":
        """The induced sub-snapshot on ``nodes`` (unknown labels raise).

        Node order is inherited from this snapshot.  ``include_attrs=False``
        drops the attribute columns — what shard shipping wants, since
        workers only traverse — leaving a snapshot whose :meth:`to_graph`
        yields attribute-less nodes.
        """
        ids = self.ids()
        keep = sorted({ids[label] for label in self._checked(nodes, ids)})
        remap = {old: new for new, old in enumerate(keep)}
        mask = bytearray(len(self.labels))
        for old in keep:
            mask[old] = 1
        labels = tuple(self.labels[old] for old in keep)

        def restrict(offsets: array, targets: array) -> tuple[array, array]:
            sub_offsets = array("q", [0])
            sub_targets = array("q")
            for old in keep:
                for position in range(offsets[old], offsets[old + 1]):
                    target = targets[position]
                    if mask[target]:
                        sub_targets.append(remap[target])
                sub_offsets.append(len(sub_targets))
            return sub_offsets, sub_targets

        out_offsets, out_targets = restrict(self.out_offsets, self.out_targets)
        in_offsets, in_targets = restrict(self.in_offsets, self.in_targets)
        columns: dict[str, dict[int, int]] = {}
        values: list[Any] = []
        if include_attrs:
            # Re-pool values so a pickled sub-snapshot carries only what
            # its own nodes reference, not the parent's whole pool.
            value_remap: dict[int, int] = {}
            for attr, column in self._column_dicts().items():
                sub_column: dict[int, int] = {}
                for old, value_id in column.items():
                    if mask[old]:
                        new_value_id = value_remap.get(value_id)
                        if new_value_id is None:
                            new_value_id = value_remap[value_id] = len(values)
                            values.append(self._values[value_id])
                        sub_column[remap[old]] = new_value_id
                if sub_column:
                    columns[attr] = sub_column
        return FrozenGraph(
            name or self.name,
            self.source_version,
            labels,
            out_offsets,
            out_targets,
            in_offsets,
            in_targets,
            columns,
            values,
        )

    def _checked(
        self, nodes: Iterable[NodeId], ids: dict[NodeId, int]
    ) -> Iterator[NodeId]:
        for label in nodes:
            if label not in ids:
                raise GraphError(f"unknown node: {label!r}")
            yield label

    def without_attrs(self) -> "FrozenGraph":
        """An adjacency-only twin sharing this snapshot's buffers (O(1)).

        This is what ships to worker processes: the traversal kernels
        never read attributes, so pickling the columns and value pool
        would be dead weight on spawn-start platforms.
        """
        if not self._columns and not self._columns_packed and not self._values:
            return self
        twin = FrozenGraph(
            self.name,
            self.source_version,
            self.labels,
            self.out_offsets,
            self.out_targets,
            self.in_offsets,
            self.in_targets,
            {},
            [],
        )
        twin.path = self.path
        return twin

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.labels)

    @property
    def num_edges(self) -> int:
        return len(self.out_targets)

    @property
    def size(self) -> int:
        """``|G|`` in the paper's sense: nodes plus edges."""
        return self.num_nodes + self.num_edges

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, node: object) -> bool:
        return node in self.ids()

    def has_node(self, node: NodeId) -> bool:
        return node in self.ids()

    def ids(self) -> dict[NodeId, int]:
        """``label -> dense int`` (lazy; rebuilt after unpickling)."""
        if self._ids is None:
            self._ids = {label: index for index, label in enumerate(self.labels)}
        return self._ids

    def id_of(self, node: NodeId) -> int:
        try:
            return self.ids()[node]
        except KeyError:
            raise GraphError(f"unknown node: {node!r}") from None

    def nodes(self) -> Iterator[NodeId]:
        return iter(self.labels)

    def edges(self) -> Iterator[Edge]:
        labels = self.labels
        offsets, targets = self.out_offsets, self.out_targets
        for index, label in enumerate(labels):
            for position in range(offsets[index], offsets[index + 1]):
                yield (label, labels[targets[position]])

    def successors(self, node: NodeId) -> Iterator[NodeId]:
        index = self.id_of(node)
        labels, offsets, targets = self.labels, self.out_offsets, self.out_targets
        return (
            labels[targets[position]]
            for position in range(offsets[index], offsets[index + 1])
        )

    def predecessors(self, node: NodeId) -> Iterator[NodeId]:
        index = self.id_of(node)
        labels, offsets, targets = self.labels, self.in_offsets, self.in_targets
        return (
            labels[targets[position]]
            for position in range(offsets[index], offsets[index + 1])
        )

    def out_degree(self, node: NodeId) -> int:
        index = self.id_of(node)
        return self.out_offsets[index + 1] - self.out_offsets[index]

    def in_degree(self, node: NodeId) -> int:
        index = self.id_of(node)
        return self.in_offsets[index + 1] - self.in_offsets[index]

    def has_edge(self, source: NodeId, target: NodeId) -> bool:
        source_id = self.id_of(source)
        return self.id_of(target) in self.successor_sets()[source_id]

    def _column_dicts(self) -> dict[str, dict[int, int]]:
        """``attr -> {node index: value id}``, unpacked from sections lazily."""
        if self._columns is None:
            self._columns = {
                attr: dict(zip(indices.tolist(), value_ids.tolist()))
                for attr, (indices, value_ids) in (self._columns_packed or {}).items()
            }
        return self._columns

    def node_attrs(self, node: NodeId) -> dict[str, Any]:
        """A fresh attribute dict for ``node`` (column order, not original)."""
        index = self.id_of(node)
        values = self._values
        return {
            attr: values[column[index]]
            for attr, column in self._column_dicts().items()
            if index in column
        }

    def matches(self, graph: Graph) -> bool:
        """Best-effort check that this snapshot was taken of ``graph`` as is.

        Compares the recorded ``source_version`` against ``graph.version``
        plus node/edge counts and O(1) label spot checks (first/last label
        membership and the first label's out-degree).  This reliably
        catches stale snapshots of the *same* graph — the failure mode the
        engine's caches care about — and most accidental cross-graph
        mix-ups; it is not a cryptographic identity proof.
        """
        if (
            self.source_version != graph.version
            or len(self.labels) != graph.num_nodes
            or self.num_edges != graph.num_edges
        ):
            return False
        if not self.labels:
            return True
        first, last = self.labels[0], self.labels[-1]
        return (
            graph.has_node(first)
            and graph.has_node(last)
            and graph.out_degree(first)
            == self.out_offsets[1] - self.out_offsets[0]
        )

    # ------------------------------------------------------------------
    # kernel views
    # ------------------------------------------------------------------
    def successor_sets(self) -> tuple[frozenset[int], ...]:
        """Per-node successor id sets (lazy; the BFS kernels' substrate)."""
        if self._succ_sets is None:
            self._succ_sets = self._row_sets(self.out_offsets, self.out_targets)
        return self._succ_sets

    def predecessor_sets(self) -> tuple[frozenset[int], ...]:
        """Per-node predecessor id sets (lazy)."""
        if self._pred_sets is None:
            self._pred_sets = self._row_sets(self.in_offsets, self.in_targets)
        return self._pred_sets

    def _row_sets(self, offsets: array, targets: array) -> tuple[frozenset[int], ...]:
        flat = targets.tolist()
        return tuple(
            frozenset(flat[offsets[index] : offsets[index + 1]])
            for index in range(len(self.labels))
        )

    # ------------------------------------------------------------------
    # round trip
    # ------------------------------------------------------------------
    def to_graph(self, name: str | None = None) -> Graph:
        """Reconstruct an equal :class:`Graph` (labels, edges, attributes)."""
        values = self._values
        attr_rows: list[dict[str, Any]] = [{} for _ in self.labels]
        for attr, column in self._column_dicts().items():
            for index, value_id in column.items():
                attr_rows[index][attr] = values[value_id]
        graph = Graph(name=self.name if name is None else name)
        for label, attrs in zip(self.labels, attr_rows):
            graph.add_node(label, **attrs)
        labels, offsets, targets = self.labels, self.out_offsets, self.out_targets
        for index, label in enumerate(labels):
            for position in range(offsets[index], offsets[index + 1]):
                graph.add_edge(label, labels[targets[position]])
        return graph

    # ------------------------------------------------------------------
    # flat-buffer codec (binary snapshot files)
    # ------------------------------------------------------------------
    def _packed_labels(self) -> array | None:
        """The labels as one int64 buffer, or None when not purely ints."""
        if not all(type(label) is int for label in self.labels):
            return None
        try:
            return array("q", self.labels)
        except OverflowError:  # labels beyond int64 stay in the metadata
            return None

    def to_buffers(self) -> tuple[dict[str, Any], list[tuple[str, Any]]]:
        """Split the snapshot into JSON-ready metadata and flat buffers.

        The buffer list carries the four CSR arrays as ``(section,
        buffer)`` pairs, plus one ``labels`` section when every node id is
        a plain int (the common case for generated graphs — JSON-encoding
        and re-parsing millions of int labels would dominate an otherwise
        O(1) load) and one ``col<i>.idx`` / ``col<i>.val`` section pair
        per attribute column.  The metadata dict carries the rest: name,
        the interned value pool, the column attribute names in section
        order, and — only for graphs with non-int node ids — the labels
        themselves.  :meth:`from_buffers` inverts this over either
        materialized arrays or zero-copy mmap views.
        """
        buffers = [
            ("out_offsets", self.out_offsets),
            ("out_targets", self.out_targets),
            ("in_offsets", self.in_offsets),
            ("in_targets", self.in_targets),
        ]
        labels_buffer = self._packed_labels()
        if labels_buffer is not None:
            buffers.append(("labels", labels_buffer))
        if self._columns is None and self._columns_packed is not None:
            packed = self._columns_packed  # never unpacked: reuse verbatim
        else:
            packed = {
                attr: (array("q", column.keys()), array("q", column.values()))
                for attr, column in self._column_dicts().items()
            }
        for ordinal, pair in enumerate(packed.values()):
            buffers.append((f"col{ordinal}.idx", pair[0]))
            buffers.append((f"col{ordinal}.val", pair[1]))
        meta = {
            "name": self.name,
            "labels": None if labels_buffer is not None else list(self.labels),
            "columns": list(packed),
            "values": list(self._values),
        }
        return meta, buffers

    @classmethod
    def from_buffers(
        cls,
        source_version: int,
        meta: dict[str, Any],
        buffers: dict[str, Any],
    ) -> "FrozenGraph":
        """Rebuild from :meth:`to_buffers` output.

        ``buffers`` values may be ``array('q')`` objects or int64
        ``memoryview`` casts over an mmap — the kernels only ever index,
        slice and ``tolist()`` them, so views are served as-is (zero
        copy).  Attribute columns stay packed until first access, so this
        is O(num_nodes) at worst (int label decode) and O(1) beyond that.
        """
        if meta["labels"] is None:
            labels = tuple(buffers["labels"].tolist())
        else:
            labels = tuple(meta["labels"])
        frozen = cls(
            meta["name"],
            source_version,
            labels,
            buffers["out_offsets"],
            buffers["out_targets"],
            buffers["in_offsets"],
            buffers["in_targets"],
            {},
            list(meta["values"]),
        )
        frozen._columns = None
        frozen._columns_packed = {
            attr: (buffers[f"col{ordinal}.idx"], buffers[f"col{ordinal}.val"])
            for ordinal, attr in enumerate(meta["columns"])
        }
        return frozen

    # ------------------------------------------------------------------
    # pickling (derived views never travel; mmap views materialize)
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple:
        return (
            self.name,
            self.source_version,
            self.labels,
            _own_buffer(self.out_offsets),
            _own_buffer(self.out_targets),
            _own_buffer(self.in_offsets),
            _own_buffer(self.in_targets),
            self._column_dicts(),
            self._values,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.name,
            self.source_version,
            self.labels,
            self.out_offsets,
            self.out_targets,
            self.in_offsets,
            self.in_targets,
            self._columns,
            self._values,
        ) = state
        self._columns_packed = None
        self._ids = None
        self._succ_sets = None
        self._pred_sets = None
        self.path = None

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<FrozenGraph{label}: {self.num_nodes} nodes, "
            f"{self.num_edges} edges, v{self.source_version}>"
        )
