"""Graph substrate: directed attributed graphs, distances, generators, I/O."""

from repro.graph.digraph import Edge, Graph, NodeId
from repro.graph.distance import (
    UNBOUNDED,
    bounded_ancestors,
    bounded_descendants,
    distance,
    eccentricity_within,
    multi_source_descendants,
    weighted_distances,
    within_bound,
)
from repro.graph.frozen import FrozenGraph
from repro.graph.generators import (
    FIELDS,
    CollaborationConfig,
    collaboration_graph,
    degree_histogram,
    random_digraph,
    twitter_like_graph,
)
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_edgelist,
    load_graph,
    save_edgelist,
    save_graph,
)
from repro.graph.index import (
    AttributeIndex,
    Resolution,
    batch_candidates,
    candidates_from_index,
    predicate_key,
)
from repro.graph.oracle import DistanceOracle, OracleSlice
from repro.graph.reach_index import BoundedReachIndex
from repro.graph.stats import (
    DegreeStats,
    attribute_histogram,
    degree_stats,
    density,
    graph_profile,
    reciprocity,
    sampled_reach,
)

__all__ = [
    "Edge",
    "Graph",
    "NodeId",
    "UNBOUNDED",
    "bounded_ancestors",
    "bounded_descendants",
    "distance",
    "eccentricity_within",
    "multi_source_descendants",
    "weighted_distances",
    "within_bound",
    "FrozenGraph",
    "FIELDS",
    "CollaborationConfig",
    "collaboration_graph",
    "degree_histogram",
    "random_digraph",
    "twitter_like_graph",
    "graph_from_dict",
    "graph_to_dict",
    "load_edgelist",
    "load_graph",
    "save_edgelist",
    "save_graph",
    "AttributeIndex",
    "Resolution",
    "batch_candidates",
    "candidates_from_index",
    "predicate_key",
    "BoundedReachIndex",
    "DistanceOracle",
    "OracleSlice",
    "DegreeStats",
    "attribute_histogram",
    "degree_stats",
    "density",
    "graph_profile",
    "reciprocity",
    "sampled_reach",
]
