"""Graph (de)serialization — "graphs ... are stored and managed as files".

Two interchange formats:

* JSON (canonical): keeps node attributes, round-trips exactly;
* tab-separated edge lists: lowest-common-denominator interop with other
  graph tooling (attributes are not carried).

Node identifiers must be JSON scalars (``str`` / ``int``) to be storable;
in-memory graphs may use any hashable id.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable

from repro.errors import StorageError
from repro.graph.digraph import Graph

FORMAT_VERSION = 1


def _atomic_write(path: Path, mode: str, write: Any) -> Path:
    """Durable write: temp file in the target directory, then ``os.replace``.

    A crash (or raised exception) mid-write can never leave a truncated
    file under the final name — the previously-good file, if any, stays
    untouched until the replace, and the replace is atomic because the
    temp file lives on the same filesystem.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, mode) as handle:
            write(handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically replace ``path`` with ``text`` (see :func:`_atomic_write`)."""
    return _atomic_write(Path(path), "w", lambda handle: handle.write(text))


def atomic_write_bytes(path: str | Path, chunks: Iterable[bytes]) -> Path:
    """Atomically replace ``path`` with the concatenation of ``chunks``."""

    def write(handle: Any) -> None:
        for chunk in chunks:
            handle.write(chunk)

    return _atomic_write(Path(path), "wb", write)


def graph_to_dict(graph: Graph) -> dict[str, Any]:
    """A JSON-ready dictionary representation of ``graph``."""
    for node in graph.nodes():
        # bool is an int subclass, but True/False serialize as JSON
        # true/false and would load back as 1/0 — silently colliding with
        # any real 1/0 node.  Reject rather than corrupt.
        if isinstance(node, bool) or not isinstance(node, (str, int)):
            raise StorageError(
                f"node id {node!r} is not JSON-serializable (use str or int)"
            )
    return {
        "format": "repro.graph",
        "version": FORMAT_VERSION,
        "name": graph.name,
        "nodes": [{"id": node, "attrs": dict(graph.attrs(node))} for node in graph.nodes()],
        "edges": [[source, target] for source, target in graph.edges()],
    }


def graph_from_dict(payload: dict[str, Any]) -> Graph:
    """Rebuild a :class:`Graph` from :func:`graph_to_dict` output."""
    if not isinstance(payload, dict) or payload.get("format") != "repro.graph":
        raise StorageError("not a repro.graph payload")
    if payload.get("version") != FORMAT_VERSION:
        raise StorageError(f"unsupported graph format version: {payload.get('version')!r}")
    graph = Graph(name=payload.get("name", ""))
    try:
        for entry in payload["nodes"]:
            graph.add_node(entry["id"], **entry.get("attrs", {}))
        for source, target in payload["edges"]:
            graph.add_edge(source, target)
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed graph payload: {exc}") from exc
    return graph


def save_graph(graph: Graph, path: str | Path) -> Path:
    """Write ``graph`` as JSON to ``path``; returns the path written."""
    return atomic_write_text(
        Path(path), json.dumps(graph_to_dict(graph), indent=2, sort_keys=False)
    )


def load_graph(path: str | Path) -> Graph:
    """Read a JSON graph written by :func:`save_graph`."""
    source = Path(path)
    if not source.exists():
        raise StorageError(f"graph file not found: {source}")
    try:
        payload = json.loads(source.read_text())
    except json.JSONDecodeError as exc:
        raise StorageError(f"invalid JSON in {source}: {exc}") from exc
    return graph_from_dict(payload)


def save_edgelist(graph: Graph, path: str | Path) -> Path:
    """Write a tab-separated ``source<TAB>target`` edge list."""
    lines = [f"{source}\t{dest}" for source, dest in graph.edges()]
    return atomic_write_text(Path(path), "\n".join(lines) + ("\n" if lines else ""))


def load_edgelist(path: str | Path, name: str = "") -> Graph:
    """Read a tab- or whitespace-separated edge list into an attr-less graph."""
    source = Path(path)
    if not source.exists():
        raise StorageError(f"edge list not found: {source}")
    graph = Graph(name=name or source.stem)
    for lineno, raw in enumerate(source.read_text().splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise StorageError(f"{source}:{lineno}: expected 'source target', got {raw!r}")
        head, tail = parts
        if head not in graph:
            graph.add_node(head)
        if tail not in graph:
            graph.add_node(tail)
        graph.add_edge(head, tail)
    return graph
