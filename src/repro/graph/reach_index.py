"""A cached bounded-reachability index for repeated query evaluation.

Bounded simulation's dominant cost is one truncated BFS per candidate per
pattern-edge source.  Different queries over the same graph repeat most of
that work; :class:`BoundedReachIndex` memoizes BFS results up to a fixed
depth and invalidates exactly the nodes whose bounded neighbourhood an edge
update can change (the update's tail plus its ancestors within depth-1 —
the same affected-area argument the incremental module relies on).

The index is engine-owned: the engine routes every update through
:meth:`on_update`, so served results always reflect the current graph.
Mutating the graph behind the index's back is *detected*, not silently
served: the index records ``Graph.version`` at construction and after
every maintained update, and :meth:`reach` raises :class:`GraphError` on
a mismatch instead of returning stale reach sets.
"""

from __future__ import annotations

from typing import Any

from repro.errors import GraphError
from repro.graph.digraph import Graph, NodeId
from repro.graph.distance import bounded_ancestors, bounded_descendants


class BoundedReachIndex:
    """Memoized ``bounded_descendants`` up to ``max_depth``.

    >>> from repro.graph.generators import collaboration_graph
    >>> g = collaboration_graph(50, seed=1)
    >>> index = BoundedReachIndex(g, max_depth=3)
    >>> first = index.reach("p0", 2)
    >>> index.stats()["misses"]
    1
    >>> second = index.reach("p0", 2)   # served from cache
    >>> index.stats()["hits"]
    1
    """

    __slots__ = (
        "graph", "max_depth", "_cache", "_hits", "_misses", "_invalidations",
        "_graph_version",
    )

    def __init__(self, graph: Graph, max_depth: int = 4) -> None:
        if max_depth < 1:
            raise GraphError(f"max_depth must be >= 1: {max_depth}")
        self.graph = graph
        self.max_depth = max_depth
        # node -> (depth the BFS was run to, its result); a shallow entry is
        # upgraded in place when a deeper request arrives, so no query ever
        # pays for more depth than some query actually needed.
        self._cache: dict[NodeId, tuple[int, dict[NodeId, int]]] = {}
        self._hits = 0
        self._misses = 0
        self._invalidations = 0
        # Mutation counter the index has seen; reads verify it so a graph
        # mutated behind the index's back raises instead of serving stale
        # reach sets.
        self._graph_version = graph.version

    # ------------------------------------------------------------------
    def covers(self, depth: int | None) -> bool:
        """Can this index answer a reach query of the given depth?"""
        return depth is not None and depth <= self.max_depth

    def reach(
        self, node: NodeId, depth: int | None, copy: bool = True
    ) -> dict[NodeId, int]:
        """``{reached: distance}`` within ``depth`` (nonempty paths).

        Depths beyond ``max_depth`` (including unbounded) bypass the cache
        and fall back to a plain BFS.  ``copy=False`` returns the cached
        dictionary itself when possible — measurably faster for hot callers
        like the matcher, which must then treat the result as read-only.

        Raises :class:`GraphError` when the graph has been mutated without
        the index seeing the update (``Graph.version`` drift): stale reach
        sets are a silent-wrong-answer bug, so they are refused outright.
        """
        self._check_version()
        if not self.covers(depth):
            return bounded_descendants(self.graph, node, depth)
        entry = self._cache.get(node)
        if entry is None or entry[0] < depth:
            self._misses += 1
            reach = bounded_descendants(self.graph, node, depth)
            self._cache[node] = (depth, reach)
            return dict(reach) if copy else reach
        self._hits += 1
        cached_depth, reach = entry
        if depth == cached_depth:
            return dict(reach) if copy else reach
        return {n: d for n, d in reach.items() if d <= depth}

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def on_update(self, update: Any) -> int:
        """Invalidate entries an update can affect; returns how many.

        Edge updates touch the tail's bounded ancestry; attribute updates
        touch nothing (reachability is structure-only); node insertions
        touch nothing (a fresh node has no incident edges yet); node
        deletions drop the node's own entry (its edges arrive as separate
        edge updates via ``decompose``).
        """
        from repro.incremental.updates import (
            AttributeUpdate,
            EdgeDeletion,
            EdgeInsertion,
            NodeDeletion,
            NodeInsertion,
        )

        # The engine applies the primitive to the graph before notifying
        # maintainers, so the current version is the post-update one; the
        # index is consistent with it once invalidation ran.
        self._graph_version = self.graph.version
        if isinstance(update, (EdgeInsertion, EdgeDeletion)):
            return self._invalidate_around(update.source)
        if isinstance(update, NodeDeletion):
            dropped = 1 if self._cache.pop(update.node, None) is not None else 0
            self._invalidations += dropped
            return dropped
        if isinstance(update, (NodeInsertion, AttributeUpdate)):
            return 0
        raise GraphError(f"unknown update type: {update!r}")

    def _check_version(self) -> None:
        if self.graph.version != self._graph_version:
            raise GraphError(
                f"graph {self.graph.name!r} was mutated behind the reach "
                f"index's back (index saw version {self._graph_version}, "
                f"graph is at {self.graph.version}); route updates through "
                "on_update() or rebuild the index"
            )

    def _invalidate_around(self, tail: NodeId) -> int:
        """Drop ``tail`` and every node reaching it within depth-1.

        Runs on the current graph; correct for both insertion (ancestors of
        the tail are unchanged by the new edge) and deletion (paths to the
        tail through the deleted edge would revisit the tail).
        """
        doomed = [tail]
        if self.max_depth > 1 and self.graph.has_node(tail):
            doomed.extend(bounded_ancestors(self.graph, tail, self.max_depth - 1))
        dropped = 0
        for node in doomed:
            if self._cache.pop(node, None) is not None:
                dropped += 1
        self._invalidations += dropped
        return dropped

    def clear(self) -> None:
        """Drop every entry and re-sync with the graph's current version."""
        self._cache.clear()
        self._graph_version = self.graph.version

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cache)

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._cache),
            "max_depth": self.max_depth,
            "hits": self._hits,
            "misses": self._misses,
            "invalidations": self._invalidations,
            "graph_version": self._graph_version,
        }
