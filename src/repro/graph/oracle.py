"""Landmark distance oracle — label-merge reachability over frozen snapshots.

Bounded simulation's unit of work is the distance-bounded reachability test
(PAPER.md, §matching semantics).  After the frozen-snapshot layer, every
such test is still answered by *enumeration*: a truncated BFS materialises
the full d-ball of each source even when the pattern edge only needs to
check a handful of selective candidates against each other.  A
:class:`DistanceOracle` precomputes **pruned landmark labels** over the
:class:`~repro.graph.frozen.FrozenGraph` CSR buffers so that a single
bounded test ``dist(u, v) <= d`` becomes an O(|L(u)| + |L(v)|) label merge
with no traversal at all:

* every node ``u`` carries a **forward label** ``L_out(u) = {(h, dist(u,
  h))}`` and a **reverse label** ``L_in(u) = {(h, dist(h, u))}`` over a
  shared landmark universe, stored as flat ``array('q')`` CSR buffers;
* labels satisfy the 2-hop **cover property**: for every pair ``(u, v)``
  within the oracle's depth cap, some landmark on a shortest ``u -> v``
  path appears in both ``L_out(u)`` and ``L_in(v)``, so
  ``min_h dist(u,h) + dist(h,v)`` is the exact distance;
* a **landmark-pruned reachability closure** (tiny hub sets, typically a
  couple of hubs per node) answers plain ``'*'`` reachability by one
  C-speed ``frozenset`` disjointness test.

Labels are built by a **two-phase pruned BFS** (landmarks in descending
degree order):

1. *phase one* — the top ``top`` landmarks run classic sequential pruned
   landmark labeling [Akiba, Iwata & Yoshida, SIGMOD 2013] among
   themselves;
2. *phase two* — every remaining landmark runs an independent truncated
   BFS pruned **only against the fixed phase-one labels**.

Phase two is embarrassingly parallel (:meth:`ParallelExecutor.build_oracle
<repro.engine.parallel.ParallelExecutor.build_oracle>` fans the chunks out
across worker processes) and — because the prune base is fixed — the
resulting labels are *deterministic*: sequential and parallel builds
produce byte-identical label arrays.  Correctness is unconditional either
way: every label entry is a true BFS distance, and for any pair the
highest-ranked node on a shortest path is never pruned from either side
(a prune certificate would name a strictly higher-ranked node on the same
shortest path).

The oracle is exact for every bound it :meth:`covers`: all finite bounds
up to ``cap``, and ``'*'``/unbounded distances too when built uncapped
(the default).  Nonempty-path semantics are preserved — a self pair
``dist(u, u)`` is the shortest *cycle* through ``u``, answered by merging
the labels of ``u``'s successors, never by the trivial empty path.

>>> from repro.graph.digraph import Graph
>>> from repro.graph.frozen import FrozenGraph
>>> g = Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a"), ("c", "d")])
>>> oracle = DistanceOracle.build(FrozenGraph.freeze(g))
>>> frozen = FrozenGraph.freeze(g)
>>> oracle.distance(frozen.id_of("a"), frozen.id_of("d"))
3
>>> oracle.reaches(frozen.id_of("d"), frozen.id_of("a"))
False
"""

from __future__ import annotations

import time
from array import array
from typing import Any, Callable, Iterable, Sequence

from repro.errors import GraphError
from repro.graph.frozen import FrozenGraph, _own_buffer

#: Landmarks processed sequentially (phase one) before the parallel phase.
#: More top landmarks mean better pruning (smaller labels, cheaper phase
#: two) at the cost of a longer sequential prefix.
DEFAULT_TOP = 512

#: Landmarks per phase-two task when a build is fanned out across workers.
PHASE_TWO_CHUNK = 512

# Phase-two build context, installed by :func:`set_build_context` in the
# parent (fork inheritance) or a pool initializer (spawn):
# (phase-one L_out, phase-one L_in, successor sets, predecessor sets, cap).
_build_context: tuple | None = None


def set_build_context(context: tuple | None) -> None:
    """Install (or clear) the phase-two context for :func:`phase_two_chunk`."""
    global _build_context
    _build_context = context


def landmark_order(
    succ: Sequence[frozenset[int]], pred: Sequence[frozenset[int]]
) -> list[int]:
    """Landmark processing order: total degree descending, id ascending.

    High-degree hubs label (and prune) the most pairs; the id tiebreak
    makes the order — and therefore every label array — deterministic.
    """
    return sorted(range(len(succ)), key=lambda v: (-(len(succ[v]) + len(pred[v])), v))


def _phase_one(
    landmarks: Sequence[int],
    succ: Sequence[frozenset[int]],
    pred: Sequence[frozenset[int]],
    cap: int | None,
) -> tuple[list[dict[int, int]], list[dict[int, int]]]:
    """Sequential pruned landmark labeling over the top landmarks.

    Returns per-node ``{hub: dist}`` dicts (insertion order = landmark
    rank order).  Each landmark ``w`` runs one truncated BFS per
    direction; a visited node is labeled unless the labels built so far
    already certify a path of the same or shorter length through an
    earlier (higher-ranked) landmark.
    """
    n = len(succ)
    L_out: list[dict[int, int]] = [{} for _ in range(n)]
    L_in: list[dict[int, int]] = [{} for _ in range(n)]
    for w in landmarks:
        _pruned_bfs(w, succ, L_in, L_in, L_out[w], cap)
        _pruned_bfs(w, pred, L_out, L_out, L_in[w], cap)
        L_out[w][w] = 0
        L_in[w][w] = 0
    return L_out, L_in


def _pruned_bfs(
    w: int,
    adjacency: Sequence[frozenset[int]],
    write_labels: list[dict[int, int]],
    prune_labels: Sequence[dict[int, int]],
    T_src: dict[int, int],
    cap: int | None,
) -> None:
    """One truncated BFS from ``w``, labeling unpruned nodes with ``w``.

    ``prune_labels[x]`` supplies the certificates checked against
    ``T_src`` (the distances from/to ``w`` of already-processed
    landmarks); ``write_labels[x]`` receives ``{w: dist}`` entries.  The
    two coincide in phase one and differ in phase two, where pruning runs
    against the fixed phase-one labels only.
    """
    T_get = T_src.get
    dist = 1
    frontier: frozenset[int] | set[int] = adjacency[w]
    seen = set(frontier)
    seen.add(w)
    while frontier and (cap is None or dist <= cap):
        grown: set[int] = set()
        for x in frontier:
            for h, dxh in prune_labels[x].items():
                t = T_get(h)
                if t is not None and t + dxh <= dist:
                    break
            else:
                write_labels[x][w] = dist
                grown |= adjacency[x]
        dist += 1
        frontier = grown - seen
        seen |= frontier


def phase_two_chunk(landmarks: Sequence[int]) -> tuple[array, array]:
    """Label entries contributed by one chunk of phase-two landmarks.

    Runs against the installed :func:`set_build_context` (in a worker
    process or inline).  Returns two flat ``(node, landmark, dist)``
    triple arrays — forward-label entries and reverse-label entries — so
    a parallel build ships plain buffers, never label dicts.
    """
    assert _build_context is not None, "oracle build context was not installed"
    P_out, P_in, succ, pred, cap = _build_context
    out_entries = array("q")
    in_entries = array("q")
    for w in landmarks:
        _collect_bfs(w, succ, P_in, P_out[w], cap, in_entries)
        _collect_bfs(w, pred, P_out, P_in[w], cap, out_entries)
        out_entries.extend((w, w, 0))
        in_entries.extend((w, w, 0))
    return out_entries, in_entries


def _collect_bfs(
    w: int,
    adjacency: Sequence[frozenset[int]],
    prune_labels: Sequence[dict[int, int]],
    T_src: dict[int, int],
    cap: int | None,
    entries: array,
) -> None:
    """Phase-two BFS from ``w``: like :func:`_pruned_bfs` but append-only.

    Pruning consults only the fixed phase-one labels, so chunks are
    independent of each other — the foundation of both the parallel build
    and the sequential/parallel determinism guarantee.
    """
    T_get = T_src.get
    dist = 1
    frontier: frozenset[int] | set[int] = adjacency[w]
    seen = set(frontier)
    seen.add(w)
    while frontier and (cap is None or dist <= cap):
        grown: set[int] = set()
        for x in frontier:
            for h, dxh in prune_labels[x].items():
                t = T_get(h)
                if t is not None and t + dxh <= dist:
                    break
            else:
                entries.extend((x, w, dist))
                grown |= adjacency[x]
        dist += 1
        frontier = grown - seen
        seen |= frontier


def _reach_closure(
    order: Sequence[int],
    succ: Sequence[frozenset[int]],
    pred: Sequence[frozenset[int]],
) -> tuple[tuple[frozenset[int], ...], tuple[frozenset[int], ...]]:
    """Landmark-pruned reachability closure (2-hop reachability labels).

    ``R_out[v]`` holds the hubs reachable from ``v`` and ``R_in[v]`` the
    hubs that reach ``v`` (both include ``v`` itself); ``u`` reaches ``v``
    iff the sets intersect.  Pruning is aggressive — once the top hubs
    cover the dense core, later BFS runs die immediately — which is why
    these labels stay tiny (a handful of hubs per node) even on graphs
    whose *distance* structure is hub-poor.
    """
    n = len(succ)
    R_out: list[set[int]] = [set() for _ in range(n)]
    R_in: list[set[int]] = [set() for _ in range(n)]
    for w in order:
        for labels_here, adjacency, T_src in ((R_in, succ, R_out[w]), (R_out, pred, R_in[w])):
            frontier: frozenset[int] | set[int] = adjacency[w]
            seen = set(frontier)
            seen.add(w)
            while frontier:
                grown: set[int] = set()
                for x in frontier:
                    if labels_here[x].isdisjoint(T_src):
                        labels_here[x].add(w)
                        grown |= adjacency[x]
                frontier = grown - seen
                seen |= frontier
        R_out[w].add(w)
        R_in[w].add(w)
    return tuple(frozenset(s) for s in R_out), tuple(frozenset(s) for s in R_in)


def _pack_labels(
    label_dicts: Sequence[dict[int, int]], rank: Sequence[int]
) -> tuple[array, array, array]:
    """Label dicts into canonical CSR arrays (rows sorted by hub rank)."""
    offsets = array("q", [0])
    hubs = array("q")
    dists = array("q")
    for row in label_dicts:
        for hub in sorted(row, key=rank.__getitem__):
            hubs.append(hub)
            dists.append(row[hub])
        offsets.append(len(hubs))
    return offsets, hubs, dists


def _pack_reach(reach: Sequence[frozenset[int]]) -> tuple[array, array]:
    """Reach rows (frozensets) into CSR ``(offsets, hubs)`` arrays.

    Rows are written sorted so the file bytes are deterministic; set
    semantics make the order irrelevant on the way back in.
    """
    offsets = array("q", [0])
    hubs = array("q")
    for row in reach:
        hubs.extend(sorted(row))
        offsets.append(len(hubs))
    return offsets, hubs


def _unpack_reach(offsets: Any, hubs: Any) -> tuple[frozenset[int], ...]:
    """Invert :func:`_pack_reach` (accepts arrays or mmap views)."""
    flat = hubs.tolist()
    return tuple(
        frozenset(flat[offsets[index] : offsets[index + 1]])
        for index in range(len(offsets) - 1)
    )


class _LabelRows:
    """Shared row-access mixin for the full oracle and shipped slices.

    Subclasses provide the rows and a ``cap`` attribute; queries, row
    filling and coverage live here once.
    """

    __slots__ = ()

    def out_row(self, node: int) -> tuple:  # pragma: no cover - interface
        raise NotImplementedError

    def in_row(self, node: int) -> tuple:  # pragma: no cover - interface
        raise NotImplementedError

    def covers(self, bound: int | None) -> bool:
        """Can label merges answer rows for this bound exactly?

        Uncapped labels cover everything including ``'*'``; capped labels
        cover finite bounds up to the cap.
        """
        cap = self.cap
        if cap is None:
            return True
        return bound is not None and bound <= cap

    # ------------------------------------------------------------------
    # pairwise queries (shared by oracle and slice)
    # ------------------------------------------------------------------
    def distance(self, source: int, target: int) -> int | None:
        """Exact nonempty-path distance for *distinct* ids; None if none.

        Distances beyond a finite ``cap`` are reported as ``None`` — use
        :meth:`covers` to know which bounds are trustworthy.  Self pairs
        need adjacency (the shortest cycle): see :meth:`cycle_distance`.
        """
        if source == target:
            raise GraphError(
                "distance(u, u) is the shortest cycle through u; "
                "use cycle_distance(u, adjacency)"
            )
        lookup = dict(self.in_row(target))
        get = lookup.get
        best: int | None = None
        for hub, d_source_hub in self.out_row(source):
            d_hub_target = get(hub)
            if d_hub_target is not None:
                total = d_source_hub + d_hub_target
                if best is None or total < best:
                    best = total
        return best

    def cycle_distance(
        self, node: int, adjacency: Sequence[frozenset[int]], bound: int | None = None
    ) -> int | None:
        """Shortest nonempty cycle through ``node`` (<= ``bound`` if given).

        Self pairs cannot ride the plain label merge — the trivial
        ``(node, 0)`` entries would certify the empty path — so the cycle
        is taken through each successor: ``1 + dist(successor, node)``.
        """
        if node >= len(adjacency):
            return None
        successors = adjacency[node]
        if node in successors:
            return 1  # self-loop: the shortest possible cycle
        in_row = dict(self.in_row(node))
        get = in_row.get
        best: int | None = None
        for successor in successors:
            for hub, d_succ_hub in self.out_row(successor):
                d_hub_node = get(hub)
                if d_hub_node is not None:
                    total = 1 + d_succ_hub + d_hub_node
                    if best is None or total < best:
                        best = total
            if best == 2:
                break  # no self-loop (checked above): nothing shorter exists
        if best is not None and bound is not None and best > bound:
            return None
        return best

    # ------------------------------------------------------------------
    # bounded successor rows (the matcher's pairwise fill path)
    # ------------------------------------------------------------------
    def fill_rows(
        self,
        sources: Sequence[int],
        edge_data: Sequence[tuple],
        rows: dict,
        adjacency: Sequence[frozenset[int]],
    ) -> None:
        """Fill ``rows[edge][source] = {child: dist}`` by label merges.

        ``edge_data`` carries ``(edge, bound, child candidate ids)``
        triples, exactly like the enumeration kernels in
        :mod:`repro.matching.bounded`; the produced rows are byte-identical
        to theirs (the seeded differential suite asserts it).  Instead of
        materialising the d-ball of every source, each edge builds one
        ``hub -> [(child, dist)]`` bucket over the child candidates' reverse
        labels and then joins every source's forward label against it —
        candidate x candidate work, independent of ball volume.
        """
        for edge, bound, children in edge_data:
            if not self.covers(bound):
                raise GraphError(
                    f"oracle does not cover bound {bound!r} (cap {self.cap!r})"
                )
            edge_rows = rows[edge]
            bucket: dict[int, list[tuple[int, int]]] = {}
            bucket_get = bucket.get
            for child in children:
                for hub, dist in self.in_row(child):
                    if bound is not None and dist > bound:
                        continue
                    entry = bucket_get(hub)
                    if entry is None:
                        bucket[hub] = [(child, dist)]
                    else:
                        entry.append((child, dist))
            for source in sources:
                row: dict[int, int] = {}
                get = row.get
                for hub, d_source_hub in self.out_row(source):
                    if bound is not None and d_source_hub > bound:
                        continue
                    matches = bucket_get(hub)
                    if matches is None:
                        continue
                    if bound is None:
                        for child, d_hub_child in matches:
                            total = d_source_hub + d_hub_child
                            old = get(child)
                            if old is None or total < old:
                                row[child] = total
                    else:
                        remaining = bound - d_source_hub
                        for child, d_hub_child in matches:
                            if d_hub_child <= remaining:
                                total = d_source_hub + d_hub_child
                                old = get(child)
                                if old is None or total < old:
                                    row[child] = total
                if source in children:
                    # The merge certified source~source via the empty path
                    # (0-distance self hubs); nonempty-path semantics want
                    # the shortest cycle instead.
                    cycle = self.cycle_distance(source, adjacency, bound)
                    if cycle is None:
                        row.pop(source, None)
                    else:
                        row[source] = cycle
                edge_rows[source] = row


class DistanceOracle(_LabelRows):
    """Pruned landmark labels + reachability closure for one snapshot.

    Build with :meth:`build` (or in parallel through
    :meth:`ParallelExecutor.build_oracle
    <repro.engine.parallel.ParallelExecutor.build_oracle>`); the engine
    caches instances in its ``OracleCache`` keyed by graph name and
    validated against ``Graph.version``.  All node ids are the dense ints
    of the snapshot the oracle was built from; ids beyond the build-time
    node count (nodes inserted later) have empty labels, which is exactly
    right for a bare inserted node — it reaches nothing and nothing
    reaches it until an edge update (which invalidates the oracle)
    arrives.
    """

    __slots__ = (
        "name",
        "source_version",
        "cap",
        "top",
        "num_nodes",
        "num_edges",
        "build_seconds",
        "out_offsets",
        "out_hubs",
        "out_dists",
        "in_offsets",
        "in_hubs",
        "in_dists",
        "_reach_out",
        "_reach_in",
        "_reach_packed",
        "_first_label",
        "_last_label",
        "rows_filled",
        "point_queries",
        "path",
    )

    def __init__(
        self,
        name: str,
        source_version: int,
        cap: int | None,
        top: int,
        num_nodes: int,
        num_edges: int,
        build_seconds: float,
        out_labels: tuple[array, array, array],
        in_labels: tuple[array, array, array],
        reach_out: tuple[frozenset[int], ...] | None,
        reach_in: tuple[frozenset[int], ...] | None,
        first_label: Any,
        last_label: Any,
    ) -> None:
        self.name = name
        self.source_version = source_version
        self.cap = cap
        self.top = top
        self.num_nodes = num_nodes
        self.num_edges = num_edges
        self.build_seconds = build_seconds
        self.out_offsets, self.out_hubs, self.out_dists = out_labels
        self.in_offsets, self.in_hubs, self.in_dists = in_labels
        # Reach rows are frozensets in memory but CSR arrays on disk;
        # store-loaded oracles keep the packed form (``_reach_packed``,
        # set by :meth:`from_buffers`) and materialize lazily so a load
        # stays O(1) — see the ``reach_out``/``reach_in`` properties.
        self._reach_out = reach_out
        self._reach_in = reach_in
        self._reach_packed: tuple | None = None
        self._first_label = first_label
        self._last_label = last_label
        self.rows_filled = 0
        self.point_queries = 0
        # Backing snapshot file when loaded via the store (see FrozenGraph.path).
        self.path: Any = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        frozen: FrozenGraph,
        cap: int | None = None,
        top: int | None = None,
        chunk_map: Callable[..., Iterable] | None = None,
    ) -> "DistanceOracle":
        """Build labels for ``frozen``; exact up to ``cap`` (None = all).

        ``top`` bounds the sequential phase-one prefix (default
        :data:`DEFAULT_TOP`).  ``chunk_map(function, chunks)`` runs the
        independent phase-two chunks — pass a pool ``map`` to build in
        parallel; the labels are identical either way.
        """
        if cap is not None and cap < 1:
            raise GraphError(f"cap must be >= 1 or None: {cap!r}")
        start = time.perf_counter()
        succ = frozen.successor_sets()
        pred = frozen.predecessor_sets()
        n = len(succ)
        top = min(n, DEFAULT_TOP if top is None else top)
        if top < 0:
            raise GraphError(f"top must be >= 0: {top!r}")
        order = landmark_order(succ, pred)
        L_out, L_in = _phase_one(order[:top], succ, pred, cap)
        rest = order[top:]
        if rest:
            set_build_context((L_out, L_in, succ, pred, cap))
            try:
                chunks = [
                    rest[i : i + PHASE_TWO_CHUNK]
                    for i in range(0, len(rest), PHASE_TWO_CHUNK)
                ]
                runner = chunk_map if chunk_map is not None else map
                # Materialise before merging: phase-two pruning must only
                # ever see the phase-one labels (determinism + the
                # parallel build's correctness argument).
                results = list(runner(phase_two_chunk, chunks))
            finally:
                set_build_context(None)
            for out_entries, in_entries in results:
                for triples, labels in ((out_entries, L_out), (in_entries, L_in)):
                    for position in range(0, len(triples), 3):
                        labels[triples[position]][triples[position + 1]] = triples[
                            position + 2
                        ]
        rank = [0] * n
        for position, node in enumerate(order):
            rank[node] = position
        out_labels = _pack_labels(L_out, rank)
        in_labels = _pack_labels(L_in, rank)
        reach_out, reach_in = _reach_closure(order, succ, pred)
        labels = frozen.labels
        return cls(
            frozen.name,
            frozen.source_version,
            cap,
            top,
            n,
            frozen.num_edges,
            time.perf_counter() - start,
            out_labels,
            in_labels,
            reach_out,
            reach_in,
            labels[0] if labels else None,
            labels[-1] if labels else None,
        )

    # ------------------------------------------------------------------
    # coverage + validity
    # ------------------------------------------------------------------
    def compatible_with(self, frozen: FrozenGraph) -> bool:
        """Best-effort check that ``frozen`` extends the build snapshot.

        Exact for the engine's lifecycle: a snapshot of the same graph
        whose edges are untouched and whose pre-existing nodes keep their
        insertion order (attribute updates and bare node insertions — the
        updates the engine lets an oracle survive).  Like
        :meth:`FrozenGraph.matches` this is O(1) spot checking, not a
        cryptographic identity proof.
        """
        if frozen.num_nodes < self.num_nodes or frozen.num_edges != self.num_edges:
            return False
        if self.num_nodes == 0:
            return True
        labels = frozen.labels
        return (
            labels[0] == self._first_label
            and labels[self.num_nodes - 1] == self._last_label
        )

    @staticmethod
    def survives(update: Any) -> bool:
        """Whether one graph update leaves these labels exact.

        The affected-area argument: label entries are shortest-path
        distances, so only *structural* updates (edge insertions or
        deletions — including the ones a node deletion decomposes into)
        can change them.  Attribute updates touch no distances, and a
        bare node insertion adds an isolated node whose (empty) labels
        are already correct.
        """
        from repro.incremental.updates import AttributeUpdate, NodeInsertion

        return isinstance(update, (AttributeUpdate, NodeInsertion))

    # ------------------------------------------------------------------
    # reach closure (lazy when loaded from a snapshot file)
    # ------------------------------------------------------------------
    @property
    def reach_out(self) -> tuple[frozenset[int], ...]:
        if self._reach_out is None:
            offsets, hubs = self._reach_packed[0]
            self._reach_out = _unpack_reach(offsets, hubs)
        return self._reach_out

    @property
    def reach_in(self) -> tuple[frozenset[int], ...]:
        if self._reach_in is None:
            offsets, hubs = self._reach_packed[1]
            self._reach_in = _unpack_reach(offsets, hubs)
        return self._reach_in

    # ------------------------------------------------------------------
    # rows + point queries
    # ------------------------------------------------------------------
    def out_row(self, node: int) -> zip:
        """``(hub, dist(node, hub))`` pairs (empty for post-build ids)."""
        if node >= self.num_nodes:
            return zip((), ())
        start, end = self.out_offsets[node], self.out_offsets[node + 1]
        return zip(self.out_hubs[start:end], self.out_dists[start:end])

    def in_row(self, node: int) -> zip:
        """``(hub, dist(hub, node))`` pairs (empty for post-build ids)."""
        if node >= self.num_nodes:
            return zip((), ())
        start, end = self.in_offsets[node], self.in_offsets[node + 1]
        return zip(self.in_hubs[start:end], self.in_dists[start:end])

    def reaches(self, source: int, target: int) -> bool:
        """Nonempty-path reachability for *distinct* ids (O(|R|) merge)."""
        if source == target:
            raise GraphError(
                "reaches(u, u) asks for a cycle; use cycle_reaches(u, adjacency)"
            )
        self.point_queries += 1
        if source >= self.num_nodes or target >= self.num_nodes:
            return False
        return not self.reach_out[source].isdisjoint(self.reach_in[target])

    def cycle_reaches(self, node: int, adjacency: Sequence[frozenset[int]]) -> bool:
        """True iff ``node`` lies on a cycle (re-reaches itself)."""
        self.point_queries += 1
        if node >= self.num_nodes or node >= len(adjacency):
            return False
        reach_in = self.reach_in[node]
        for successor in adjacency[node]:
            if successor == node or not self.reach_out[successor].isdisjoint(reach_in):
                return True
        return False

    def within(self, source: int, target: int, bound: int | None) -> bool:
        """``dist(source, target) <= bound`` by label merge (no traversal)."""
        if bound is None:
            return self.reaches(source, target)
        if not self.covers(bound):
            raise GraphError(f"oracle does not cover bound {bound!r} (cap {self.cap!r})")
        self.point_queries += 1
        distance = self.distance(source, target)
        return distance is not None and distance <= bound

    def fill_rows(
        self,
        sources: Sequence[int],
        edge_data: Sequence[tuple],
        rows: dict,
        adjacency: Sequence[frozenset[int]],
    ) -> None:
        self.rows_filled += len(sources) * len(edge_data)
        if any(bound is None for _edge, bound, _children in edge_data):
            # Cheap reachability prefilter for '*' edges: a source whose
            # reach hubs miss every child's reach hubs has an empty row —
            # one frozenset test instead of a label join.
            edge_data = list(edge_data)
            reach_out = self.reach_out
            n = self.num_nodes
            for index, (edge, bound, children) in enumerate(edge_data):
                if bound is not None:
                    continue
                child_hubs = frozenset().union(
                    *(self.reach_in[child] for child in children if child < n)
                ) if children else frozenset()
                edge_rows = rows[edge]
                live_sources = []
                for source in sources:
                    if (
                        source < n
                        and (source in children or not reach_out[source].isdisjoint(child_hubs))
                    ):
                        live_sources.append(source)
                    else:
                        edge_rows[source] = {}
                super().fill_rows(live_sources, [(edge, bound, children)], rows, adjacency)
                edge_data[index] = None
            edge_data = [item for item in edge_data if item is not None]
            if not edge_data:
                return
        super().fill_rows(sources, edge_data, rows, adjacency)

    # ------------------------------------------------------------------
    # shipping + stats
    # ------------------------------------------------------------------
    def slice_rows(
        self,
        out_nodes: Iterable[int],
        in_nodes: Iterable[int],
        remap: dict[int, int] | None = None,
    ) -> "OracleSlice":
        """A lightweight label slice for shard shipping.

        Carries only the forward rows of ``out_nodes`` and reverse rows of
        ``in_nodes`` (re-keyed through ``remap`` — the ball sub-snapshot's
        dense ids — when given), so a worker answers its pivots' pairwise
        tests without the full label arrays.
        """
        def collect(
            nodes: Iterable[int], row_of: Callable[[int], Iterable]
        ) -> dict[int, tuple]:
            rows: dict[int, tuple] = {}
            for node in nodes:
                key = node if remap is None else remap[node]
                rows[key] = tuple(row_of(node))
            return rows

        return OracleSlice(
            self.cap,
            collect(out_nodes, self.out_row),
            collect(in_nodes, self.in_row),
        )

    def profile(self) -> dict[str, Any]:
        """The numbers the planner's cost model consumes."""
        n = max(1, self.num_nodes)
        return {
            "cap": self.cap,
            "avg_out_label": len(self.out_hubs) / n,
            "avg_in_label": len(self.in_hubs) / n,
        }

    def stats(self) -> dict[str, Any]:
        n = max(1, self.num_nodes)
        return {
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "cap": self.cap,
            "top": self.top,
            "source_version": self.source_version,
            "build_seconds": self.build_seconds,
            "label_entries_out": len(self.out_hubs),
            "label_entries_in": len(self.in_hubs),
            "avg_out_label": len(self.out_hubs) / n,
            "avg_in_label": len(self.in_hubs) / n,
            "reach_entries": self._reach_entries(),
            "rows_filled": self.rows_filled,
            "point_queries": self.point_queries,
        }

    def _reach_entries(self) -> int:
        # Counting from the packed arrays keeps stats() from forcing a
        # lazily-loaded reach closure to materialize.
        if self._reach_out is None or self._reach_in is None:
            packed_out, packed_in = self._reach_packed
            return len(packed_out[1]) + len(packed_in[1])
        return sum(len(s) for s in self._reach_out) + sum(
            len(s) for s in self._reach_in
        )

    # ------------------------------------------------------------------
    # flat-buffer codec (binary snapshot files)
    # ------------------------------------------------------------------
    def to_buffers(self) -> tuple[dict[str, Any], list[tuple[str, Any]]]:
        """JSON-ready metadata plus the flat label/reach buffers.

        Mirrors :meth:`FrozenGraph.to_buffers`: the six label CSR arrays
        travel as-is, the reach closure is packed into CSR ``(offsets,
        hubs)`` pairs (reused verbatim when this oracle was itself loaded
        from a file and never materialized its reach rows).
        """
        meta = {
            "name": self.name,
            "cap": self.cap,
            "top": self.top,
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "build_seconds": self.build_seconds,
            "first_label": self._first_label,
            "last_label": self._last_label,
        }
        if (self._reach_out is None or self._reach_in is None) and (
            self._reach_packed is not None
        ):
            (reach_out_offsets, reach_out_hubs), (
                reach_in_offsets,
                reach_in_hubs,
            ) = self._reach_packed
        else:
            reach_out_offsets, reach_out_hubs = _pack_reach(self.reach_out)
            reach_in_offsets, reach_in_hubs = _pack_reach(self.reach_in)
        buffers = [
            ("out_offsets", self.out_offsets),
            ("out_hubs", self.out_hubs),
            ("out_dists", self.out_dists),
            ("in_offsets", self.in_offsets),
            ("in_hubs", self.in_hubs),
            ("in_dists", self.in_dists),
            ("reach_out_offsets", reach_out_offsets),
            ("reach_out_hubs", reach_out_hubs),
            ("reach_in_offsets", reach_in_offsets),
            ("reach_in_hubs", reach_in_hubs),
        ]
        return meta, buffers

    @classmethod
    def from_buffers(
        cls,
        source_version: int,
        meta: dict[str, Any],
        buffers: dict[str, Any],
    ) -> "DistanceOracle":
        """Rebuild from :meth:`to_buffers` output (arrays or mmap views).

        The reach closure stays packed until first use, so loading is
        O(1) in graph size.
        """
        oracle = cls(
            meta["name"],
            source_version,
            meta["cap"],
            meta["top"],
            meta["num_nodes"],
            meta["num_edges"],
            meta["build_seconds"],
            (buffers["out_offsets"], buffers["out_hubs"], buffers["out_dists"]),
            (buffers["in_offsets"], buffers["in_hubs"], buffers["in_dists"]),
            None,
            None,
            meta["first_label"],
            meta["last_label"],
        )
        oracle._reach_packed = (
            (buffers["reach_out_offsets"], buffers["reach_out_hubs"]),
            (buffers["reach_in_offsets"], buffers["reach_in_hubs"]),
        )
        return oracle

    # ------------------------------------------------------------------
    # pickling (mmap views materialize; the mapping stays home)
    # ------------------------------------------------------------------
    def __getstate__(self) -> tuple:
        return (
            self.name,
            self.source_version,
            self.cap,
            self.top,
            self.num_nodes,
            self.num_edges,
            self.build_seconds,
            tuple(_own_buffer(buf) for buf in (self.out_offsets, self.out_hubs, self.out_dists)),
            tuple(_own_buffer(buf) for buf in (self.in_offsets, self.in_hubs, self.in_dists)),
            self.reach_out,
            self.reach_in,
            self._first_label,
            self._last_label,
            self.rows_filled,
            self.point_queries,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            self.name,
            self.source_version,
            self.cap,
            self.top,
            self.num_nodes,
            self.num_edges,
            self.build_seconds,
            out_labels,
            in_labels,
            self._reach_out,
            self._reach_in,
            self._first_label,
            self._last_label,
            self.rows_filled,
            self.point_queries,
        ) = state
        self.out_offsets, self.out_hubs, self.out_dists = out_labels
        self.in_offsets, self.in_hubs, self.in_dists = in_labels
        self._reach_packed = None
        self.path = None

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        cap = "*" if self.cap is None else self.cap
        return (
            f"<DistanceOracle{label}: {self.num_nodes} nodes, cap {cap}, "
            f"{len(self.out_hubs) + len(self.in_hubs)} label entries, "
            f"v{self.source_version}>"
        )


class OracleSlice(_LabelRows):
    """The shard-shipped subset of an oracle's labels (flat and picklable).

    Supports exactly the row-filling API the matcher kernels need; rows
    absent from the slice are empty, so a slice must carry every node its
    shard will query — the shard builder guarantees that.  ``edges``, when
    set, names the pattern edges the *parent* routed to the oracle: the
    worker-side kernel router honours that decision verbatim instead of
    re-estimating costs it has no label statistics for.
    """

    __slots__ = ("cap", "edges", "_out_rows", "_in_rows")

    def __init__(
        self,
        cap: int | None,
        out_rows: dict[int, tuple],
        in_rows: dict[int, tuple],
        edges: frozenset | None = None,
    ) -> None:
        self.cap = cap
        self.edges = edges
        self._out_rows = out_rows
        self._in_rows = in_rows

    def out_row(self, node: int) -> tuple:
        return self._out_rows.get(node, ())

    def in_row(self, node: int) -> tuple:
        return self._in_rows.get(node, ())

    def __repr__(self) -> str:
        return (
            f"<OracleSlice: {len(self._out_rows)} out rows, "
            f"{len(self._in_rows)} in rows>"
        )
