"""Distance-bounded ball decomposition for sharded pattern evaluation.

Bounded-simulation evaluation is dominated by one truncated BFS per
candidate of every pattern node that has out-edges (the successor-set
construction of :mod:`repro.matching.bounded`).  Each of those searches is
*local*: a candidate ``v`` of pattern node ``u`` only ever looks at nodes
within ``depth(u)`` hops of ``v``, where ``depth(u)`` is the largest bound
on ``u``'s out-edges.  That locality is what makes the work shardable — a
worker holding the radius-``depth(u)`` ball around ``v`` computes exactly
the successor rows the sequential matcher would.

:func:`decompose` turns a (graph, pattern, candidate sets) triple into
:class:`Shard` values:

* the *pivots* of a shard are the candidates whose successor rows the shard
  owns — every ``(pattern node, candidate)`` pair is owned by exactly one
  shard, assigned greedily to the least-loaded shard (load = 1 +
  out-degree, a cheap proxy for BFS cost) in the graph's deterministic
  node order;
* the *nodes* of a shard are a sound ball cover: one multi-source bounded
  search per (shard, pattern node) group guarantees that each pivot's full
  individual ball is contained in the shard (``tests/test_partition.py``
  asserts this property over random graphs), so no successor row can
  straddle shards undetected.

Candidate sets come from the attribute index
(:func:`repro.graph.index.candidates_from_index`) wherever the caller has
one — pivot selection is an index lookup, not a scan.

An unbounded (``*``) pattern edge makes its source's radius unbounded; the
shard's ball is then the pivots' full descendant set.  Patterns whose every
node lacks out-edges need no successor rows at all and decompose into no
shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import GraphError
from repro.graph.digraph import Graph, NodeId
from repro.graph.distance import multi_source_descendants
from repro.graph.frozen import FrozenGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.pattern.pattern import Bound, Pattern


def source_depth(pattern: "Pattern", pattern_node: str) -> "Bound":
    """BFS depth a candidate of ``pattern_node`` needs: its largest out-bound.

    Returns 0 for nodes without out-edges (no successor rows to build) and
    ``None`` when any out-edge is unbounded (the paper's ``*``).
    """
    depth = 0
    for _target, bound in pattern.out_edges(pattern_node):
        if bound is None:
            return None
        depth = max(depth, bound)
    return depth


def pattern_radius(pattern: "Pattern") -> "Bound":
    """The largest :func:`source_depth` over the whole pattern.

    This is the ball radius after which *any* pivot's successor rows are
    fully determined; ``None`` if any edge is unbounded.

    >>> from repro.datasets.paper_example import paper_pattern
    >>> pattern_radius(paper_pattern())
    3
    """
    radius = 0
    for node in pattern.nodes():
        depth = source_depth(pattern, node)
        if depth is None:
            return None
        radius = max(radius, depth)
    return radius


@dataclass(frozen=True)
class Shard:
    """One unit of sharded evaluation work.

    Attributes
    ----------
    index:
        Position of the shard in its decomposition (0-based, contiguous).
    pivots:
        ``pattern node -> tuple of owned candidates``; the successor rows
        this shard is responsible for computing.
    depths:
        ``pattern node -> BFS depth`` (:func:`source_depth`) for every
        pattern node with pivots in this shard.
    nodes:
        The ball cover: every pivot's full radius-``depths[u]`` ball is a
        subset, so a BFS inside :meth:`subgraph` equals a BFS in the full
        graph.
    """

    index: int
    pivots: Mapping[str, tuple[NodeId, ...]]
    depths: Mapping[str, "Bound"]
    nodes: frozenset[NodeId]

    @property
    def num_pivots(self) -> int:
        return sum(len(vs) for vs in self.pivots.values())

    def subgraph(self, graph: Graph) -> Graph:
        """The induced ball subgraph this shard's worker evaluates on."""
        return graph.subgraph(self.nodes, name=f"{graph.name}#shard{self.index}")

    def __repr__(self) -> str:
        return (
            f"<Shard {self.index}: {self.num_pivots} pivots, "
            f"{len(self.nodes)} ball nodes>"
        )


def decompose(
    graph: Graph,
    pattern: "Pattern",
    candidates: Mapping[str, set[NodeId]],
    num_shards: int,
    frozen: FrozenGraph | None = None,
) -> list[Shard]:
    """Split successor-row construction into at most ``num_shards`` shards.

    ``candidates`` maps every pattern node to its predicate-satisfying data
    nodes (typically from
    :func:`~repro.graph.index.candidates_from_index`).  Every
    ``(pattern node, candidate)`` pair for pattern nodes *with out-edges*
    becomes a pivot of exactly one shard; shards never share pivots but
    their ball covers may overlap.  Empty shards are dropped, so fewer than
    ``num_shards`` may come back; the result is deterministic for a given
    graph (node insertion order decides ties).

    ``frozen`` (a current :class:`~repro.graph.frozen.FrozenGraph` of
    ``graph``) runs the multi-source ball searches over CSR adjacency sets
    instead of the dict graph — identical shards, C-speed frontier algebra.

    >>> from repro.datasets.paper_example import paper_graph, paper_pattern
    >>> from repro.matching.simulation import simulation_candidates
    >>> graph, pattern = paper_graph(), paper_pattern()
    >>> shards = decompose(graph, pattern, simulation_candidates(graph, pattern), 2)
    >>> [shard.num_pivots for shard in shards]
    [4, 3]
    >>> sorted(set().union(*[set(shard.pivots) for shard in shards]))
    ['BA', 'SA', 'SD']
    """
    if num_shards < 1:
        raise GraphError(f"num_shards must be >= 1 (got {num_shards})")
    pattern.validate()
    if frozen is not None and not frozen.matches(graph):
        raise GraphError(
            f"stale frozen snapshot: {frozen!r} does not match "
            f"graph version {graph.version}"
        )
    sources = [u for u in pattern.nodes() if source_depth(pattern, u) != 0]
    missing = [u for u in sources if u not in candidates]
    if missing:
        raise GraphError(f"candidates missing pattern nodes: {missing}")

    # Rank nodes by insertion order once so pivot assignment is
    # deterministic regardless of hashing, without paying a full-graph
    # scan per pattern source node.  A snapshot's label order *is* the
    # graph's insertion order, so both substrates rank identically.
    if frozen is not None:
        order = frozen.ids()
        degree_of = frozen.out_degree
    else:
        order = {v: rank for rank, v in enumerate(graph.nodes())}
        degree_of = graph.out_degree
    loads = [0] * num_shards
    assigned: list[dict[str, list[NodeId]]] = [{} for _ in range(num_shards)]
    for u in sources:
        cand_u = candidates[u]
        for v in sorted(cand_u, key=order.__getitem__):
            lightest = min(range(num_shards), key=loads.__getitem__)
            assigned[lightest].setdefault(u, []).append(v)
            loads[lightest] += 1 + degree_of(v)

    shards: list[Shard] = []
    for pivots_by_node in assigned:
        if not pivots_by_node:
            continue
        ball: set[NodeId] = set()
        depths: dict[str, "Bound"] = {}
        # multi_source_descendants dispatches to the frozen kernel itself.
        substrate = frozen if frozen is not None else graph
        for u, pivots in pivots_by_node.items():
            depths[u] = source_depth(pattern, u)
            ball.update(multi_source_descendants(substrate, pivots, depths[u]))
        shards.append(
            Shard(
                index=len(shards),
                pivots={u: tuple(vs) for u, vs in pivots_by_node.items()},
                depths=depths,
                nodes=frozenset(ball),
            )
        )
    return shards
