"""The crash-at-every-fault-point recovery sweep.

The durability claim of :mod:`repro.server.wal` is not "the happy path
persists" but "**no** kill point yields a torn state".  This module makes
that claim executable: it runs one deterministic publish scenario, kills
the process (via :class:`~repro.testing.faults.InjectedCrash`) at every
registered fault point × every hit of that point the scenario reaches,
recovers from disk into a fresh registry, and asserts the recovered
graph is *batch-atomic*:

* it equals one of the twin-replay prefix states ``S_0 .. S_n`` (the
  states a never-crashed process moves through, batch by batch) — never
  a torn intra-batch prefix;
* its prefix index covers every batch the crashed process acknowledged
  (write-ahead: an acked batch survives any later crash);
* a subsequent mixed read/write run over the recovered registry serves
  every read from the epoch of the latest publish — zero stale reads.

The sweep is deterministic end to end: the scenario derives everything
from ``seed``, and *crash at hit k of point p* names one reproducible
execution (see :mod:`repro.testing.faults`).

Scenario shape: tiny WAL segments force rotation/seal on nearly every
append, ``fsync="always"`` makes the fsync point fire per batch, and an
*inline* checkpointer (no background thread) hits the checkpoint points
on the publish path itself — so all eleven registered points fire.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.engine.storage import GraphStore
from repro.errors import ReproError
from repro.graph.digraph import Graph
from repro.graph.io import graph_to_dict
from repro.incremental.updates import decompose
from repro.server.registry import SnapshotRegistry
from repro.server.wal import Checkpointer, WriteAheadLog
from repro.server.wire import decode_updates
from repro.testing.faults import (
    FAULT_POINTS,
    FaultSpec,
    InjectedCrash,
    arm_faults,
    disarm_faults,
    fault_stats,
)

GRAPH_NAME = "sweep"


def base_graph(nodes: int = 6) -> Graph:
    """The deterministic seed graph every sweep run starts from."""
    graph = Graph(GRAPH_NAME)
    for index in range(nodes):
        graph.add_node(f"n{index}", kind="seed", index=index)
    for index in range(nodes - 1):
        graph.add_edge(f"n{index}", f"n{index + 1}")
    return graph


def scenario_batches(count: int = 6, nodes: int = 6) -> list[list[dict[str, Any]]]:
    """``count`` wire-format update batches, one deliberately invalid.

    Batch ``count // 2`` re-inserts an existing edge and fails validation
    mid-batch at publish time; replay must skip it identically (the
    deterministic-refailure contract) — the sweep exercises the failed-
    batch path at every kill point, not just the happy one.
    """
    batches: list[list[dict[str, Any]]] = []
    for index in range(count):
        if index == count // 2:
            batches.append(
                [
                    {"op": "add-node", "node": f"torn{index}", "attrs": {}},
                    {"op": "add-edge", "source": "n0", "target": "n1"},  # dup
                ]
            )
            continue
        node = f"m{index}"
        batches.append(
            [
                {"op": "add-node", "node": node, "attrs": {"kind": "update"}},
                {"op": "add-edge", "source": f"n{index % nodes}", "target": node},
                {"op": "set-attr", "node": node, "attr": "round", "value": index},
            ]
        )
    return batches


def twin_states(nodes: int, batches: list[list[dict[str, Any]]]) -> list[Graph]:
    """``S_0 .. S_n``: the never-crashed replay, one state per batch.

    An invalid batch contributes its predecessor state unchanged (it is
    all-or-nothing rejected), mirroring both live publish and recovery.
    """
    states = [base_graph(nodes)]
    for batch in batches:
        scratch = states[-1].copy(name=GRAPH_NAME)
        try:
            for update in decode_updates({"updates": batch}):
                for primitive in decompose(scratch, update):
                    primitive.apply(scratch)
        except ReproError:
            states.append(states[-1])
        else:
            states.append(scratch)
    return states


def build_stack(
    root: Path, nodes: int = 6
) -> tuple[SnapshotRegistry, WriteAheadLog, Checkpointer]:
    """A WAL-backed registry over ``root`` with sweep-friendly knobs."""
    store = GraphStore(root / "store")
    wal = WriteAheadLog(
        root / "wal",
        fsync="always",  # the fsync point must fire every batch
        segment_bytes=512,  # rotate + seal on nearly every append
    )
    registry = SnapshotRegistry(store=store, wal=wal)
    checkpointer = Checkpointer(
        registry, wal, store, every_batches=2, background=False
    )
    registry.attach_checkpointer(checkpointer)
    return registry, wal, checkpointer


def run_scenario(
    root: Path,
    batches: list[list[dict[str, Any]]],
    nodes: int = 6,
    arm: dict[str, FaultSpec] | None = None,
) -> tuple[int, bool]:
    """Register + publish every batch; returns ``(processed, crashed)``.

    A batch counts as processed when ``publish`` returned normally or
    failed validation (:class:`ReproError`) — both outcomes are final
    acknowledgements.  An :class:`InjectedCrash` stops the scenario on
    the spot (the simulated process death) and reports ``crashed=True``
    with the progress made *before* the interrupted batch.  Faults arm
    only after registration (registration is acknowledged setup; the
    sweep targets the publish/checkpoint phase).
    """
    registry, wal, _checkpointer = build_stack(root, nodes=nodes)
    disarm_faults()
    registry.register(GRAPH_NAME, base_graph(nodes))
    if arm is not None:
        arm_faults(arm)
    processed = 0
    crashed = False
    try:
        for batch in batches:
            try:
                registry.publish(GRAPH_NAME, decode_updates({"updates": batch}))
            except ReproError:
                pass
            except InjectedCrash:
                crashed = True
                break
            processed += 1
    finally:
        # A real dead process holds no locks and flushes nothing extra;
        # the WAL file handle simply drops.  Closing the log here would
        # run the seal path the crash was supposed to prevent, so only a
        # run that completed un-crashed closes cleanly.  The caller owns
        # disarming (it reads the hit counters first).
        if not crashed and arm is None:
            wal.close()
    return processed, crashed


def recover_stack(root: Path, nodes: int = 6) -> tuple[SnapshotRegistry, WriteAheadLog]:
    """What a restarted process does: open the WAL, replay, serve."""
    store = GraphStore(root / "store")
    wal = WriteAheadLog(root / "wal", fsync="always", segment_bytes=512)
    registry = SnapshotRegistry(store=store, wal=wal)
    registry.recover()
    return registry, wal


def mixed_run(registry: SnapshotRegistry, rounds: int = 3) -> None:
    """E18-style read/write interleaving; every read must be fresh.

    Each round publishes a sentinel batch and immediately pins: the
    pinned epoch must serve the sentinel (no stale epoch) and versions
    must be strictly monotonic across rounds.
    """
    last_version = -1
    for round_index in range(rounds):
        sentinel = f"sentinel{round_index}"
        registry.publish(
            GRAPH_NAME,
            decode_updates(
                {
                    "updates": [
                        {"op": "add-node", "node": sentinel, "attrs": {}},
                        {"op": "add-edge", "source": "n0", "target": sentinel},
                    ]
                }
            ),
        )
        with registry.pin(GRAPH_NAME) as epoch:
            if not epoch.graph.has_node(sentinel):
                raise AssertionError(
                    f"stale read: round {round_index} pin does not see "
                    f"{sentinel!r} (epoch {epoch.epoch_id})"
                )
            if epoch.graph.version <= last_version:
                raise AssertionError(
                    f"stale read: version regressed {last_version} -> "
                    f"{epoch.graph.version}"
                )
            last_version = epoch.graph.version


@dataclass
class SweepReport:
    """What :func:`run_crash_sweep` proved, per kill point and overall."""

    runs: int = 0
    crashes: int = 0
    #: point name -> how many distinct kill sites (hits) were exercised.
    kill_sites: dict[str, int] = field(default_factory=dict)
    #: (point, hit) -> index of the twin prefix state recovery produced.
    recovered_prefix: dict[tuple[str, int], int] = field(default_factory=dict)

    def fired_points(self) -> set[str]:
        return {point for point, hits in self.kill_sites.items() if hits > 0}


def run_crash_sweep(
    batch_count: int = 6, nodes: int = 6, max_hits_per_point: int | None = None
) -> SweepReport:
    """Crash at every (point, hit) the scenario reaches; verify recovery.

    ``max_hits_per_point`` caps the kill sites per fault point (the CI
    smoke uses a small cap; ``None`` sweeps every hit).  Raises
    ``AssertionError`` on the first torn or lossy recovery.
    """
    batches = scenario_batches(batch_count, nodes=nodes)
    states = twin_states(nodes, batches)
    report = SweepReport()

    # Dry run: how many times does each point fire in a full scenario?
    dry_root = Path(tempfile.mkdtemp(prefix="sweep-dry-"))
    try:
        arm_faults({})  # reset counters; nothing armed
        run_scenario(dry_root, batches, nodes=nodes, arm={})
        hit_counts = dict(fault_stats()["hits"])
    finally:
        disarm_faults()
        shutil.rmtree(dry_root, ignore_errors=True)
    missing = FAULT_POINTS - set(hit_counts)
    if missing:
        raise AssertionError(
            f"sweep scenario never reaches fault points: {sorted(missing)}"
        )

    for point in sorted(FAULT_POINTS):
        hits = hit_counts[point]
        if max_hits_per_point is not None:
            hits = min(hits, max_hits_per_point)
        report.kill_sites[point] = hits
        for hit in range(1, hits + 1):
            root = Path(tempfile.mkdtemp(prefix=f"sweep-{point.replace('.', '-')}-"))
            try:
                processed, crashed = run_scenario(
                    root,
                    batches,
                    nodes=nodes,
                    arm={point: FaultSpec(action="crash", after=hit)},
                )
                report.runs += 1
                report.crashes += int(crashed)

                registry, wal = recover_stack(root, nodes=nodes)
                recovered = registry.current_epoch(GRAPH_NAME).graph
                prefix = _match_prefix(recovered, states, point, hit)
                if prefix < processed:
                    raise AssertionError(
                        f"lost acknowledged batches at {point!r} hit {hit}: "
                        f"{processed} acked, recovery reached prefix {prefix}"
                    )
                report.recovered_prefix[(point, hit)] = prefix
                mixed_run(registry)
                wal.close()
            finally:
                disarm_faults()
                shutil.rmtree(root, ignore_errors=True)
    return report


def canonical_form(graph: Graph) -> str:
    """The canonical serialized form of a graph's *content*.

    ``Graph.version`` counts mutation history, which ``copy()`` / JSON
    round trips legitimately collapse (a ``set-attr`` on a live graph is
    one extra bump that a rebuilt copy folds into ``add_node``), so two
    states with identical content can differ in raw version.  Byte
    identity of this form is the invariant recovery must preserve.
    """
    payload = graph_to_dict(graph)
    payload["nodes"].sort(key=lambda entry: str(entry["id"]))
    payload["edges"].sort(key=lambda pair: (str(pair[0]), str(pair[1])))
    return json.dumps(payload, sort_keys=True)


def _match_prefix(
    recovered: Graph, states: list[Graph], point: str, hit: int
) -> int:
    """The twin prefix index ``recovered`` equals, else AssertionError.

    Scans highest-first: a rejected batch leaves two adjacent twin
    states content-identical, and the durability assertion (`prefix >=
    acked`) must credit the furthest state the content covers.
    """
    form = canonical_form(recovered)
    for index in range(len(states) - 1, -1, -1):
        if form == canonical_form(states[index]):
            return index
    raise AssertionError(
        f"torn state after crash at {point!r} hit {hit}: recovered graph "
        f"({recovered.num_nodes} nodes / {recovered.num_edges} edges, "
        f"v{recovered.version}) matches no batch-atomic prefix state"
    )
