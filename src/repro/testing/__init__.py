"""Deterministic test instrumentation shipped with the library.

:mod:`repro.testing.faults` is the fault-injection subsystem: named
fault points compiled into the durability-critical paths (WAL append,
fsync, epoch publish, checkpointing), armed from config or environment,
inert by default.  :mod:`repro.testing.chaos` drives the
crash-at-every-fault-point recovery sweep built on top of it.

The package lives under ``src`` (not ``tests/``) on purpose: fault
points are *production code* — the sweep can only prove crash-safety of
the code that actually ships — and operators can arm them in a staging
deployment via ``REPRO_FAULTS`` to rehearse recovery.
"""

from repro.testing.faults import (
    FAULT_POINTS,
    FaultError,
    FaultSpec,
    InjectedCrash,
    armed,
    arm_faults,
    disarm_faults,
    fault_point,
    fault_stats,
    install_from_env,
)

__all__ = [
    "FAULT_POINTS",
    "FaultError",
    "FaultSpec",
    "InjectedCrash",
    "armed",
    "arm_faults",
    "disarm_faults",
    "fault_point",
    "fault_stats",
    "install_from_env",
]
