"""Deterministic fault injection: named points, armed on demand.

Durability code is only as trustworthy as the crashes it has survived.
This module compiles **fault points** — named, registered call sites —
into the write-ahead/publish/checkpoint paths::

    fault_point("wal.fsync")        # in WriteAheadLog, before fsync
    fault_point("registry.apply")   # between primitives of a batch

Disarmed (the default), a fault point is a set lookup and a counter
bump.  Armed — programmatically via :func:`arm_faults` / :func:`armed`
or from the ``REPRO_FAULTS`` environment variable — the point performs
its configured action on exactly the configured hit, which is what makes
the crash sweep deterministic: *crash at hit k of point p* names one
reproducible execution.

Actions:

* ``crash`` — raise :class:`InjectedCrash`.  It derives from
  ``BaseException`` so no ``except Exception`` recovery handler on the
  way out can accidentally swallow the simulated process death.
* ``storage-error`` — raise :class:`~repro.errors.StorageError`, the
  shape of a failed snapshot write (degradation paths).
* ``memory-error`` — raise ``MemoryError``, the shape of an epoch
  rebuild blowing the heap (degradation paths).

Every name passed to :func:`fault_point` must appear in
:data:`FAULT_POINTS`; an unknown name raises :class:`FaultError` at the
call site *and* is flagged statically by the ``fault-point-registered``
repro-lint rule, so the sweep can enumerate every injection site from
the registry alone and can never silently miss one.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.errors import FaultError, StorageError

#: The central registry: every fault point compiled into the library.
#: The crash sweep iterates this set; the ``fault-point-registered``
#: lint rule rejects any ``fault_point("...")`` literal not listed here.
FAULT_POINTS = frozenset(
    {
        # write-ahead log (repro.server.wal)
        "wal.append",          # frame buffered, before flush to the OS
        "wal.fsync",           # before fdatasync/fsync of the segment
        "wal.rotate",          # sealed segment closed, next not yet open
        "wal.seal",            # before the seal record of a segment
        "wal.open-segment",    # segment created + header written, no records yet
        # epoch publishing (repro.server.registry)
        "registry.apply",      # between primitives applying to scratch
        "registry.publish",    # master adopted, epoch not yet built
        "registry.rebuild",    # inside the epoch build (freeze/oracle)
        # checkpointing (repro.server.wal.Checkpointer)
        "checkpoint.snapshot", # snapshot artifacts persisted, meta not
        "checkpoint.meta",     # checkpoint meta written, not truncated
        "checkpoint.truncate", # before sealed segments are deleted
    }
)

_ACTIONS = ("crash", "storage-error", "memory-error")

#: Environment variable holding an arming spec, e.g.
#: ``REPRO_FAULTS="wal.fsync=crash@2,registry.rebuild=storage-error"``.
ENV_VAR = "REPRO_FAULTS"


class InjectedCrash(BaseException):
    """A simulated process death raised by an armed ``crash`` fault.

    Deliberately **not** a :class:`~repro.errors.ReproError` (nor even an
    ``Exception``): recovery code legitimately catches broad exception
    classes, and a simulated crash that such a handler absorbs would turn
    the sweep into a test of the handler instead of a test of recovery.
    """

    def __init__(self, point: str, hit: int) -> None:
        super().__init__(f"injected crash at fault point {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


@dataclass(frozen=True)
class FaultSpec:
    """How one armed fault point behaves.

    ``after`` is the 1-based hit number that triggers the action;
    ``count`` is how many consecutive hits (starting there) trigger it —
    the default of 1 fires exactly once, ``count=None`` keeps firing on
    every hit from ``after`` on (degradation soak tests).
    """

    action: str = "crash"
    after: int = 1
    count: int | None = 1

    def validate(self) -> "FaultSpec":
        if self.action not in _ACTIONS:
            raise FaultError(
                f"unknown fault action {self.action!r} (one of {', '.join(_ACTIONS)})"
            )
        if self.after < 1:
            raise FaultError(f"fault 'after' must be >= 1: {self.after}")
        if self.count is not None and self.count < 1:
            raise FaultError(f"fault 'count' must be >= 1 or None: {self.count}")
        return self

    def fires_on(self, hit: int) -> bool:
        if hit < self.after:
            return False
        if self.count is None:
            return True
        return hit < self.after + self.count


class _FaultState:
    """Process-global arming table + hit counters (thread-safe)."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.armed: dict[str, FaultSpec] = {}
        self.hits: dict[str, int] = {}
        self.fired: dict[str, int] = {}


_STATE = _FaultState()


def fault_point(name: str) -> None:
    """One injection site; a no-op unless ``name`` is armed.

    Counts the hit either way (the sweep's dry run uses the counters to
    learn how many kill points a scenario exposes), then performs the
    armed action when the spec's hit window covers this hit.
    """
    if name not in FAULT_POINTS:
        raise FaultError(
            f"fault point {name!r} is not in the central registry "
            f"(repro.testing.faults.FAULT_POINTS)"
        )
    with _STATE.lock:
        hit = _STATE.hits.get(name, 0) + 1
        _STATE.hits[name] = hit
        spec = _STATE.armed.get(name)
        fires = spec is not None and spec.fires_on(hit)
        if fires:
            _STATE.fired[name] = _STATE.fired.get(name, 0) + 1
    if not fires:
        return
    assert spec is not None
    if spec.action == "crash":
        raise InjectedCrash(name, hit)
    if spec.action == "storage-error":
        raise StorageError(f"injected storage fault at {name!r} (hit {hit})")
    raise MemoryError(f"injected memory fault at {name!r} (hit {hit})")


def arm_faults(specs: Mapping[str, FaultSpec]) -> None:
    """Replace the arming table (and reset hit counters) atomically."""
    checked: dict[str, FaultSpec] = {}
    for name, spec in specs.items():
        if name not in FAULT_POINTS:
            raise FaultError(f"cannot arm unknown fault point {name!r}")
        checked[name] = spec.validate()
    with _STATE.lock:
        _STATE.armed = checked
        _STATE.hits = {}
        _STATE.fired = {}


def disarm_faults() -> None:
    """Disarm everything and clear the counters (test teardown)."""
    arm_faults({})


@contextmanager
def armed(
    name: str, action: str = "crash", after: int = 1, count: int | None = 1
) -> Iterator[FaultSpec]:
    """``with armed("wal.fsync", after=2):`` — arm one point, then disarm."""
    spec = FaultSpec(action=action, after=after, count=count)
    arm_faults({name: spec})
    try:
        yield spec
    finally:
        disarm_faults()


def fault_stats() -> dict[str, dict[str, int]]:
    """Hit/fire counters since the last (dis)arm — observability + sweeps."""
    with _STATE.lock:
        return {
            "hits": dict(_STATE.hits),
            "fired": dict(_STATE.fired),
            "armed": {name: spec.after for name, spec in _STATE.armed.items()},
        }


def parse_fault_env(value: str) -> dict[str, FaultSpec]:
    """``"wal.fsync=crash@2,registry.rebuild=storage-error"`` → specs.

    Grammar per entry: ``<point>=<action>[@<after>]``.  Raises
    :class:`FaultError` on unknown points/actions or malformed entries.
    """
    specs: dict[str, FaultSpec] = {}
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        point, eq, rest = entry.partition("=")
        if not eq or not rest:
            raise FaultError(f"malformed fault spec {entry!r}; expected point=action[@N]")
        action, at, after_text = rest.partition("@")
        after = 1
        if at:
            try:
                after = int(after_text)
            except ValueError:
                raise FaultError(
                    f"malformed fault hit number {after_text!r} in {entry!r}"
                ) from None
        specs[point.strip()] = FaultSpec(action=action.strip(), after=after)
    return specs


def install_from_env(environ: Mapping[str, str] | None = None) -> bool:
    """Arm from ``$REPRO_FAULTS`` if set; returns whether anything armed."""
    value = (environ if environ is not None else os.environ).get(ENV_VAR, "")
    if not value.strip():
        return False
    arm_faults(parse_fault_env(value))
    return True
