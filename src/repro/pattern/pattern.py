"""Pattern queries: labelled nodes with search conditions, bounded edges.

A :class:`Pattern` is the query object of the paper's Fig. 1(a): a small
directed graph whose nodes carry search-condition predicates and whose edges
carry length bounds (``1`` = plain simulation edge, ``k`` = "a collaboration
chain no longer than k", ``None`` = unbounded ``*``).  One node may be marked
as the *output node* — the one whose matches are ranked and returned to the
user as experts.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from repro.errors import PatternError
from repro.pattern.predicates import (
    AlwaysTrue,
    Predicate,
    format_predicate,
    parse_conjunction,
    predicate_from_dict,
)

Bound = int | None  # None == the paper's '*': any nonempty path length


class Pattern:
    """A bounded-simulation pattern query.

    >>> q = Pattern("team")
    >>> q.add_node("SA", 'field == "SA", experience >= 5', output=True)
    >>> q.add_node("SD", 'field == "SD", experience >= 2')
    >>> q.add_edge("SA", "SD", bound=2)
    >>> q.output_node
    'SA'
    >>> q.bound("SA", "SD")
    2
    """

    __slots__ = ("name", "_predicates", "_succ", "_pred", "_output")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._predicates: dict[str, Predicate] = {}
        self._succ: dict[str, dict[str, Bound]] = {}
        self._pred: dict[str, dict[str, Bound]] = {}
        self._output: str | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        node: str,
        condition: Predicate | str | None = None,
        output: bool = False,
    ) -> None:
        """Add a pattern node with a search condition.

        ``condition`` may be a :class:`Predicate`, the text syntax
        (``'field == "SA", experience >= 5'``) or ``None`` (no condition).
        """
        if not isinstance(node, str) or not node:
            raise PatternError(f"pattern node id must be a non-empty string: {node!r}")
        if node in self._predicates:
            raise PatternError(f"duplicate pattern node: {node!r}")
        if condition is None:
            predicate: Predicate = AlwaysTrue()
        elif isinstance(condition, str):
            predicate = parse_conjunction(condition)
        elif isinstance(condition, Predicate):
            predicate = condition
        else:
            raise PatternError(f"bad condition for {node!r}: {condition!r}")
        self._predicates[node] = predicate
        self._succ[node] = {}
        self._pred[node] = {}
        if output:
            self.set_output(node)

    def add_edge(self, source: str, target: str, bound: Bound = 1) -> None:
        """Add pattern edge ``source -> target`` with a length bound.

        ``bound=None`` is the paper's ``*`` (reachability); integers must be
        at least 1.  At most one edge per ordered pair.
        """
        if source not in self._predicates:
            raise PatternError(f"unknown pattern node: {source!r}")
        if target not in self._predicates:
            raise PatternError(f"unknown pattern node: {target!r}")
        if bound is not None and (not isinstance(bound, int) or bound < 1):
            raise PatternError(f"bound must be a positive int or None: {bound!r}")
        if target in self._succ[source]:
            raise PatternError(f"duplicate pattern edge: {source!r} -> {target!r}")
        self._succ[source][target] = bound
        self._pred[target][source] = bound

    def set_output(self, node: str) -> None:
        """Mark ``node`` as the output node (the ``*`` node of Fig. 1(a))."""
        if node not in self._predicates:
            raise PatternError(f"unknown pattern node: {node!r}")
        self._output = node

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def output_node(self) -> str | None:
        return self._output

    @property
    def num_nodes(self) -> int:
        return len(self._predicates)

    @property
    def num_edges(self) -> int:
        return sum(len(targets) for targets in self._succ.values())

    @property
    def size(self) -> int:
        """``|Q|`` in the paper's sense: nodes plus edges."""
        return self.num_nodes + self.num_edges

    def __contains__(self, node: object) -> bool:
        return node in self._predicates

    def nodes(self) -> Iterator[str]:
        return iter(self._predicates)

    def edges(self) -> Iterator[tuple[str, str, Bound]]:
        """Iterate ``(source, target, bound)`` triples."""
        for source, targets in self._succ.items():
            for target, bound in targets.items():
                yield (source, target, bound)

    def predicate(self, node: str) -> Predicate:
        try:
            return self._predicates[node]
        except KeyError:
            raise PatternError(f"unknown pattern node: {node!r}") from None

    def bound(self, source: str, target: str) -> Bound:
        try:
            return self._succ[source][target]
        except KeyError:
            raise PatternError(f"no such pattern edge: {source!r} -> {target!r}") from None

    def out_edges(self, node: str) -> Iterator[tuple[str, Bound]]:
        """``(target, bound)`` pairs for edges leaving ``node``."""
        if node not in self._succ:
            raise PatternError(f"unknown pattern node: {node!r}")
        return iter(self._succ[node].items())

    def in_edges(self, node: str) -> Iterator[tuple[str, Bound]]:
        """``(source, bound)`` pairs for edges entering ``node``."""
        if node not in self._pred:
            raise PatternError(f"unknown pattern node: {node!r}")
        return iter(self._pred[node].items())

    @property
    def is_simulation_pattern(self) -> bool:
        """True iff every bound is 1 — plain graph simulation applies."""
        return all(bound == 1 for _, _, bound in self.edges())

    @property
    def max_bound(self) -> Bound:
        """The largest finite bound, or None if any edge is unbounded.

        Patterns without edges report 1 (a harmless BFS depth).
        """
        largest = 1
        for _, _, bound in self.edges():
            if bound is None:
                return None
            largest = max(largest, bound)
        return largest

    def referenced_attrs(self) -> frozenset[str]:
        """All attribute names read by any node's search condition."""
        out: frozenset[str] = frozenset()
        for predicate in self._predicates.values():
            out |= predicate.attrs
        return out

    def validate(self, require_output: bool = False) -> None:
        """Raise :class:`PatternError` if the pattern is unusable."""
        if not self._predicates:
            raise PatternError("pattern has no nodes")
        if require_output and self._output is None:
            raise PatternError("pattern has no output node")

    # ------------------------------------------------------------------
    # identity / serialization
    # ------------------------------------------------------------------
    def canonical_key(self) -> tuple:
        """A hashable structural identity used as the cache key.

        Node insertion order is irrelevant: two patterns with the same
        nodes, conditions, edges, bounds and output node get equal keys.
        """
        nodes = tuple(
            (node, self._predicates[node].key()) for node in sorted(self._predicates)
        )
        edges = tuple(
            sorted((source, target, -1 if bound is None else bound)
                   for source, target, bound in self.edges())
        )
        return ("pattern", nodes, edges, self._output)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Pattern):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro.pattern",
            "version": 1,
            "name": self.name,
            "nodes": [
                {"id": node, "condition": predicate.to_dict()}
                for node, predicate in self._predicates.items()
            ],
            "edges": [
                {"source": source, "target": target, "bound": bound}
                for source, target, bound in self.edges()
            ],
            "output": self._output,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Pattern":
        if not isinstance(payload, Mapping) or payload.get("format") != "repro.pattern":
            raise PatternError("not a repro.pattern payload")
        pattern = cls(name=payload.get("name", ""))
        try:
            for entry in payload["nodes"]:
                pattern.add_node(entry["id"], predicate_from_dict(entry["condition"]))
            for entry in payload["edges"]:
                pattern.add_edge(entry["source"], entry["target"], entry.get("bound", 1))
        except (KeyError, TypeError) as exc:
            raise PatternError(f"malformed pattern payload: {exc}") from exc
        output = payload.get("output")
        if output is not None:
            pattern.set_output(output)
        return pattern

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Pattern{label}: {self.num_nodes} nodes, {self.num_edges} edges, "
            f"output={self._output!r}>"
        )

    def describe(self) -> str:
        """A multi-line human-readable description (used by the CLI)."""
        lines = [f"pattern {self.name or '(unnamed)'}"]
        for node, predicate in self._predicates.items():
            star = "*" if node == self._output else ""
            lines.append(f"  node {node}{star}: {format_predicate(predicate)}")
        for source, target, bound in self.edges():
            label = "*" if bound is None else str(bound)
            lines.append(f"  edge {source} -> {target} : {label}")
        return "\n".join(lines)
