"""Fluent builder — the programmatic analogue of the GUI's Pattern Builder.

The demo's Pattern Builder panel (Fig. 4) lets users click together query
nodes, search conditions, bounds and the output node.  This module provides
the same workflow as a chainable API:

>>> from repro.pattern.builder import PatternBuilder
>>> q = (
...     PatternBuilder("team")
...     .node("SA", "experience >= 5", field="SA", output=True)
...     .node("SD", field="SD")
...     .node("ST", field="ST")
...     .edge("SA", "SD", bound=2)
...     .edge("SD", "ST")
...     .build()
... )
>>> q.output_node
'SA'
"""

from __future__ import annotations

from repro.errors import PatternError
from repro.pattern.pattern import Bound, Pattern
from repro.pattern.predicates import And, Cmp, Predicate, parse_conjunction


class PatternBuilder:
    """Chainable construction of :class:`~repro.pattern.pattern.Pattern`.

    ``node()`` accepts a condition in any mix of three styles, combined
    conjunctively: a :class:`Predicate`, the text syntax, and/or keyword
    equality shortcuts (``field="SA"`` becomes ``field == "SA"``).
    """

    def __init__(self, name: str = "") -> None:
        self._pattern = Pattern(name=name)
        self._built = False

    def node(
        self,
        node_id: str,
        condition: Predicate | str | None = None,
        output: bool = False,
        **equalities: object,
    ) -> "PatternBuilder":
        """Add a pattern node; see class docstring for condition styles."""
        self._check_open()
        parts: list[Predicate] = []
        if isinstance(condition, str):
            parts.append(parse_conjunction(condition))
        elif isinstance(condition, Predicate):
            parts.append(condition)
        elif condition is not None:
            raise PatternError(f"bad condition for {node_id!r}: {condition!r}")
        for attr, value in equalities.items():
            parts.append(Cmp(attr, "==", value))
        if not parts:
            merged: Predicate | None = None
        elif len(parts) == 1:
            merged = parts[0]
        else:
            merged = And(*parts)
        self._pattern.add_node(node_id, merged, output=output)
        return self

    def edge(self, source: str, target: str, bound: Bound = 1) -> "PatternBuilder":
        """Add a bounded pattern edge (``bound=None`` for ``*``)."""
        self._check_open()
        self._pattern.add_edge(source, target, bound)
        return self

    def output(self, node_id: str) -> "PatternBuilder":
        """Mark the output node after the fact."""
        self._check_open()
        self._pattern.set_output(node_id)
        return self

    def build(self, require_output: bool = False) -> Pattern:
        """Validate and return the pattern; the builder cannot be reused."""
        self._check_open()
        self._pattern.validate(require_output=require_output)
        self._built = True
        return self._pattern

    def _check_open(self) -> None:
        if self._built:
            raise PatternError("PatternBuilder already built; create a new one")
