"""Search-condition predicates for pattern nodes.

A pattern node in ExpFinder carries a *search condition* such as
``field == "SA" and experience >= 5``.  Conditions are represented as a
small predicate algebra rather than bare lambdas for three reasons the rest
of the system relies on:

* **attribute tracking** — the compression module may answer a query on a
  compressed graph only if every predicate reads attributes the compression
  preserved (:attr:`Predicate.attrs` makes that checkable);
* **canonical keys** — the query cache needs structural equality of
  queries (:meth:`Predicate.key`);
* **serialization** — queries are stored as files (:meth:`Predicate.to_dict`).

Missing attributes and type-incompatible comparisons evaluate to ``False``
(a person with no recorded experience is simply not a match), never raise.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Mapping

from repro.errors import PredicateError

Atom = str | int | float | bool

_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">=": lambda a, b: a >= b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    "<": lambda a, b: a < b,
}


class Predicate(ABC):
    """A boolean condition over a node's attribute dictionary."""

    __slots__ = ()

    @abstractmethod
    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        """True iff a node with these attributes satisfies the condition."""

    @property
    @abstractmethod
    def attrs(self) -> frozenset[str]:
        """Attribute names this predicate reads (for compression checks)."""

    @abstractmethod
    def key(self) -> tuple:
        """A canonical hashable form; equal predicates have equal keys."""

    @abstractmethod
    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready representation (inverse of :func:`predicate_from_dict`)."""

    # boolean-algebra sugar -------------------------------------------------
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Predicate) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class AlwaysTrue(Predicate):
    """The empty search condition: every node qualifies."""

    __slots__ = ()

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        return True

    @property
    def attrs(self) -> frozenset[str]:
        return frozenset()

    def key(self) -> tuple:
        return ("true",)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "true"}

    def __repr__(self) -> str:
        return "AlwaysTrue()"


class Cmp(Predicate):
    """``attr <op> value`` for ``op`` in ``== != >= <= > <``.

    >>> Cmp("experience", ">=", 5).evaluate({"experience": 7})
    True
    >>> Cmp("experience", ">=", 5).evaluate({})
    False
    """

    __slots__ = ("attr", "op", "value")

    def __init__(self, attr: str, op: str, value: Atom) -> None:
        if op not in _OPS:
            raise PredicateError(f"unknown operator: {op!r}")
        if not isinstance(attr, str) or not attr:
            raise PredicateError(f"attribute name must be a non-empty string: {attr!r}")
        self.attr = attr
        self.op = op
        self.value = value

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        if self.attr not in attrs:
            return False
        try:
            return _OPS[self.op](attrs[self.attr], self.value)
        except TypeError:
            return False

    @property
    def attrs(self) -> frozenset[str]:
        return frozenset((self.attr,))

    def key(self) -> tuple:
        return ("cmp", self.attr, self.op, type(self.value).__name__, self.value)

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "cmp", "attr": self.attr, "op": self.op, "value": self.value}

    def __repr__(self) -> str:
        return f"Cmp({self.attr!r}, {self.op!r}, {self.value!r})"


class In(Predicate):
    """``attr in {choices}`` — categorical membership.

    >>> In("field", ["SA", "PM"]).evaluate({"field": "PM"})
    True
    """

    __slots__ = ("attr", "choices")

    def __init__(self, attr: str, choices: Any) -> None:
        if not isinstance(attr, str) or not attr:
            raise PredicateError(f"attribute name must be a non-empty string: {attr!r}")
        values = tuple(choices)
        if not values:
            raise PredicateError("In() needs at least one choice")
        self.attr = attr
        self.choices = values

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        return self.attr in attrs and attrs[self.attr] in self.choices

    @property
    def attrs(self) -> frozenset[str]:
        return frozenset((self.attr,))

    def key(self) -> tuple:
        return ("in", self.attr, tuple(sorted(map(repr, self.choices))))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "in", "attr": self.attr, "choices": list(self.choices)}

    def __repr__(self) -> str:
        return f"In({self.attr!r}, {list(self.choices)!r})"


class _Combinator(Predicate):
    """Shared machinery for :class:`And` / :class:`Or`."""

    __slots__ = ("parts",)
    _kind = ""

    def __init__(self, *parts: Predicate) -> None:
        if len(parts) < 1:
            raise PredicateError(f"{type(self).__name__} needs at least one part")
        flat: list[Predicate] = []
        for part in parts:
            if not isinstance(part, Predicate):
                raise PredicateError(f"not a Predicate: {part!r}")
            if isinstance(part, type(self)):
                flat.extend(part.parts)  # flatten nested same-kind combinators
            else:
                flat.append(part)
        self.parts = tuple(flat)

    @property
    def attrs(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for part in self.parts:
            out |= part.attrs
        return out

    def key(self) -> tuple:
        return (self._kind, tuple(sorted(part.key() for part in self.parts)))

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self._kind, "parts": [part.to_dict() for part in self.parts]}

    def __repr__(self) -> str:
        inner = ", ".join(repr(part) for part in self.parts)
        return f"{type(self).__name__}({inner})"


class And(_Combinator):
    """Conjunction — a node must satisfy every part."""

    __slots__ = ()
    _kind = "and"

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        return all(part.evaluate(attrs) for part in self.parts)


class Or(_Combinator):
    """Disjunction — a node must satisfy at least one part."""

    __slots__ = ()
    _kind = "or"

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        return any(part.evaluate(attrs) for part in self.parts)


class Not(Predicate):
    """Negation of another predicate."""

    __slots__ = ("part",)

    def __init__(self, part: Predicate) -> None:
        if not isinstance(part, Predicate):
            raise PredicateError(f"not a Predicate: {part!r}")
        self.part = part

    def evaluate(self, attrs: Mapping[str, Any]) -> bool:
        return not self.part.evaluate(attrs)

    @property
    def attrs(self) -> frozenset[str]:
        return self.part.attrs

    def key(self) -> tuple:
        return ("not", self.part.key())

    def to_dict(self) -> dict[str, Any]:
        return {"kind": "not", "part": self.part.to_dict()}

    def __repr__(self) -> str:
        return f"Not({self.part!r})"


def predicate_from_dict(payload: Mapping[str, Any]) -> Predicate:
    """Inverse of :meth:`Predicate.to_dict` for every built-in kind."""
    try:
        kind = payload["kind"]
    except (TypeError, KeyError):
        raise PredicateError(f"malformed predicate payload: {payload!r}") from None
    if kind == "true":
        return AlwaysTrue()
    if kind == "cmp":
        return Cmp(payload["attr"], payload["op"], payload["value"])
    if kind == "in":
        return In(payload["attr"], payload["choices"])
    if kind == "and":
        return And(*(predicate_from_dict(part) for part in payload["parts"]))
    if kind == "or":
        return Or(*(predicate_from_dict(part) for part in payload["parts"]))
    if kind == "not":
        return Not(predicate_from_dict(payload["part"]))
    raise PredicateError(f"unknown predicate kind: {kind!r}")


# ----------------------------------------------------------------------
# text syntax:   field == "SA", experience >= 5        (comma = AND)
# ----------------------------------------------------------------------

def parse_condition(text: str) -> Predicate:
    """Parse one comparison like ``experience >= 5`` or ``field in ["SA","PM"]``.

    Values may be quoted strings, integers, floats, ``true``/``false`` or
    bare words (treated as strings).
    """
    stripped = text.strip()
    if not stripped:
        raise PredicateError("empty condition")
    lowered = stripped.lower()
    if lowered in ("true", "*", "any"):
        return AlwaysTrue()
    in_split = _split_keyword(stripped, " in ")
    if in_split is not None:
        attr, raw = in_split
        return In(attr, _parse_list(raw))
    for op in ("==", "!=", ">=", "<=", ">", "<", "="):
        index = stripped.find(op)
        if index > 0:
            attr = stripped[:index].strip()
            value = _parse_value(stripped[index + len(op):].strip())
            return Cmp(attr, "==" if op == "=" else op, value)
    raise PredicateError(f"cannot parse condition: {text!r}")


def parse_conjunction(text: str) -> Predicate:
    """Parse a comma-separated conjunction of conditions.

    >>> pred = parse_conjunction('field == "SA", experience >= 5')
    >>> pred.evaluate({"field": "SA", "experience": 7})
    True
    """
    clauses = [part for part in _split_top_level(text, ",") if part.strip()]
    if not clauses:
        return AlwaysTrue()
    parsed = [parse_condition(part) for part in clauses]
    if len(parsed) == 1:
        return parsed[0]
    return And(*parsed)


def format_predicate(predicate: Predicate) -> str:
    """Render a predicate back into the text syntax (inverse of parsing
    for the comma-conjunction fragment; nested Or/Not render with keywords).
    """
    if isinstance(predicate, AlwaysTrue):
        return "true"
    if isinstance(predicate, Cmp):
        return f"{predicate.attr} {predicate.op} {_format_value(predicate.value)}"
    if isinstance(predicate, In):
        inner = ", ".join(_format_value(choice) for choice in predicate.choices)
        return f"{predicate.attr} in [{inner}]"
    if isinstance(predicate, And):
        return ", ".join(format_predicate(part) for part in predicate.parts)
    if isinstance(predicate, Or):
        inner = " or ".join(f"({format_predicate(part)})" for part in predicate.parts)
        return inner
    if isinstance(predicate, Not):
        return f"not ({format_predicate(predicate.part)})"
    raise PredicateError(f"cannot format predicate: {predicate!r}")


def _split_keyword(text: str, keyword: str) -> tuple[str, str] | None:
    depth = 0
    lowered = text.lower()
    for index in range(len(text)):
        char = text[index]
        if char in "[(":
            depth += 1
        elif char in ")]":
            depth -= 1
        elif depth == 0 and lowered.startswith(keyword, index):
            return text[:index].strip(), text[index + len(keyword):].strip()
    return None


def _split_top_level(text: str, separator: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current: list[str] = []
    for char in text:
        if quote is not None:
            current.append(char)
            if char == quote:
                quote = None
            continue
        if char in "'\"":
            quote = char
            current.append(char)
        elif char in "[(":
            depth += 1
            current.append(char)
        elif char in ")]":
            depth -= 1
            current.append(char)
        elif char == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return parts


def _parse_list(raw: str) -> list[Atom]:
    body = raw.strip()
    if not (body.startswith("[") and body.endswith("]")):
        raise PredicateError(f"expected a [list] after 'in': {raw!r}")
    inner = body[1:-1].strip()
    if not inner:
        raise PredicateError("empty list after 'in'")
    return [_parse_value(part.strip()) for part in _split_top_level(inner, ",")]


def _parse_value(raw: str) -> Atom:
    if not raw:
        raise PredicateError("missing value")
    if raw[0] in "'\"" and raw[-1] == raw[0] and len(raw) >= 2:
        return raw[1:-1]
    lowered = raw.lower()
    if lowered == "true":
        return True
    if lowered == "false":
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def _format_value(value: Atom) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f'"{value}"'
    return repr(value)
