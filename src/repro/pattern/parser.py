"""Text format for pattern queries.

The GUI's Pattern Builder lets users draw queries; the file format below is
this repository's storable equivalent.  Grammar (one declaration per line,
``#`` comments allowed):

.. code-block:: text

    pattern team-query              # optional header naming the pattern
    node SA* : field == "SA", experience >= 5
    node SD  : field == "SD", experience >= 2
    node BA  : field == "BA", experience >= 3
    node ST  : field == "ST", experience >= 2
    edge SA -> SD : 2
    edge SA -> BA : 3
    edge SD -> ST : 1
    edge BA -> ST : 2

``*`` after a node id marks the output node; an edge bound of ``*`` (or a
missing ``: bound`` suffix defaulting to 1) follows the paper's notation.
:func:`parse_pattern` and :func:`format_pattern` round-trip.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import PatternError
from repro.pattern.pattern import Pattern

_NODE_RE = re.compile(r"^node\s+(?P<id>[A-Za-z_][\w.-]*)(?P<star>\*)?\s*(?::\s*(?P<cond>.*))?$")
_EDGE_RE = re.compile(
    r"^edge\s+(?P<src>[A-Za-z_][\w.-]*)\s*->\s*(?P<dst>[A-Za-z_][\w.-]*)"
    r"\s*(?::\s*(?P<bound>\*|\d+))?$"
)
_HEADER_RE = re.compile(r"^pattern\s+(?P<name>\S+)$")


def parse_pattern(text: str, name: str = "") -> Pattern:
    """Parse the line-oriented pattern syntax into a :class:`Pattern`."""
    pattern = Pattern(name=name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        header = _HEADER_RE.match(line)
        if header:
            pattern.name = header.group("name")
            continue
        node = _NODE_RE.match(line)
        if node:
            condition = node.group("cond")
            pattern.add_node(
                node.group("id"),
                condition.strip() if condition and condition.strip() else None,
                output=bool(node.group("star")),
            )
            continue
        edge = _EDGE_RE.match(line)
        if edge:
            bound_text = edge.group("bound")
            if bound_text is None:
                bound: int | None = 1
            elif bound_text == "*":
                bound = None
            else:
                bound = int(bound_text)
            pattern.add_edge(edge.group("src"), edge.group("dst"), bound)
            continue
        raise PatternError(f"line {lineno}: cannot parse {raw!r}")
    pattern.validate()
    return pattern


def format_pattern(pattern: Pattern) -> str:
    """Render a :class:`Pattern` in the parsable text syntax."""
    from repro.pattern.predicates import AlwaysTrue, format_predicate

    lines = []
    if pattern.name:
        lines.append(f"pattern {pattern.name}")
    for node in pattern.nodes():
        predicate = pattern.predicate(node)
        star = "*" if node == pattern.output_node else ""
        if isinstance(predicate, AlwaysTrue):
            lines.append(f"node {node}{star}")
        else:
            lines.append(f"node {node}{star} : {format_predicate(predicate)}")
    for source, target, bound in pattern.edges():
        label = "*" if bound is None else str(bound)
        lines.append(f"edge {source} -> {target} : {label}")
    return "\n".join(lines) + "\n"


def load_pattern(path: str | Path) -> Pattern:
    """Read a pattern file (text syntax)."""
    source = Path(path)
    if not source.exists():
        raise PatternError(f"pattern file not found: {source}")
    return parse_pattern(source.read_text(), name=source.stem)


def save_pattern(pattern: Pattern, path: str | Path) -> Path:
    """Write a pattern file (text syntax); returns the path written."""
    from repro.graph.io import atomic_write_text

    return atomic_write_text(Path(path), format_pattern(pattern))
