"""Pattern queries: predicates, patterns, text parser, fluent builder."""

from repro.pattern.builder import PatternBuilder
from repro.pattern.parser import format_pattern, load_pattern, parse_pattern, save_pattern
from repro.pattern.pattern import Bound, Pattern
from repro.pattern.predicates import (
    AlwaysTrue,
    And,
    Cmp,
    In,
    Not,
    Or,
    Predicate,
    format_predicate,
    parse_condition,
    parse_conjunction,
    predicate_from_dict,
)

__all__ = [
    "Bound",
    "Pattern",
    "PatternBuilder",
    "AlwaysTrue",
    "And",
    "Cmp",
    "In",
    "Not",
    "Or",
    "Predicate",
    "format_predicate",
    "parse_condition",
    "parse_conjunction",
    "predicate_from_dict",
    "format_pattern",
    "load_pattern",
    "parse_pattern",
    "save_pattern",
]
