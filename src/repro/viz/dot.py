"""Graphviz DOT export for graphs, patterns and result graphs.

The demo GUI draws query results; offline, the closest faithful artefact is
DOT text that any Graphviz install renders.  The top-1 expert can be
highlighted in red exactly as in the demo's Fig. 5.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.digraph import Graph, NodeId
from repro.matching.result_graph import ResultGraph
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import AlwaysTrue, format_predicate


def _quote(value: object) -> str:
    text = str(value).replace("\\", "\\\\").replace('"', '\\"')
    return f'"{text}"'


def graph_to_dot(graph: Graph, label_attrs: Iterable[str] = ("field", "experience")) -> str:
    """DOT for a data graph; node labels show the chosen attributes."""
    lines = [f"digraph {_quote(graph.name or 'G')} {{", "  rankdir=LR;"]
    attrs = list(label_attrs)
    for node in graph.nodes():
        parts = [str(node)]
        for attr in attrs:
            value = graph.get(node, attr)
            if value is not None:
                parts.append(f"{attr}={value}")
        lines.append(f"  {_quote(node)} [label={_quote(chr(10).join(parts))}];")
    for source, target in graph.edges():
        lines.append(f"  {_quote(source)} -> {_quote(target)};")
    lines.append("}")
    return "\n".join(lines)


def pattern_to_dot(pattern: Pattern) -> str:
    """DOT for a pattern query; the output node is double-circled."""
    lines = [f"digraph {_quote(pattern.name or 'Q')} {{", "  rankdir=LR;"]
    for node in pattern.nodes():
        predicate = pattern.predicate(node)
        condition = "" if isinstance(predicate, AlwaysTrue) else format_predicate(predicate)
        label = node if not condition else f"{node}\n{condition}"
        shape = "doublecircle" if node == pattern.output_node else "ellipse"
        lines.append(f"  {_quote(node)} [shape={shape}, label={_quote(label)}];")
    for source, target, bound in pattern.edges():
        bound_label = "*" if bound is None else str(bound)
        lines.append(
            f"  {_quote(source)} -> {_quote(target)} [label={_quote(bound_label)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def result_to_dot(result_graph: ResultGraph, highlight: NodeId | None = None) -> str:
    """DOT for a result graph; ``highlight`` marks the top expert in red."""
    lines = [f"digraph {_quote('result')} {{", "  rankdir=LR;"]
    for node in result_graph.nodes():
        matched = ",".join(sorted(result_graph.matched_pattern_nodes(node)))
        label = f"{node}\n[{matched}]"
        if node == highlight:
            lines.append(
                f"  {_quote(node)} [label={_quote(label)}, color=red, "
                f"fontcolor=red, penwidth=2];"
            )
        else:
            lines.append(f"  {_quote(node)} [label={_quote(label)}];")
    for source, target, weight in result_graph.edges():
        lines.append(
            f"  {_quote(source)} -> {_quote(target)} [label={_quote(weight)}];"
        )
    lines.append("}")
    return "\n".join(lines)
