"""ASCII charts for benchmark series.

The paper's demo shows performance figures; offline, the closest faithful
artefact is a horizontal bar chart rendered in text.  Used by
``benchmarks/report.py`` to turn pytest-benchmark JSON into the series the
evaluation section describes.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError

BAR_CHARS = 40


def ascii_bar_chart(
    series: Sequence[tuple[str, float]],
    title: str = "",
    unit: str = "ms",
    width: int = BAR_CHARS,
) -> str:
    """Render labelled values as proportional horizontal bars.

    >>> print(ascii_bar_chart([("a", 2.0), ("b", 4.0)], title="t"))
    t
    a  ████████████████████  2.00
    b  ████████████████████████████████████████  4.00
    """
    if width < 1:
        raise ReproError(f"chart width must be >= 1: {width}")
    if not series:
        return title
    longest_label = max(len(label) for label, _ in series)
    largest = max(value for _, value in series)
    lines = [title] if title else []
    for label, value in series:
        if value < 0:
            raise ReproError(f"cannot chart negative value: {label}={value}")
        bar_length = 0 if largest == 0 else max(1, round(width * value / largest))
        bar = "█" * bar_length
        lines.append(f"{label.ljust(longest_label)}  {bar}  {value:.2f}{unit_suffix(unit)}")
    return "\n".join(lines)


def unit_suffix(unit: str) -> str:
    return f" {unit}" if unit else ""


def comparison_chart(
    pairs: Sequence[tuple[str, float, float]],
    left_name: str,
    right_name: str,
    title: str = "",
    unit: str = "ms",
) -> str:
    """Two-series comparison: per row, both values and who wins.

    >>> out = comparison_chart([("1%", 1.0, 3.0)], "incr", "batch")
    >>> "incr wins" in out
    True
    """
    lines = [title] if title else []
    label_width = max((len(label) for label, _, _ in pairs), default=0)
    for label, left, right in pairs:
        winner = left_name if left < right else right_name
        ratio = (right / left) if left < right else (left / right)
        if min(left, right) == 0:
            ratio_text = ""
        else:
            ratio_text = f" ({ratio:.1f}x)"
        lines.append(
            f"{label.ljust(label_width)}  {left_name} {left:10.3f}{unit_suffix(unit)}"
            f"  |  {right_name} {right:10.3f}{unit_suffix(unit)}"
            f"  ->  {winner} wins{ratio_text}"
        )
    return "\n".join(lines)
