"""Textual and DOT rendering — the GUI substitute."""

from repro.viz.ascii import (
    drill_down,
    graph_summary,
    node_card,
    relation_summary,
    render_ranking,
    render_result_graph,
    render_table,
    roll_up,
)
from repro.viz.charts import ascii_bar_chart, comparison_chart
from repro.viz.dot import graph_to_dot, pattern_to_dot, result_to_dot

__all__ = [
    "ascii_bar_chart",
    "comparison_chart",
    "drill_down",
    "graph_summary",
    "node_card",
    "relation_summary",
    "render_ranking",
    "render_result_graph",
    "render_table",
    "roll_up",
    "graph_to_dot",
    "pattern_to_dot",
    "result_to_dot",
]
