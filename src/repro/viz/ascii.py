"""Textual views — the reproduction's stand-in for the demo GUI.

The demo GUI (Figs 3–5) offers graph summaries, result-graph browsing, a
"personal information" panel, and Drill Down / Roll Up analysis ("the users
can drill down to see detailed information in a result graph, and can roll
up to view its global structure").  Every one of those interactions has a
textual equivalent here; the CLI and examples print them.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ReproError
from repro.graph.digraph import Graph, NodeId
from repro.matching.base import MatchRelation
from repro.matching.result_graph import ResultGraph
from repro.ranking.social_impact import RankedMatch


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A minimal fixed-width text table (no external dependencies)."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def graph_summary(graph: Graph, attr: str = "field") -> str:
    """Global structure of a data graph (the Manager panel's overview)."""
    histogram: dict[object, int] = {}
    for node in graph.nodes():
        value = graph.get(node, attr)
        histogram[value] = histogram.get(value, 0) + 1
    rows = sorted(histogram.items(), key=lambda kv: (-kv[1], str(kv[0])))
    lines = [
        f"graph {graph.name or '(unnamed)'}: "
        f"{graph.num_nodes} nodes, {graph.num_edges} edges",
        render_table((attr, "count"), rows),
    ]
    return "\n".join(lines)


def node_card(graph: Graph, node: NodeId) -> str:
    """The "Personal information" panel for one node (Fig. 3)."""
    if not graph.has_node(node):
        raise ReproError(f"unknown node: {node!r}")
    attrs = graph.attrs(node)
    lines = [f"node {node!r}"]
    for key in sorted(attrs):
        lines.append(f"  {key}: {attrs[key]}")
    lines.append(f"  collaborates-with: {sorted(map(str, graph.successors(node)))}")
    lines.append(f"  collaborated-by:   {sorted(map(str, graph.predecessors(node)))}")
    return "\n".join(lines)


def relation_summary(relation: MatchRelation) -> str:
    """One line per pattern node with its matches."""
    if relation.is_empty:
        return "no match (some pattern node has no valid match)"
    lines = []
    for pattern_node in relation:
        matches = ", ".join(sorted(map(str, relation.matches_of(pattern_node))))
        lines.append(f"{pattern_node}: {matches}")
    return "\n".join(lines)


def roll_up(result_graph: ResultGraph) -> str:
    """Global structure of a result graph: match counts per pattern node."""
    per_pattern: dict[str, int] = {u: 0 for u in result_graph.pattern.nodes()}
    for node in result_graph.nodes():
        for pattern_node in result_graph.matched_pattern_nodes(node):
            per_pattern[pattern_node] += 1
    rows = [(u, count) for u, count in per_pattern.items()]
    header = (
        f"result graph: {result_graph.num_nodes} matches, "
        f"{result_graph.num_edges} witness edges"
    )
    return header + "\n" + render_table(("pattern node", "matches"), rows)


def drill_down(result_graph: ResultGraph, node: NodeId) -> str:
    """Detailed view of one match: attributes plus witness paths."""
    if node not in result_graph:
        raise ReproError(f"{node!r} is not in the result graph")
    pattern_nodes = ", ".join(sorted(result_graph.matched_pattern_nodes(node)))
    lines = [f"match {node!r} (matches pattern node(s): {pattern_nodes})"]
    for key, value in sorted(result_graph.node_attrs(node).items()):
        lines.append(f"  {key}: {value}")
    outgoing = result_graph.out_adjacency().get(node, {})
    incoming = result_graph.in_adjacency().get(node, {})
    for target, weight in sorted(outgoing.items(), key=lambda kv: str(kv[0])):
        lines.append(f"  -[{weight}]-> {target}")
    for source, weight in sorted(incoming.items(), key=lambda kv: str(kv[0])):
        lines.append(f"  <-[{weight}]- {source}")
    return "\n".join(lines)


def render_result_graph(result_graph: ResultGraph) -> str:
    """All witness edges, ``v -[d]-> v'`` per line (Fig. 5's raw content)."""
    lines = [roll_up(result_graph)]
    for source, target, weight in sorted(
        result_graph.edges(), key=lambda e: (str(e[0]), str(e[1]))
    ):
        lines.append(f"{source} -[{weight}]-> {target}")
    return "\n".join(lines)


def render_ranking(ranked: Sequence[RankedMatch], k: int | None = None) -> str:
    """Top-K table: rank value, impact-set size, identity attributes."""
    rows = []
    shown = ranked if k is None else ranked[:k]
    for position, match in enumerate(shown, start=1):
        rank = "inf" if match.rank == float("inf") else f"{match.rank:.4f}"
        identity = ", ".join(
            f"{key}={match.attrs[key]}"
            for key in ("field", "specialty", "experience")
            if key in match.attrs
        )
        rows.append((position, match.node, rank, match.impact_set_size, identity))
    return render_table(("#", "expert", "f(uo,v)", "|V'r|", "profile"), rows)
