"""File-backed storage — "all the graphs and query results are stored and
managed as files".

A :class:`GraphStore` owns a directory with five sub-catalogues::

    <root>/graphs/<name>.json               data graphs
    <root>/patterns/<name>.pattern          pattern queries (text syntax)
    <root>/results/<name>.json              match relations
    <root>/result_graphs/<name>.json        weighted result graphs
    <root>/snapshots/<name>.frozen.snap     binary FrozenGraph snapshots
    <root>/snapshots/<name>.oracle.snap     binary DistanceOracle labelings

Names are restricted to a safe character set so stored artefacts stay
portable and path traversal is impossible.  Result graphs live in their
own directory: the old scheme suffixed them ``.rg.json`` inside
``results/``, so ``save_relation("foo.rg", ...)`` collided with result
graph ``foo`` — same file, two namespaces.

Binary snapshot format
----------------------
``FrozenGraph`` and ``DistanceOracle`` are already flat ``array('q')``
buffers, so persistence is a matter of laying those buffers out in a file
such that reload is an ``mmap`` plus a header check — zero copy, O(1) in
graph size — instead of seconds of freeze/label rebuild.  The layout::

    [ 40-byte header ][ metadata JSON ][ pad ][ buffer 0 ][ pad ][ buffer 1 ] ...

* the fixed header packs (little-endian) an 8-byte magic ``EXPFSNAP``,
  the format version, the snapshot kind (frozen graph vs distance
  oracle), the ``source_version`` the snapshot was built from, the
  metadata length, and a CRC-32 checksum over everything after the
  header;
* the metadata JSON carries what is not a flat buffer (name, value pool
  / oracle parameters, and string node labels for graphs that have them
  — int labels and attribute columns ride as int64 sections, decoded
  lazily) plus the section table ``[[section name, byte length], ...]``;
* each buffer starts at the next ``mmap.ALLOCATIONGRANULARITY``-aligned
  offset — computable from the section table alone — and holds raw
  little-endian int64s, so a loaded section is just
  ``memoryview(mapping)[offset:offset + length].cast("q")`` and pool
  workers mapping the same file share physical pages.

Every load validates magic, format version, kind and checksum, and — when
the caller knows the graph — ``source_version``, each failure a distinct
:class:`~repro.errors.StorageError`; a corrupt or stale file can never
produce a silently wrong answer.
"""

from __future__ import annotations

import json
import mmap
import re
import struct
import sys
import zlib
from array import array
from pathlib import Path
from typing import Any

from repro.errors import EvaluationError, StorageError
from repro.graph.digraph import Graph
from repro.graph.frozen import FrozenGraph
from repro.graph.io import atomic_write_bytes, atomic_write_text, load_graph, save_graph
from repro.graph.oracle import DistanceOracle
from repro.matching.base import MatchRelation
from repro.pattern.parser import load_pattern, save_pattern
from repro.pattern.pattern import Pattern

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise StorageError(
            f"invalid store name {name!r} (letters, digits, '._-', max 128 chars)"
        )
    return name


# ----------------------------------------------------------------------
# binary snapshot files
# ----------------------------------------------------------------------
SNAPSHOT_MAGIC = b"EXPFSNAP"
SNAPSHOT_FORMAT_VERSION = 1
SNAPSHOT_KIND_FROZEN = 1
SNAPSHOT_KIND_ORACLE = 2
_KIND_NAMES = {
    SNAPSHOT_KIND_FROZEN: "frozen-graph",
    SNAPSHOT_KIND_ORACLE: "distance-oracle",
}

# magic, format version, kind, flags (reserved), source_version,
# metadata length, CRC-32 of file[header:], 4 pad bytes.
_HEADER = struct.Struct("<8sHHIqqI4x")

#: Buffer sections start on allocation-granularity boundaries so a loaded
#: view could be re-mapped individually and stays page-shareable.
_ALIGN = mmap.ALLOCATIONGRANULARITY

def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def _buffer_bytes(buffer: Any) -> bytes:
    """``buffer`` as raw little-endian int64 bytes (the on-disk format)."""
    if sys.byteorder == "little":
        return buffer.tobytes()
    swapped = array("q", buffer)  # pragma: no cover - big-endian hosts
    swapped.byteswap()  # pragma: no cover
    return swapped.tobytes()  # pragma: no cover


def _json_safe(value: Any) -> bool:
    """True iff ``value`` survives a JSON round trip unchanged (type included)."""
    if value is None or isinstance(value, (str, bool, float)):
        return True
    if isinstance(value, int):
        return True
    if isinstance(value, list):
        return all(_json_safe(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _json_safe(item) for key, item in value.items()
        )
    return False


def write_snapshot_file(
    path: str | Path,
    kind: int,
    source_version: int,
    meta: dict[str, Any],
    buffers: list[tuple[str, Any]],
) -> Path:
    """Write one snapshot (header + metadata + aligned buffers), atomically."""
    try:
        meta_blob = json.dumps(
            {**meta, "sections": [[name, len(buffer) * 8] for name, buffer in buffers]},
            sort_keys=True,
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise StorageError(f"snapshot metadata is not JSON-serializable: {exc}") from exc

    chunks: list[bytes] = [meta_blob]
    position = _HEADER.size + len(meta_blob)
    for _name, buffer in buffers:
        padding = _aligned(position) - position
        data = _buffer_bytes(buffer)
        chunks.append(b"\x00" * padding)
        chunks.append(data)
        position += padding + len(data)

    checksum = 0
    for chunk in chunks:
        checksum = zlib.crc32(chunk, checksum)
    header = _HEADER.pack(
        SNAPSHOT_MAGIC,
        SNAPSHOT_FORMAT_VERSION,
        kind,
        0,
        source_version,
        len(meta_blob),
        checksum,
    )
    return atomic_write_bytes(Path(path), [header, *chunks])


def _read_header(raw: bytes, path: Path, kind: int | None) -> tuple:
    if len(raw) < _HEADER.size:
        raise StorageError(
            f"truncated header in snapshot file {path}: {len(raw)} bytes is "
            f"smaller than the {_HEADER.size}-byte header"
        )
    magic, version, file_kind, _flags, source_version, meta_length, checksum = (
        _HEADER.unpack_from(raw)
    )
    if magic != SNAPSHOT_MAGIC:
        raise StorageError(f"{path} is not a snapshot file (bad magic {magic!r})")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot format version {version} in {path} "
            f"(this build reads version {SNAPSHOT_FORMAT_VERSION})"
        )
    if file_kind not in _KIND_NAMES:
        raise StorageError(f"unknown snapshot kind {file_kind} in {path}")
    if kind is not None and file_kind != kind:
        raise StorageError(
            f"{path} holds a {_KIND_NAMES[file_kind]} snapshot, "
            f"not a {_KIND_NAMES[kind]} snapshot"
        )
    return file_kind, source_version, meta_length, checksum


def load_snapshot_file(
    path: str | Path,
    kind: int,
    expected_version: int | None = None,
) -> tuple[int, dict[str, Any], dict[str, Any]]:
    """Map a snapshot file and return ``(source_version, meta, views)``.

    ``views`` maps section names to zero-copy int64 ``memoryview`` casts
    over the shared mapping (which the views keep alive).  Raises a
    distinct :class:`StorageError` for a missing file, a truncated file,
    a bad magic, an unsupported format version, a wrong kind, a checksum
    mismatch, and — when ``expected_version`` is given — a
    ``source_version`` skew.
    """
    path = Path(path)
    if not path.exists():
        raise StorageError(f"snapshot file not found: {path}")
    # Checked up front: a zero-length file would otherwise surface as
    # mmap's own ValueError ("cannot mmap an empty file") and a sub-header
    # file would fail only at header unpack — both are the same defect (a
    # torn write of the header) and deserve the same distinct error.
    size = path.stat().st_size
    if size < _HEADER.size:
        raise StorageError(
            f"truncated header in snapshot file {path}: {size} bytes is "
            f"smaller than the {_HEADER.size}-byte header"
        )
    with open(path, "rb") as handle:
        try:
            mapping = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except ValueError as exc:  # pragma: no cover - raced truncation
            raise StorageError(f"truncated snapshot file {path}: {exc}") from exc
    view = memoryview(mapping)
    _file_kind, source_version, meta_length, checksum = _read_header(
        bytes(view[: _HEADER.size]), path, kind
    )
    size = len(view)
    if _HEADER.size + meta_length > size:
        raise StorageError(
            f"truncated snapshot file {path}: metadata runs past end of file"
        )
    if zlib.crc32(view[_HEADER.size :]) != checksum:
        raise StorageError(f"checksum mismatch in {path}: the file is corrupt")
    try:
        meta = json.loads(bytes(view[_HEADER.size : _HEADER.size + meta_length]))
    except json.JSONDecodeError as exc:  # pragma: no cover - caught by checksum
        raise StorageError(f"corrupt snapshot metadata in {path}: {exc}") from exc
    if expected_version is not None and source_version != expected_version:
        raise StorageError(
            f"stale snapshot {path}: taken at graph version {source_version}, "
            f"but the graph is now at version {expected_version}"
        )

    views: dict[str, Any] = {}
    position = _HEADER.size + meta_length
    for name, byte_length in meta["sections"]:
        offset = _aligned(position)
        if offset + byte_length > size:
            raise StorageError(
                f"truncated snapshot file {path}: section {name!r} runs "
                f"past end of file"
            )
        section = view[offset : offset + byte_length]
        if sys.byteorder == "little":
            views[name] = section.cast("q")
        else:  # pragma: no cover - big-endian hosts
            swapped = array("q", section.tobytes())
            swapped.byteswap()
            views[name] = swapped
        position = offset + byte_length
    return source_version, meta, views


def snapshot_file_info(path: str | Path) -> dict[str, Any]:
    """Header + metadata summary of a snapshot file (no payload verify)."""
    path = Path(path)
    if not path.exists():
        raise StorageError(f"snapshot file not found: {path}")
    with open(path, "rb") as handle:
        file_kind, source_version, meta_length, checksum = _read_header(
            handle.read(_HEADER.size), path, None
        )
        meta_raw = handle.read(meta_length)
    if len(meta_raw) < meta_length:
        raise StorageError(
            f"truncated snapshot file {path}: metadata runs past end of file"
        )
    try:
        meta = json.loads(meta_raw)
    except json.JSONDecodeError as exc:
        raise StorageError(f"corrupt snapshot metadata in {path}: {exc}") from exc
    return {
        "path": str(path),
        "kind": _KIND_NAMES[file_kind],
        "format_version": SNAPSHOT_FORMAT_VERSION,
        "source_version": source_version,
        "checksum": f"{checksum:08x}",
        "file_bytes": path.stat().st_size,
        "name": meta.get("name", ""),
        "sections": [tuple(entry) for entry in meta["sections"]],
    }


def write_frozen_file(path: str | Path, frozen: FrozenGraph) -> Path:
    """Persist ``frozen`` as a binary snapshot file."""
    meta, buffers = frozen.to_buffers()
    # Purely-int label sets ride as an int64 section; anything else must
    # survive the metadata JSON round trip.
    for label in meta["labels"] or ():
        if isinstance(label, bool) or not isinstance(label, (str, int)):
            raise StorageError(
                f"node id {label!r} is not JSON-serializable (use str or int)"
            )
    for value in meta["values"]:
        if not _json_safe(value):
            raise StorageError(
                f"attribute value {value!r} does not survive a JSON round "
                f"trip; snapshot files require JSON-safe attribute values"
            )
    return write_snapshot_file(
        Path(path), SNAPSHOT_KIND_FROZEN, frozen.source_version, meta, buffers
    )


def load_frozen_file(
    path: str | Path, expected_version: int | None = None
) -> FrozenGraph:
    """Load a :class:`FrozenGraph` zero-copy from a snapshot file."""
    source_version, meta, views = load_snapshot_file(
        path, SNAPSHOT_KIND_FROZEN, expected_version
    )
    frozen = FrozenGraph.from_buffers(source_version, meta, views)
    frozen.path = Path(path)  # repro-lint: disable=frozen-immutability -- provenance stamp before the snapshot is published; no reader exists yet
    return frozen


def write_oracle_file(path: str | Path, oracle: DistanceOracle) -> Path:
    """Persist ``oracle`` as a binary snapshot file."""
    meta, buffers = oracle.to_buffers()
    return write_snapshot_file(
        Path(path), SNAPSHOT_KIND_ORACLE, oracle.source_version, meta, buffers
    )


def load_oracle_file(
    path: str | Path, expected_version: int | None = None
) -> DistanceOracle:
    """Load a :class:`DistanceOracle` zero-copy from a snapshot file."""
    source_version, meta, views = load_snapshot_file(
        path, SNAPSHOT_KIND_ORACLE, expected_version
    )
    oracle = DistanceOracle.from_buffers(source_version, meta, views)
    oracle.path = Path(path)  # repro-lint: disable=frozen-immutability -- provenance stamp before the oracle is published; no reader exists yet
    return oracle


class GraphStore:
    """A directory of graphs, patterns, results and binary snapshots.

    >>> import tempfile
    >>> from repro.graph.generators import collaboration_graph
    >>> store = GraphStore(tempfile.mkdtemp())
    >>> _ = store.save_graph("team", collaboration_graph(30, seed=1))
    >>> store.list_graphs()
    ['team']
    >>> store.load_graph("team").num_nodes
    30
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._graphs = self.root / "graphs"
        self._patterns = self.root / "patterns"
        self._results = self.root / "results"
        self._result_graphs = self.root / "result_graphs"
        self._snapshots = self.root / "snapshots"
        for directory in (
            self._graphs,
            self._patterns,
            self._results,
            self._result_graphs,
            self._snapshots,
        ):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # graphs
    # ------------------------------------------------------------------
    def save_graph(self, name: str, graph: Graph) -> Path:
        return save_graph(graph, self._graphs / f"{_check_name(name)}.json")

    def load_graph(self, name: str) -> Graph:
        path = self._graphs / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored graph named {name!r}")
        return load_graph(path)

    def has_graph(self, name: str) -> bool:
        return (self._graphs / f"{_check_name(name)}.json").exists()

    def delete_graph(self, name: str) -> None:
        path = self._graphs / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored graph named {name!r}")
        path.unlink()

    def list_graphs(self) -> list[str]:
        return sorted(p.stem for p in self._graphs.glob("*.json"))

    # ------------------------------------------------------------------
    # patterns
    # ------------------------------------------------------------------
    def save_pattern(self, name: str, pattern: Pattern) -> Path:
        return save_pattern(pattern, self._patterns / f"{_check_name(name)}.pattern")

    def load_pattern(self, name: str) -> Pattern:
        path = self._patterns / f"{_check_name(name)}.pattern"
        if not path.exists():
            raise StorageError(f"no stored pattern named {name!r}")
        return load_pattern(path)

    def delete_pattern(self, name: str) -> None:
        path = self._patterns / f"{_check_name(name)}.pattern"
        if not path.exists():
            raise StorageError(f"no stored pattern named {name!r}")
        path.unlink()

    def list_patterns(self) -> list[str]:
        return sorted(p.stem for p in self._patterns.glob("*.pattern"))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def save_relation(self, name: str, relation: MatchRelation) -> Path:
        path = self._results / f"{_check_name(name)}.json"
        return atomic_write_text(path, json.dumps(relation.to_dict(), indent=2))

    def load_relation(self, name: str) -> MatchRelation:
        path = self._results / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored result named {name!r}")
        try:
            return MatchRelation.from_dict(json.loads(path.read_text()))
        except (json.JSONDecodeError, KeyError, TypeError, EvaluationError) as exc:
            raise StorageError(f"malformed result file {path}: {exc}") from exc

    def delete_relation(self, name: str) -> None:
        path = self._results / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored result named {name!r}")
        path.unlink()

    def list_relations(self) -> list[str]:
        # Result graphs live in their own directory, so every *.json here
        # is a relation — including names that end in ".rg", which the old
        # suffix-filter scheme silently hid.
        return sorted(p.stem for p in self._results.glob("*.json"))

    # ------------------------------------------------------------------
    # result graphs (own directory — see the module docstring)
    # ------------------------------------------------------------------
    def save_result_graph(self, name: str, result_graph: Any) -> Path:
        """Persist a weighted result graph in its own namespace."""
        path = self._result_graphs / f"{_check_name(name)}.json"
        return atomic_write_text(path, json.dumps(result_graph.to_dict(), indent=2))

    def load_result_graph(self, name: str, graph: Graph, pattern: Pattern) -> Any:
        """Load a result graph back against its graph and pattern."""
        from repro.matching.result_graph import ResultGraph

        path = self._result_graphs / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored result graph named {name!r}")
        try:
            payload = json.loads(path.read_text())
            return ResultGraph.from_dict(payload, graph, pattern)
        except (json.JSONDecodeError, KeyError, TypeError, EvaluationError) as exc:
            raise StorageError(f"malformed result-graph file {path}: {exc}") from exc

    def delete_result_graph(self, name: str) -> None:
        path = self._result_graphs / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored result graph named {name!r}")
        path.unlink()

    def list_result_graphs(self) -> list[str]:
        return sorted(p.stem for p in self._result_graphs.glob("*.json"))

    # ------------------------------------------------------------------
    # binary snapshots (FrozenGraph + DistanceOracle)
    # ------------------------------------------------------------------
    def save_snapshot(self, name: str, frozen: FrozenGraph) -> Path:
        """Persist a frozen snapshot under ``snapshots/<name>.frozen.snap``."""
        return write_frozen_file(
            self._snapshots / f"{_check_name(name)}.frozen.snap", frozen
        )

    def load_snapshot(
        self, name: str, expected_version: int | None = None
    ) -> FrozenGraph:
        """Mmap a stored snapshot (validated against ``expected_version``)."""
        path = self._snapshots / f"{_check_name(name)}.frozen.snap"
        if not path.exists():
            raise StorageError(f"no stored snapshot named {name!r}")
        return load_frozen_file(path, expected_version)

    def has_snapshot(self, name: str) -> bool:
        return (self._snapshots / f"{_check_name(name)}.frozen.snap").exists()

    def delete_snapshot(self, name: str) -> None:
        path = self._snapshots / f"{_check_name(name)}.frozen.snap"
        if not path.exists():
            raise StorageError(f"no stored snapshot named {name!r}")
        path.unlink()

    def list_snapshots(self) -> list[str]:
        suffix = ".frozen.snap"
        return sorted(
            p.name[: -len(suffix)] for p in self._snapshots.glob(f"*{suffix}")
        )

    def save_oracle(self, name: str, oracle: DistanceOracle) -> Path:
        """Persist an oracle labeling under ``snapshots/<name>.oracle.snap``."""
        return write_oracle_file(
            self._snapshots / f"{_check_name(name)}.oracle.snap", oracle
        )

    def load_oracle(
        self, name: str, expected_version: int | None = None
    ) -> DistanceOracle:
        """Mmap a stored oracle (validated against ``expected_version``)."""
        path = self._snapshots / f"{_check_name(name)}.oracle.snap"
        if not path.exists():
            raise StorageError(f"no stored oracle named {name!r}")
        return load_oracle_file(path, expected_version)

    def has_oracle(self, name: str) -> bool:
        return (self._snapshots / f"{_check_name(name)}.oracle.snap").exists()

    def delete_oracle(self, name: str) -> None:
        path = self._snapshots / f"{_check_name(name)}.oracle.snap"
        if not path.exists():
            raise StorageError(f"no stored oracle named {name!r}")
        path.unlink()

    def list_oracles(self) -> list[str]:
        suffix = ".oracle.snap"
        return sorted(
            p.name[: -len(suffix)] for p in self._snapshots.glob(f"*{suffix}")
        )

    def artifacts(self, name: str) -> dict[str, bool]:
        """Which persisted artifacts exist for ``name``.

        The query service's preload path uses this one call to decide how
        warm a start it can offer: a graph alone means load-and-freeze, a
        snapshot means mmap fault-in, an oracle means no label build.
        """
        return {
            "graph": self.has_graph(name),
            "snapshot": self.has_snapshot(name),
            "oracle": self.has_oracle(name),
        }

    def snapshot_info(self, name: str, kind: str = "frozen") -> dict[str, Any]:
        """Header/metadata summary of a stored snapshot or oracle file."""
        if kind not in ("frozen", "oracle"):
            raise StorageError(f"unknown snapshot kind {kind!r} (frozen or oracle)")
        path = self._snapshots / f"{_check_name(name)}.{kind}.snap"
        if not path.exists():
            raise StorageError(f"no stored {kind} snapshot named {name!r}")
        return snapshot_file_info(path)

    def __repr__(self) -> str:
        return f"<GraphStore {self.root}>"
