"""File-backed storage — "all the graphs and query results are stored and
managed as files".

A :class:`GraphStore` owns a directory with three sub-catalogues::

    <root>/graphs/<name>.json        data graphs
    <root>/patterns/<name>.pattern   pattern queries (text syntax)
    <root>/results/<name>.json       match relations

Names are restricted to a safe character set so stored artefacts stay
portable and path traversal is impossible.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.errors import StorageError
from repro.graph.digraph import Graph
from repro.graph.io import load_graph, save_graph
from repro.matching.base import MatchRelation
from repro.pattern.parser import load_pattern, save_pattern
from repro.pattern.pattern import Pattern

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,127}$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise StorageError(
            f"invalid store name {name!r} (letters, digits, '._-', max 128 chars)"
        )
    return name


class GraphStore:
    """A directory of graphs, patterns and results.

    >>> import tempfile
    >>> from repro.graph.generators import collaboration_graph
    >>> store = GraphStore(tempfile.mkdtemp())
    >>> _ = store.save_graph("team", collaboration_graph(30, seed=1))
    >>> store.list_graphs()
    ['team']
    >>> store.load_graph("team").num_nodes
    30
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._graphs = self.root / "graphs"
        self._patterns = self.root / "patterns"
        self._results = self.root / "results"
        for directory in (self._graphs, self._patterns, self._results):
            directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # graphs
    # ------------------------------------------------------------------
    def save_graph(self, name: str, graph: Graph) -> Path:
        return save_graph(graph, self._graphs / f"{_check_name(name)}.json")

    def load_graph(self, name: str) -> Graph:
        path = self._graphs / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored graph named {name!r}")
        return load_graph(path)

    def has_graph(self, name: str) -> bool:
        return (self._graphs / f"{_check_name(name)}.json").exists()

    def delete_graph(self, name: str) -> None:
        path = self._graphs / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored graph named {name!r}")
        path.unlink()

    def list_graphs(self) -> list[str]:
        return sorted(p.stem for p in self._graphs.glob("*.json"))

    # ------------------------------------------------------------------
    # patterns
    # ------------------------------------------------------------------
    def save_pattern(self, name: str, pattern: Pattern) -> Path:
        return save_pattern(pattern, self._patterns / f"{_check_name(name)}.pattern")

    def load_pattern(self, name: str) -> Pattern:
        path = self._patterns / f"{_check_name(name)}.pattern"
        if not path.exists():
            raise StorageError(f"no stored pattern named {name!r}")
        return load_pattern(path)

    def delete_pattern(self, name: str) -> None:
        path = self._patterns / f"{_check_name(name)}.pattern"
        if not path.exists():
            raise StorageError(f"no stored pattern named {name!r}")
        path.unlink()

    def list_patterns(self) -> list[str]:
        return sorted(p.stem for p in self._patterns.glob("*.pattern"))

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def save_relation(self, name: str, relation: MatchRelation) -> Path:
        path = self._results / f"{_check_name(name)}.json"
        path.write_text(json.dumps(relation.to_dict(), indent=2))
        return path

    def load_relation(self, name: str) -> MatchRelation:
        path = self._results / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored result named {name!r}")
        try:
            return MatchRelation.from_dict(json.loads(path.read_text()))
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise StorageError(f"malformed result file {path}: {exc}") from exc

    def delete_relation(self, name: str) -> None:
        path = self._results / f"{_check_name(name)}.json"
        if not path.exists():
            raise StorageError(f"no stored result named {name!r}")
        path.unlink()

    def list_relations(self) -> list[str]:
        return sorted(
            p.stem
            for p in self._results.glob("*.json")
            if not p.name.endswith(".rg.json")
        )

    # ------------------------------------------------------------------
    # result graphs
    # ------------------------------------------------------------------
    def save_result_graph(self, name: str, result_graph) -> Path:
        """Persist a weighted result graph alongside the plain relations."""
        path = self._results / f"{_check_name(name)}.rg.json"
        path.write_text(json.dumps(result_graph.to_dict(), indent=2))
        return path

    def load_result_graph(self, name: str, graph: Graph, pattern: Pattern):
        """Load a result graph back against its graph and pattern."""
        from repro.matching.result_graph import ResultGraph

        path = self._results / f"{_check_name(name)}.rg.json"
        if not path.exists():
            raise StorageError(f"no stored result graph named {name!r}")
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise StorageError(f"malformed result-graph file {path}: {exc}") from exc
        return ResultGraph.from_dict(payload, graph, pattern)

    def list_result_graphs(self) -> list[str]:
        return sorted(p.name[: -len(".rg.json")] for p in self._results.glob("*.rg.json"))

    def __repr__(self) -> str:
        return f"<GraphStore {self.root}>"
