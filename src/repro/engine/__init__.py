"""Query engine: planner, cache, file storage, orchestration."""

from repro.engine.cache import CacheEntry, QueryCache, RankCache, RankEntry, cache_key
from repro.engine.engine import QueryEngine, RegisteredGraph
from repro.engine.planner import (
    ALGORITHM_BOUNDED,
    ALGORITHM_SIMULATION,
    ROUTE_CACHE,
    ROUTE_COMPRESSED,
    ROUTE_DIRECT,
    Plan,
    choose_algorithm,
    make_plan,
)
from repro.engine.storage import GraphStore

__all__ = [
    "CacheEntry",
    "QueryCache",
    "RankCache",
    "RankEntry",
    "cache_key",
    "QueryEngine",
    "RegisteredGraph",
    "ALGORITHM_BOUNDED",
    "ALGORITHM_SIMULATION",
    "ROUTE_CACHE",
    "ROUTE_COMPRESSED",
    "ROUTE_DIRECT",
    "Plan",
    "choose_algorithm",
    "make_plan",
    "GraphStore",
]
