"""Query engine: planner, cache, file storage, orchestration."""

from repro.engine.cache import (
    CacheEntry,
    OracleCache,
    OracleEntry,
    QueryCache,
    RankCache,
    RankEntry,
    cache_key,
)
from repro.engine.engine import QueryEngine, RegisteredGraph
from repro.engine.planner import (
    ALGORITHM_BOUNDED,
    ALGORITHM_SIMULATION,
    KERNEL_BITSET,
    KERNEL_ORACLE,
    KERNEL_PER_SOURCE,
    ROUTE_CACHE,
    ROUTE_COMPRESSED,
    ROUTE_DIRECT,
    EdgeRoute,
    Plan,
    choose_algorithm,
    kernel_costs,
    make_plan,
    route_edge,
)
from repro.engine.storage import GraphStore

__all__ = [
    "CacheEntry",
    "OracleCache",
    "OracleEntry",
    "QueryCache",
    "RankCache",
    "RankEntry",
    "cache_key",
    "QueryEngine",
    "RegisteredGraph",
    "ALGORITHM_BOUNDED",
    "ALGORITHM_SIMULATION",
    "KERNEL_BITSET",
    "KERNEL_ORACLE",
    "KERNEL_PER_SOURCE",
    "ROUTE_CACHE",
    "ROUTE_COMPRESSED",
    "ROUTE_DIRECT",
    "EdgeRoute",
    "Plan",
    "choose_algorithm",
    "kernel_costs",
    "make_plan",
    "route_edge",
    "GraphStore",
]
