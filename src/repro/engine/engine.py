"""The query engine: evaluation, ranking, caching, updates, compression.

This is the composition root of the reproduction — the module that makes
Fig. 2's architecture concrete.  A :class:`QueryEngine` owns named data
graphs and, per graph, optionally a compressed form and a set of *pinned*
queries.  Evaluation follows §II's flow: cached result → compressed graph
(when the query is compatible) → direct evaluation, with the algorithm
picked by the planner; updates flow through the incremental module for
every pinned query and through partition maintenance for the compression.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import CompressionError, EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.compression.compress import CompressedGraph, compress
from repro.compression.decompress import decompress_result
from repro.compression.maintain import MaintainedCompression
from repro.engine.cache import CacheEntry, QueryCache, cache_key
from repro.engine.planner import (
    ALGORITHM_SIMULATION,
    ROUTE_CACHE,
    ROUTE_COMPRESSED,
    Plan,
    make_plan,
)
from repro.engine.storage import GraphStore
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.inc_simulation import IncrementalSimulation
from repro.incremental.updates import Update, decompose
from repro.matching.base import MatchResult, Stopwatch
from repro.matching.bounded import match_bounded
from repro.matching.simulation import match_simulation
from repro.pattern.pattern import Pattern
from repro.ranking.metrics import RankingMetric, get_metric
from repro.ranking.social_impact import RankedMatch
from repro.ranking.social_impact import top_k as social_top_k


class RegisteredGraph:
    """A named data graph plus its per-graph engine artefacts."""

    __slots__ = ("name", "graph", "version", "compression", "reach_index")

    def __init__(self, name: str, graph: Graph) -> None:
        self.name = name
        self.graph = graph
        self.version = 0
        self.compression: MaintainedCompression | CompressedGraph | None = None
        self.reach_index = None  # BoundedReachIndex, opt-in

    def compressed(self) -> CompressedGraph | None:
        """The current compressed form, if any."""
        if isinstance(self.compression, MaintainedCompression):
            return self.compression.compressed()
        return self.compression


class QueryEngine:
    """ExpFinder's query engine.

    >>> from repro.datasets.paper_example import paper_graph, paper_pattern
    >>> engine = QueryEngine()
    >>> engine.register_graph("fig1", paper_graph())
    >>> result = engine.evaluate("fig1", paper_pattern())
    >>> sorted(result.relation.matches_of("SA"))
    ['Bob', 'Walt']
    """

    def __init__(self, store: GraphStore | None = None, cache_capacity: int = 64) -> None:
        self.store = store
        self._registered: dict[str, RegisteredGraph] = {}
        self._cache = QueryCache(capacity=cache_capacity)

    # ------------------------------------------------------------------
    # graph management
    # ------------------------------------------------------------------
    def register_graph(self, name: str, graph: Graph, replace: bool = False) -> None:
        """Make ``graph`` queryable under ``name``."""
        if name in self._registered and not replace:
            raise EvaluationError(f"graph {name!r} already registered")
        self._registered[name] = RegisteredGraph(name, graph)
        self._cache.invalidate_graph(name, keep_pinned=False)

    def load_graph(self, name: str) -> Graph:
        """Register a graph from the file store (if not already loaded)."""
        if name in self._registered:
            return self._registered[name].graph
        if self.store is None:
            raise EvaluationError("engine has no file store configured")
        graph = self.store.load_graph(name)
        self.register_graph(name, graph)
        return graph

    def graph(self, name: str) -> Graph:
        return self._entry(name).graph

    def graphs(self) -> list[str]:
        return sorted(self._registered)

    def _entry(self, name: str) -> RegisteredGraph:
        try:
            return self._registered[name]
        except KeyError:
            raise EvaluationError(f"unknown graph: {name!r}") from None

    # ------------------------------------------------------------------
    # compression management
    # ------------------------------------------------------------------
    def compress_graph(
        self,
        name: str,
        attrs: Sequence[str],
        method: str = "bisimulation",
        maintained: bool = True,
    ) -> CompressedGraph:
        """Build (and keep) a compressed form of a registered graph.

        ``maintained=True`` keeps the partition synchronized through
        :meth:`update_graph`; maintained compression requires the
        bisimulation method (see ``compression.maintain`` for why).
        """
        entry = self._entry(name)
        if maintained:
            if method != "bisimulation":
                raise CompressionError(
                    "maintained compression requires method='bisimulation'; "
                    "use maintained=False for simulation-equivalence compression"
                )
            entry.compression = MaintainedCompression(entry.graph, tuple(attrs))
        else:
            entry.compression = compress(entry.graph, tuple(attrs), method=method)
        compressed = entry.compressed()
        assert compressed is not None
        return compressed

    def drop_compression(self, name: str) -> None:
        self._entry(name).compression = None

    # ------------------------------------------------------------------
    # reach-index management
    # ------------------------------------------------------------------
    def enable_reach_index(self, name: str, max_depth: int = 4) -> None:
        """Cache truncated-BFS results for repeated bounded queries.

        The index is kept consistent through :meth:`update_graph`; mutate
        the graph only through the engine once enabled.
        """
        from repro.graph.reach_index import BoundedReachIndex

        entry = self._entry(name)
        entry.reach_index = BoundedReachIndex(entry.graph, max_depth=max_depth)

    def disable_reach_index(self, name: str) -> None:
        self._entry(name).reach_index = None

    def reach_index_stats(self, name: str) -> dict[str, int] | None:
        entry = self._entry(name)
        return entry.reach_index.stats() if entry.reach_index is not None else None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def explain(self, name: str, pattern: Pattern) -> Plan:
        """The plan :meth:`evaluate` would follow right now (no execution)."""
        entry = self._entry(name)
        compressed = entry.compressed()
        key = cache_key(name, pattern)
        return make_plan(
            pattern,
            cached=key in self._cache,
            compression_available=compressed is not None,
            compression_compatible=(
                compressed.is_compatible(pattern) if compressed is not None else False
            ),
        )

    def evaluate(
        self,
        name: str,
        pattern: Pattern,
        use_cache: bool = True,
        use_compression: bool = True,
        cache_result: bool = True,
    ) -> MatchResult:
        """Evaluate a pattern query following the §II route order."""
        pattern.validate()
        entry = self._entry(name)
        watch = Stopwatch()
        key = cache_key(name, pattern)
        cached_entry: CacheEntry | None = self._cache.get(key) if use_cache else None
        compressed = entry.compressed() if use_compression else None
        plan = make_plan(
            pattern,
            cached=cached_entry is not None,
            compression_available=entry.compressed() is not None,
            compression_compatible=(
                compressed.is_compatible(pattern) if compressed is not None else False
            ),
            use_cache=use_cache,
            use_compression=use_compression,
        )

        if plan.route == ROUTE_CACHE:
            assert cached_entry is not None
            result = MatchResult(entry.graph, pattern, cached_entry.relation)
        elif plan.route == ROUTE_COMPRESSED:
            assert compressed is not None
            quotient_result = self._run_matcher(compressed.quotient, pattern, plan)
            result = decompress_result(quotient_result, compressed)
        else:
            result = self._run_matcher(
                entry.graph, pattern, plan, reach_index=entry.reach_index
            )

        result.stats.update(
            {
                "route": plan.route,
                "algorithm": plan.algorithm,
                "seconds": watch.seconds(),
                "plan": plan,
                "graph": name,
                "graph_version": entry.version,
            }
        )
        if cache_result and plan.route != ROUTE_CACHE:
            self._cache.put(key, result.relation)
        return result

    @staticmethod
    def _run_matcher(
        graph: Graph, pattern: Pattern, plan: Plan, reach_index=None
    ) -> MatchResult:
        if plan.algorithm == ALGORITHM_SIMULATION:
            return match_simulation(graph, pattern)
        return match_bounded(graph, pattern, reach_index=reach_index)

    # ------------------------------------------------------------------
    # ranking
    # ------------------------------------------------------------------
    def top_k(
        self,
        name: str,
        pattern: Pattern,
        k: int,
        metric: str | RankingMetric = "social-impact",
        **evaluate_kwargs: Any,
    ) -> list[RankedMatch] | list[tuple[NodeId, float]]:
        """The K best experts for the pattern's output node.

        With the default paper metric the result is a list of rich
        :class:`RankedMatch` objects; other metrics return ``(node, score)``
        pairs (scores normalized lower-is-better).
        """
        pattern.validate(require_output=True)
        result = self.evaluate(name, pattern, **evaluate_kwargs)
        result_graph = result.result_graph()
        if isinstance(metric, str) and metric == "social-impact":
            return social_top_k(result_graph, k)
        chosen = get_metric(metric) if isinstance(metric, str) else metric
        return chosen.rank_all(result_graph)[:k]

    # ------------------------------------------------------------------
    # updates + pinned queries
    # ------------------------------------------------------------------
    def pin(self, name: str, pattern: Pattern) -> None:
        """Cache a query and keep its result maintained across updates."""
        pattern.validate()
        entry = self._entry(name)
        key = cache_key(name, pattern)
        existing = self._cache.get(key)
        if existing is not None and existing.pinned:
            return
        if pattern.is_simulation_pattern:
            maintainer: Any = IncrementalSimulation(entry.graph, pattern)
        else:
            maintainer = IncrementalBoundedSimulation(entry.graph, pattern)
        self._cache.put(key, maintainer.relation(), pinned=True, maintainer=maintainer)

    def unpin(self, name: str, pattern: Pattern) -> None:
        self._cache.unpin(cache_key(name, pattern))

    def update_graph(self, name: str, updates: Sequence[Update]) -> dict[str, Any]:
        """Apply edge updates; maintain pinned queries and compression.

        Returns a summary: per pinned query the ``ΔM`` (added/removed
        pairs), plus bookkeeping counters.
        """
        entry = self._entry(name)
        pinned = self._cache.pinned_entries(name)
        before = {key: cache_entry.relation for key, cache_entry in pinned}

        for update in updates:
            # Node deletions are decomposed into their incident edge
            # deletions plus a bare node removal, so every maintainer sees
            # a primitive sequence it can follow without pre-images.
            for primitive in decompose(entry.graph, update):
                primitive.apply(entry.graph)
                for _key, cache_entry in pinned:
                    cache_entry.maintainer.apply(primitive, apply_to_graph=False)
                if isinstance(entry.compression, MaintainedCompression):
                    entry.compression.apply(primitive, apply_to_graph=False)
                if entry.reach_index is not None:
                    entry.reach_index.on_update(primitive)
        if entry.compression is not None and not isinstance(
            entry.compression, MaintainedCompression
        ):
            # A static compressed graph is stale after any update.
            entry.compression = None

        deltas: dict[tuple, dict[str, Any]] = {}
        for key, cache_entry in pinned:
            fresh = cache_entry.maintainer.relation()
            added, removed = before[key].diff(fresh)
            cache_entry.relation = fresh
            deltas[key[1]] = {"added": added, "removed": removed}
        invalidated = self._cache.invalidate_graph(name, keep_pinned=True)
        entry.version += 1
        return {
            "applied": len(updates),
            "graph_version": entry.version,
            "invalidated_cache_entries": invalidated,
            "pinned_deltas": deltas,
        }

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, int]:
        return self._cache.stats()

    def persist_graph(self, name: str) -> None:
        """Write a registered graph to the file store."""
        if self.store is None:
            raise EvaluationError("engine has no file store configured")
        self.store.save_graph(name, self._entry(name).graph)

    def __repr__(self) -> str:
        return f"<QueryEngine graphs={self.graphs()}>"
