"""The query engine: evaluation, ranking, caching, updates, compression.

This is the composition root of the reproduction — the module that makes
Fig. 2's architecture concrete.  A :class:`QueryEngine` owns named data
graphs and, per graph, optionally a compressed form and a set of *pinned*
queries.  Evaluation follows §II's flow: cached result → compressed graph
(when the query is compatible) → direct evaluation, with the algorithm
picked by the planner; updates flow through the incremental module for
every pinned query and through partition maintenance for the compression.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import CompressionError, EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.graph.frozen import FrozenGraph
from repro.graph.index import AttributeIndex, batch_candidates, predicate_key
from repro.compression.compress import CompressedGraph, compress
from repro.compression.decompress import decompress_result
from repro.compression.maintain import MaintainedCompression
from repro.engine.cache import (
    CacheEntry,
    OracleCache,
    QueryCache,
    RankCache,
    SnapshotCache,
    cache_key,
)
from repro.engine.estimator import QueryBudget, estimate_pattern
from repro.engine.planner import (
    ALGORITHM_BOUNDED,
    ALGORITHM_SIMULATION,
    ROUTE_CACHE,
    ROUTE_COMPRESSED,
    ROUTE_DIRECT,
    Plan,
    make_plan,
    route_edge,
)
from repro.graph.oracle import DistanceOracle
from repro.engine.parallel import ParallelExecutor, validate_workers
from repro.engine.storage import GraphStore
from repro.incremental.inc_bounded import IncrementalBoundedSimulation
from repro.incremental.inc_simulation import IncrementalSimulation
from repro.incremental.updates import Update, decompose
from repro.matching.base import MatchRelation, MatchResult, Stopwatch
from repro.matching.bounded import match_bounded
from repro.matching.result_graph import build_result_graph
from repro.matching.simulation import match_simulation
from repro.pattern.pattern import Pattern
from repro.ranking.metrics import RankingMetric, get_metric
from repro.ranking.social_impact import RankedMatch
from repro.ranking.topk import (
    RankingContext,
    bulk_top_k_detail,
    bulk_top_k_scores,
    validate_k,
)


class RegisteredGraph:
    """A named data graph plus its per-graph engine artefacts."""

    __slots__ = (
        "name", "graph", "version", "compression", "reach_index", "attr_index",
        "oracle_config",
    )

    def __init__(self, name: str, graph: Graph) -> None:
        self.name = name
        self.graph = graph
        self.version = 0
        self.compression: MaintainedCompression | CompressedGraph | None = None
        self.reach_index = None  # BoundedReachIndex, opt-in
        # Attribute postings build lazily on first use, so registration is
        # free; the engine keeps them consistent through update_graph().
        self.attr_index: AttributeIndex | None = AttributeIndex(graph)
        # Distance-oracle build parameters ({"cap": ..., "top": ...}), or
        # None while disabled; instances live in the engine's OracleCache.
        self.oracle_config: dict[str, Any] | None = None

    def compressed(self) -> CompressedGraph | None:
        """The current compressed form, if any."""
        if isinstance(self.compression, MaintainedCompression):
            return self.compression.compressed()
        return self.compression


class QueryEngine:
    """ExpFinder's query engine.

    >>> from repro.datasets.paper_example import paper_graph, paper_pattern
    >>> engine = QueryEngine()
    >>> engine.register_graph("fig1", paper_graph())
    >>> result = engine.evaluate("fig1", paper_pattern())
    >>> sorted(result.relation.matches_of("SA"))
    ['Bob', 'Walt']
    """

    def __init__(
        self,
        store: GraphStore | None = None,
        cache_capacity: int = 64,
        rank_cache_capacity: int = 16,
        snapshot_cache_capacity: int = 8,
        oracle_cache_capacity: int = 4,
    ) -> None:
        self.store = store
        self._registered: dict[str, RegisteredGraph] = {}
        self._cache = QueryCache(capacity=cache_capacity)
        # Ranked results are cached separately: a RankingContext (snapshot
        # + memoized Dijkstra runs) is much heavier than a relation, and
        # its validity is tied to Graph.version rather than LRU pressure.
        self._rank_cache = RankCache(capacity=rank_cache_capacity)
        # Frozen CSR snapshots, one per graph, built on the first direct
        # evaluation and reused by every traversal kernel (matchers, ball
        # decomposition, shard shipping) until the graph's version moves.
        self._snapshots = SnapshotCache(capacity=snapshot_cache_capacity, store=store)
        # Distance oracles (landmark labels over the snapshots), for graphs
        # with the oracle enabled; they survive distance-preserving update
        # batches and are rebuilt lazily after structural ones.
        self._oracles = OracleCache(capacity=oracle_cache_capacity, store=store)
        # One executor per worker count, alive across calls (released by
        # close()).  Pool reuse only helps the ball-subgraph sharded path;
        # the shared-graph and batch-farming paths fork a fresh pool per
        # call by design (children must snapshot the graph at fork time).
        self._executors: dict[int, ParallelExecutor] = {}

    def _executor(self, workers: int) -> ParallelExecutor:
        executor = self._executors.get(workers)
        if executor is None:
            executor = self._executors[workers] = ParallelExecutor(workers)
        return executor

    def close(self) -> None:
        """Release the engine's worker pools (idempotent; engine reusable)."""
        for executor in self._executors.values():
            executor.close()
        self._executors.clear()

    # ------------------------------------------------------------------
    # graph management
    # ------------------------------------------------------------------
    def register_graph(self, name: str, graph: Graph, replace: bool = False) -> None:
        """Make ``graph`` queryable under ``name``."""
        if name in self._registered and not replace:
            raise EvaluationError(f"graph {name!r} already registered")
        self._registered[name] = RegisteredGraph(name, graph)
        self._cache.invalidate_graph(name, keep_pinned=False)
        self._rank_cache.invalidate_graph(name)
        self._snapshots.invalidate_graph(name)
        self._oracles.invalidate_graph(name)

    def load_graph(self, name: str) -> Graph:
        """Register a graph from the file store (if not already loaded)."""
        if name in self._registered:
            return self._registered[name].graph
        if self.store is None:
            raise EvaluationError("engine has no file store configured")
        graph = self.store.load_graph(name)
        self.register_graph(name, graph)
        return graph

    def graph(self, name: str) -> Graph:
        return self._entry(name).graph

    def graphs(self) -> list[str]:
        return sorted(self._registered)

    def _entry(self, name: str) -> RegisteredGraph:
        try:
            return self._registered[name]
        except KeyError:
            known = ", ".join(sorted(self._registered)) or "none"
            raise EvaluationError(
                f"unknown graph: {name!r} (registered: {known}; "
                "use register_graph() or load_graph() first)"
            ) from None

    # ------------------------------------------------------------------
    # compression management
    # ------------------------------------------------------------------
    def compress_graph(
        self,
        name: str,
        attrs: Sequence[str],
        method: str = "bisimulation",
        maintained: bool = True,
    ) -> CompressedGraph:
        """Build (and keep) a compressed form of a registered graph.

        ``maintained=True`` keeps the partition synchronized through
        :meth:`update_graph`; maintained compression requires the
        bisimulation method (see ``compression.maintain`` for why).
        """
        entry = self._entry(name)
        if maintained:
            if method != "bisimulation":
                raise CompressionError(
                    "maintained compression requires method='bisimulation'; "
                    "use maintained=False for simulation-equivalence compression"
                )
            entry.compression = MaintainedCompression(entry.graph, tuple(attrs))
        else:
            entry.compression = compress(entry.graph, tuple(attrs), method=method)
        compressed = entry.compressed()
        assert compressed is not None
        return compressed

    def drop_compression(self, name: str) -> None:
        self._entry(name).compression = None

    # ------------------------------------------------------------------
    # reach-index management
    # ------------------------------------------------------------------
    def enable_reach_index(self, name: str, max_depth: int = 4) -> None:
        """Cache truncated-BFS results for repeated bounded queries.

        The index is kept consistent through :meth:`update_graph`; mutate
        the graph only through the engine once enabled.
        """
        from repro.graph.reach_index import BoundedReachIndex

        entry = self._entry(name)
        entry.reach_index = BoundedReachIndex(entry.graph, max_depth=max_depth)

    def disable_reach_index(self, name: str) -> None:
        self._entry(name).reach_index = None

    def reach_index_stats(self, name: str) -> dict[str, int] | None:
        entry = self._entry(name)
        return entry.reach_index.stats() if entry.reach_index is not None else None

    # ------------------------------------------------------------------
    # distance-oracle management
    # ------------------------------------------------------------------
    def enable_oracle(
        self, name: str, cap: int | None = None, top: int | None = None
    ) -> None:
        """Serve bounded reachability by landmark label merges.

        The oracle (:class:`~repro.graph.oracle.DistanceOracle`) is built
        lazily from the graph's frozen snapshot on the first bounded
        evaluation and cached until a structural update invalidates it;
        the planner's cost model then routes selective pattern edges to
        pairwise label merges instead of ball enumeration.  ``cap`` bounds
        the exact-distance depth (None — the default — covers every bound
        including ``'*'``); ``top`` tunes the sequential landmark prefix.
        Once enabled, the oracle supersedes a
        :class:`~repro.graph.reach_index.BoundedReachIndex` as the graph's
        reach accelerator: the matcher runs the frozen kernels (with
        oracle routing) and the reach index is not consulted.
        """
        entry = self._entry(name)
        config = {"cap": cap, "top": top}
        if entry.oracle_config != config:
            entry.oracle_config = config
            # A cached instance may have been built with other parameters.
            self._oracles.invalidate_graph(name)

    def disable_oracle(self, name: str) -> None:
        """Drop the oracle config and any cached labels for ``name``."""
        self._entry(name).oracle_config = None
        self._oracles.invalidate_graph(name)

    def warm_oracle(self, name: str, workers: int | None = None) -> dict[str, Any]:
        """Build the enabled oracle now (instead of on first evaluation).

        Long-running deployments call this right after
        :meth:`enable_oracle` so the first query never pays the build;
        ``workers`` > 1 fans the phase-two label construction across the
        engine's worker pool.  Returns :meth:`oracle_stats` for the warm
        labels.  Raises :class:`EvaluationError` when the oracle is not
        enabled for ``name``.
        """
        entry = self._entry(name)
        if entry.oracle_config is None:
            raise EvaluationError(
                f"oracle not enabled for graph {name!r}; call enable_oracle() first"
            )
        self._oracle_for(entry, workers=validate_workers(workers))
        stats = self.oracle_stats(name)
        assert stats is not None
        return stats

    def oracle_stats(self, name: str) -> dict[str, Any] | None:
        """Build/label/query counters of the cached oracle, or None.

        ``None`` means the oracle is disabled; an enabled-but-cold oracle
        reports ``{"state": "cold"}`` plus its configured parameters.
        """
        entry = self._entry(name)
        if entry.oracle_config is None:
            return None
        cached = self._oracles.peek(name)  # repro-lint: disable=cache-version-guard -- read-only introspection; the next line compares graph_version explicitly and a stale entry must survive for refresh_version
        if cached is None or cached.graph_version != entry.graph.version:
            return {"state": "cold", **entry.oracle_config}
        stats = cached.oracle.stats()
        stats["state"] = "warm"
        return stats

    def _oracle_for(
        self, entry: RegisteredGraph, workers: int = 1
    ) -> DistanceOracle | None:
        """The cached oracle for a graph's current version (or build it)."""
        if entry.oracle_config is None:
            return None
        oracle = self._oracles.get(
            entry.name, entry.graph.version, config=entry.oracle_config
        )
        if oracle is None:
            frozen = self._frozen_snapshot(entry)
            if workers > 1:
                oracle = self._executor(workers).build_oracle(
                    frozen,
                    cap=entry.oracle_config["cap"],
                    top=entry.oracle_config["top"],
                )
            else:
                oracle = DistanceOracle.build(
                    frozen,
                    cap=entry.oracle_config["cap"],
                    top=entry.oracle_config["top"],
                )
            self._oracles.put(entry.name, oracle, entry.graph.version)
        return oracle

    # ------------------------------------------------------------------
    # attribute-index management
    # ------------------------------------------------------------------
    def enable_attr_index(self, name: str) -> None:
        """(Re)attach the attribute index (on by default; builds lazily)."""
        entry = self._entry(name)
        if entry.attr_index is None:
            entry.attr_index = AttributeIndex(entry.graph)

    def disable_attr_index(self, name: str) -> None:
        """Drop the attribute index; candidate generation falls back to scans."""
        self._entry(name).attr_index = None

    def attr_index_stats(self, name: str) -> dict[str, int] | None:
        entry = self._entry(name)
        return entry.attr_index.stats() if entry.attr_index is not None else None

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def explain(
        self, name: str, pattern: Pattern, budget: QueryBudget | None = None
    ) -> Plan:
        """The plan :meth:`evaluate` would follow right now (no matching).

        Direct-route plans also report the frozen-snapshot and
        distance-oracle state, and — for bounded patterns on graphs with
        the oracle *enabled* — the per-edge kernel routing: which pattern
        edges the cost model sends to oracle-pairwise label merges,
        per-source BFS enumeration, or the bitset traversal, with the
        losing estimates alongside.  Kernel routing needs candidate
        cardinalities, so that one case runs the same (indexed) candidate
        generation evaluation would; with the oracle disabled, explain
        stays pure metadata and no graph work happens.

        With a ``budget``, direct bounded plans additionally run the
        sampling estimator over the frozen snapshot and report the
        per-edge frontier estimates next to the configured limits — what
        guarded evaluation would route from, and roughly how much of the
        budget the query looks set to spend.
        """
        entry = self._entry(name)
        key = cache_key(name, pattern)
        plan = self._plan_query(
            pattern,
            cached=self._cache.fresh(key, entry.graph.version),
            available=entry.compressed(),
        )
        if plan.route == ROUTE_DIRECT:
            if not self._snapshot_serves(entry, plan):
                # The reach index serves the sequential bounded matcher's
                # BFS runs, so no snapshot is involved there.  (Sharded
                # evaluation with workers > 1 still snapshots — workers
                # have no reach index.)
                note = (
                    "frozen snapshot: bypassed sequentially (reach index "
                    "serves bounded BFS; workers > 1 still snapshot)"
                )
            else:
                snapshot = self._snapshots.peek(name)  # repro-lint: disable=cache-version-guard -- explain() must not drop or fault in snapshots; version is compared explicitly below
                if (
                    snapshot is not None
                    and snapshot.graph_version == entry.graph.version
                ):
                    note = (
                        "frozen snapshot: warm "
                        f"(graph version {snapshot.graph_version})"
                    )
                else:
                    note = "frozen snapshot: cold (built on first direct evaluation)"
            notes = [note]
            edge_routes: tuple = ()
            if plan.algorithm == ALGORITHM_BOUNDED and pattern.num_edges:
                oracle_note, edge_routes = self._explain_kernels(entry, pattern)
                if oracle_note:
                    notes.append(oracle_note)
            if budget is not None and plan.algorithm == ALGORITHM_BOUNDED:
                budget.validate()
                notes.extend(self._explain_budget(entry, pattern, budget))
            plan = Plan(
                plan.route,
                plan.algorithm,
                plan.reasons + tuple(notes),
                edge_routes,
            )
        return plan

    def _explain_budget(
        self, entry: RegisteredGraph, pattern: Pattern, budget: QueryBudget
    ) -> list[str]:
        """Sampled cardinality estimates vs the configured limits."""
        from repro.matching.simulation import simulation_candidates

        visits = "unlimited" if budget.node_visits is None else str(budget.node_visits)
        seconds = "unlimited" if budget.seconds is None else f"{budget.seconds:g}s"
        lines = [
            f"budget: {visits} node visits, {seconds} wall clock "
            f"({'partial results allowed' if budget.allow_partial else 'hard failure on breach'})"
        ]
        if pattern.num_edges:
            frozen = self._frozen_snapshot(entry)
            ids = frozen.ids()
            candidates = simulation_candidates(
                entry.graph, pattern, index=entry.attr_index
            )
            candidate_ids = {
                u: frozenset(ids[v] for v in vs) for u, vs in candidates.items()
            }
            estimate = estimate_pattern(frozen, pattern, candidate_ids)
            lines.extend(f"estimate: {line}" for line in estimate.describe_lines())
        return lines

    def _explain_kernels(
        self, entry: RegisteredGraph, pattern: Pattern
    ) -> tuple[str, tuple]:
        """Oracle-state note plus per-edge kernel routes for ``explain``.

        Routing uses the cached oracle's measured label profile when one
        is warm; a cold oracle routes every edge to the enumeration
        kernels, and the note says why.  With the oracle *disabled* no
        routes are computed at all — routing needs candidate
        cardinalities, and explain must not pay candidate generation for
        graphs that never opted into the oracle.
        """
        from repro.matching.bounded import FROZEN_BULK_DEPTH
        from repro.matching.simulation import simulation_candidates

        if entry.oracle_config is None:
            note = "distance oracle: disabled (enable_oracle() routes selective edges)"
            return note, ()
        cached = self._oracles.peek(entry.name)  # repro-lint: disable=cache-version-guard -- explain() reports warm/cold without side effects; version is compared explicitly on the next line
        if cached is not None and cached.graph_version == entry.graph.version:
            note = "distance oracle: warm"
            profile = cached.oracle.profile()
        else:
            note = (
                "distance oracle: cold (labels build on the first bounded "
                "evaluation; edges route to enumeration until then)"
            )
            profile = None
        candidates = simulation_candidates(
            entry.graph, pattern, index=entry.attr_index
        )
        num_nodes = entry.graph.num_nodes
        num_edges = entry.graph.num_edges
        routes = []
        for source, target, bound in pattern.edges():
            routes.append(
                route_edge(
                    (source, target),
                    bound,
                    len(candidates[source]),
                    len(candidates[target]),
                    num_nodes,
                    num_edges,
                    # kernel_costs owns the cap-coverage gate: an uncovered
                    # bound simply gets no oracle estimate.
                    profile,
                    bulk_depth=FROZEN_BULK_DEPTH,
                )
            )
        return note, tuple(routes)

    @staticmethod
    def _snapshot_serves(entry: RegisteredGraph, plan: Plan) -> bool:
        """Whether the sequential direct route would use a frozen snapshot.

        The one predicate :meth:`explain` and :meth:`_dispatch_route`
        share: with a reach index attached, the bounded matcher serves its
        BFS runs from that cache and ignores a snapshot, so freezing one
        would be pure waste.  An enabled distance oracle outranks the
        reach index — its labels live on the snapshot's ids, so the frozen
        kernels (with oracle routing) run instead.  (Sharded ``workers >
        1`` evaluation always snapshots — worker processes have no reach
        index.)
        """
        return (
            entry.reach_index is None
            or entry.oracle_config is not None
            or plan.algorithm == ALGORITHM_SIMULATION
        )

    def _frozen_snapshot(self, entry: RegisteredGraph) -> FrozenGraph:
        """The cached CSR snapshot for a graph's current version (or build it)."""
        frozen = self._snapshots.get(entry.name, entry.graph.version)
        if frozen is None:
            frozen = FrozenGraph.freeze(entry.graph)
            self._snapshots.put(entry.name, frozen, entry.graph.version)
        return frozen

    @staticmethod
    def _plan_query(
        pattern: Pattern,
        cached: bool,
        available: CompressedGraph | None,
        use_cache: bool = True,
        use_compression: bool = True,
    ) -> Plan:
        """The one :func:`make_plan` call site shared by every evaluate path.

        ``available`` is the single compression snapshot: it drives both
        availability and compatibility, so the plan can never describe two
        different compressed graphs.
        """
        return make_plan(
            pattern,
            cached=cached,
            compression_available=available is not None,
            compression_compatible=(
                available.is_compatible(pattern) if available is not None else False
            ),
            use_cache=use_cache,
            use_compression=use_compression,
        )

    @staticmethod
    def _stamp_stats(
        result: MatchResult,
        route: str,
        plan: Plan,
        name: str,
        entry: RegisteredGraph,
        seconds: float,
        batch: dict[str, Any] | None = None,
    ) -> None:
        stats: dict[str, Any] = {
            "route": route,
            "algorithm": plan.algorithm,
            "seconds": seconds,
            "plan": plan,
            "graph": name,
            "graph_version": entry.version,
        }
        if batch is not None:
            stats["batch"] = batch
        result.stats.update(stats)

    def evaluate(
        self,
        name: str,
        pattern: Pattern,
        use_cache: bool = True,
        use_compression: bool = True,
        cache_result: bool = True,
        workers: int | None = None,
        budget: QueryBudget | None = None,
    ) -> MatchResult:
        """Evaluate a pattern query following the §II route order.

        ``workers`` > 1 evaluates the *direct* route with sharded
        parallelism (:class:`~repro.engine.parallel.ParallelExecutor`):
        the graph is decomposed into distance-bounded balls and the
        successor-row work fans out to a worker pool, producing exactly
        the sequential relation.  Cache and compressed routes are already
        cheap and stay sequential.

        A ``budget`` (:class:`~repro.engine.estimator.QueryBudget`) guards
        direct bounded evaluation — the one route/algorithm combination
        that can run away (cache and compressed routes are cheap by
        construction; the quadratic simulation matcher is not guarded, so
        sequential and parallel runs agree on the partial flag).  A blown
        budget raises :class:`~repro.errors.BudgetExceededError`, or with
        ``allow_partial=True`` returns a sound subset of the exact answer
        flagged ``stats["partial"] = True``.  Partial results are never
        cached.
        """
        pattern.validate()
        workers = validate_workers(workers)
        if budget is not None:
            budget.validate()
        entry = self._entry(name)
        watch = Stopwatch()
        key = cache_key(name, pattern)
        cached_entry: CacheEntry | None = (
            self._cache.get(key, entry.graph.version) if use_cache else None
        )
        available = entry.compressed()
        compressed = available if use_compression else None
        plan = self._plan_query(
            pattern,
            cached=cached_entry is not None,
            available=available,
            use_cache=use_cache,
            use_compression=use_compression,
        )

        bounded_direct = (
            plan.route == ROUTE_DIRECT and plan.algorithm != ALGORITHM_SIMULATION
        )
        if workers > 1 and plan.route == ROUTE_DIRECT:
            result = self._executor(workers).match(
                entry.graph,
                pattern,
                index=entry.attr_index,
                frozen=self._frozen_snapshot(entry),
                oracle=(
                    self._oracle_for(entry, workers=workers)
                    if plan.algorithm != ALGORITHM_SIMULATION
                    else None
                ),
                budget=budget if bounded_direct else None,
            )
        else:
            result = self._dispatch_route(
                entry,
                pattern,
                plan,
                cached_relation=(
                    cached_entry.relation if cached_entry is not None else None
                ),
                compressed=compressed,
                budget=budget if bounded_direct else None,
            )

        self._stamp_stats(result, plan.route, plan, name, entry, watch.seconds())
        # A partial result is an artefact of this call's budget, not the
        # query's answer — caching it would serve an under-approximation
        # to unbudgeted callers.
        if (
            cache_result
            and plan.route != ROUTE_CACHE
            and not result.stats.get("partial")
        ):
            self._cache.put(key, result.relation, entry.graph.version)
        return result

    def evaluate_many(
        self,
        name: str,
        patterns: Sequence[Pattern],
        use_cache: bool = True,
        use_compression: bool = True,
        cache_result: bool = True,
        workers: int | None = None,
        budget: QueryBudget | None = None,
    ) -> list[MatchResult]:
        """Evaluate a batch of pattern queries, amortising shared work.

        A ``budget`` applies *per query* (fresh limits for each bounded
        direct-route pattern, sequentially and in pool workers alike);
        partial results are neither cached nor reused for identical
        queries later in the batch.

        All queries are planned up front; every *direct-route* query then
        draws its candidate sets from one shared pool computed once per
        distinct predicate (indexed where possible, a single scan for the
        rest) instead of each query re-scanning the graph.  Cache and
        compressed routes behave exactly as in :meth:`evaluate`, and a
        query repeated inside the batch reuses the relation computed
        earlier in the same call.  Returns one :class:`MatchResult` per
        pattern, in input order.

        ``workers`` > 1 parallelises the batch: each distinct direct-route
        query becomes one worker-pool task (with its shared candidate
        sets precomputed here), so many small queries run concurrently.
        A single-query batch instead delegates to :meth:`evaluate`'s
        *per-query* sharded parallelism — one big query is split across
        workers rather than occupying one.  Farmed results carry no
        refinement state (relations cross a process boundary); deriving a
        result graph from them recomputes witnesses on demand.

        >>> from repro.datasets.paper_example import paper_graph, paper_pattern
        >>> engine = QueryEngine()
        >>> engine.register_graph("fig1", paper_graph())
        >>> results = engine.evaluate_many("fig1", [paper_pattern(), paper_pattern()])
        >>> [sorted(r.relation.matches_of("SA")) for r in results]
        [['Bob', 'Walt'], ['Bob', 'Walt']]
        """
        entry = self._entry(name)
        patterns = list(patterns)
        for pattern in patterns:
            pattern.validate()
        workers = validate_workers(workers)
        if budget is not None:
            budget.validate()
        if workers > 1 and len(patterns) == 1:
            result = self.evaluate(
                name,
                patterns[0],
                use_cache=use_cache,
                use_compression=use_compression,
                cache_result=cache_result,
                workers=workers,
                budget=budget,
            )
            # Preserve evaluate_many's contract: every result carries batch
            # stats (the CLI and callers read them unconditionally).  Like
            # the multi-query path, distinct predicates are counted only
            # when the query actually went the direct route (0 on a cache
            # or compressed hit).
            result.stats["batch"] = {
                "size": 1,
                "distinct_predicates": (
                    len(
                        {
                            predicate_key(patterns[0].predicate(u))
                            for u in patterns[0].nodes()
                        }
                    )
                    if result.stats["route"] == ROUTE_DIRECT
                    else 0
                ),
                "workers": workers,
                "seconds_total": result.stats["seconds"],
            }
            return [result]
        watch = Stopwatch()
        available = entry.compressed()
        compressed = available if use_compression else None

        planned: list[tuple[Pattern, tuple, Plan, CacheEntry | None]] = []
        direct_predicates: dict[tuple, Any] = {}
        for pattern in patterns:
            key = cache_key(name, pattern)
            cached_entry = (
                self._cache.get(key, entry.graph.version) if use_cache else None
            )
            plan = self._plan_query(
                pattern,
                cached=cached_entry is not None,
                available=available,
                use_cache=use_cache,
                use_compression=use_compression,
            )
            planned.append((pattern, key, plan, cached_entry))
            if plan.route == ROUTE_DIRECT:
                for pattern_node in pattern.nodes():
                    predicate = pattern.predicate(pattern_node)
                    direct_predicates.setdefault(predicate_key(predicate), predicate)

        shared = (
            batch_candidates(
                entry.graph, direct_predicates.values(), index=entry.attr_index
            )
            if direct_predicates
            else {}
        )

        def shared_candidates(pattern: Pattern) -> dict[str, set[NodeId]]:
            # The shared sets are handed over as-is: neither matcher
            # mutates its `candidates` argument (refine_simulation and
            # BoundedState both copy internally).
            return {
                u: shared[predicate_key(pattern.predicate(u))]
                for u in pattern.nodes()
            }

        # Per-batch parallelism: each distinct direct-route query becomes
        # one pool task carrying its precomputed candidate sets; cache and
        # compressed routes stay in this process.
        farmed: dict[tuple, tuple[MatchRelation, dict[str, Any]]] = {}
        if workers > 1:
            task_keys: list[tuple] = []
            tasks: list[tuple[Pattern, dict[str, tuple]]] = []
            seen_keys: set[tuple] = set()
            for pattern, key, plan, _cached_entry in planned:
                if plan.route == ROUTE_DIRECT and key not in seen_keys:
                    seen_keys.add(key)
                    task_keys.append(key)
                    tasks.append(
                        (
                            pattern,
                            {
                                u: predicate_key(pattern.predicate(u))
                                for u in pattern.nodes()
                            },
                        )
                    )
            bounded_tasks = any(
                not task_pattern.is_simulation_pattern for task_pattern, _keys in tasks
            )
            outcomes = self._executor(workers).match_many(
                entry.graph,
                tasks,
                shared,
                frozen=self._frozen_snapshot(entry) if tasks else None,
                oracle=(
                    self._oracle_for(entry, workers=workers)
                    if tasks and bounded_tasks
                    else None
                ),
                budget=budget,
            )
            farmed = dict(zip(task_keys, outcomes))

        results: list[MatchResult] = []
        fresh: dict[tuple, MatchRelation] = {}
        # One dict shared by every result; seconds_total is stamped once the
        # whole batch has run (per-result stamping would under-report it).
        batch_info: dict[str, Any] = {
            "size": len(patterns),
            "distinct_predicates": len(direct_predicates),
            "workers": workers,
        }
        for pattern, key, plan, cached_entry in planned:
            query_watch = Stopwatch()
            route = plan.route
            if route != ROUTE_CACHE and key in fresh:
                # An identical query appeared earlier in this batch; reuse
                # its relation and stamp a plan that says so (the original
                # plan's route was never executed for this query).
                result = MatchResult(entry.graph, pattern, fresh[key])
                route = ROUTE_CACHE
                plan = Plan(
                    ROUTE_CACHE,
                    plan.algorithm,
                    ("identical query already evaluated earlier in this batch",),
                )
            elif route == ROUTE_DIRECT and key in farmed:
                relation, worker_stats = farmed[key]
                result = MatchResult(
                    entry.graph, pattern, relation, stats=dict(worker_stats)
                )
            else:
                candidates = (
                    shared_candidates(pattern) if route == ROUTE_DIRECT else None
                )
                result = self._dispatch_route(
                    entry,
                    pattern,
                    plan,
                    cached_relation=(
                        cached_entry.relation if cached_entry is not None else None
                    ),
                    compressed=compressed,
                    candidates=candidates,
                    budget=(
                        budget
                        if route == ROUTE_DIRECT
                        and plan.algorithm != ALGORITHM_SIMULATION
                        else None
                    ),
                )
            self._stamp_stats(
                result,
                route,
                plan,
                name,
                entry,
                # Parent-side wall time is meaningless for a query that ran
                # in a pool worker; keep the worker-measured seconds there.
                result.stats.get("seconds", query_watch.seconds())
                if key in farmed
                else query_watch.seconds(),
                batch=batch_info,
            )
            if route != ROUTE_CACHE and not result.stats.get("partial"):
                fresh[key] = result.relation
                if cache_result:
                    self._cache.put(key, result.relation, entry.graph.version)
            results.append(result)
        batch_info["seconds_total"] = watch.seconds()
        return results

    def _dispatch_route(
        self,
        entry: RegisteredGraph,
        pattern: Pattern,
        plan: Plan,
        cached_relation: MatchRelation | None,
        compressed: CompressedGraph | None,
        candidates: dict[str, set[NodeId]] | None = None,
        budget: QueryBudget | None = None,
    ) -> MatchResult:
        """Execute a plan's route — the one dispatch both evaluate paths use."""
        if plan.route == ROUTE_CACHE:
            assert cached_relation is not None
            return MatchResult(entry.graph, pattern, cached_relation)
        if plan.route == ROUTE_COMPRESSED:
            # Quotient graphs are small by construction; freezing them
            # would cost more bookkeeping than the matcher saves.
            assert compressed is not None
            quotient_result = self._run_matcher(compressed.quotient, pattern, plan)
            return decompress_result(quotient_result, compressed)
        bounded = plan.algorithm != ALGORITHM_SIMULATION
        oracle = self._oracle_for(entry) if bounded else None
        return self._run_matcher(
            entry.graph,
            pattern,
            plan,
            # An enabled oracle supersedes the reach index as the reach
            # accelerator: the matcher runs the frozen kernels instead.
            reach_index=entry.reach_index if oracle is None else None,
            index=None if candidates is not None else entry.attr_index,
            candidates=candidates,
            frozen=(
                self._frozen_snapshot(entry)
                if self._snapshot_serves(entry, plan)
                else None
            ),
            oracle=oracle,
            budget=budget,
        )

    @staticmethod
    def _run_matcher(
        graph: Graph,
        pattern: Pattern,
        plan: Plan,
        reach_index: Any = None,
        index: AttributeIndex | None = None,
        candidates: dict[str, set[NodeId]] | None = None,
        frozen: FrozenGraph | None = None,
        oracle: DistanceOracle | None = None,
        budget: QueryBudget | None = None,
    ) -> MatchResult:
        if plan.algorithm == ALGORITHM_SIMULATION:
            return match_simulation(
                graph, pattern, index=index, candidates=candidates, frozen=frozen
            )
        return match_bounded(
            graph,
            pattern,
            reach_index=reach_index,
            index=index,
            candidates=candidates,
            frozen=frozen,
            oracle=oracle,
            budget=budget,
        )

    # ------------------------------------------------------------------
    # ranking
    # ------------------------------------------------------------------
    def top_k(
        self,
        name: str,
        pattern: Pattern,
        k: int,
        metric: str | RankingMetric = "social-impact",
        workers: int | None = None,
        use_rank_cache: bool = True,
        **evaluate_kwargs: Any,
    ) -> list[RankedMatch] | list[tuple[NodeId, float]]:
        """The K best experts for the pattern's output node.

        With the default paper metric the result is a list of rich
        :class:`RankedMatch` objects; other metrics return ``(node, score)``
        pairs (scores normalized lower-is-better).

        Evaluation follows the usual route order, then ranking runs
        through a bulk :class:`~repro.ranking.topk.RankingContext`: one
        result-graph snapshot, memoized distance work shared across
        metrics and calls, lazy full scoring behind cheap admissible
        bounds, and — with ``workers`` > 1 — per-match scoring fanned out
        through the engine's :class:`ParallelExecutor` (output identical
        to sequential).  Contexts are cached per ``(graph, pattern)`` and
        invalidated by ``Graph.version``; for *pinned* queries
        :meth:`update_graph` re-ranks only the matches an update touched.
        ``k`` must be a positive integer for every metric.
        """
        validate_k(k)
        pattern.validate(require_output=True)
        chosen = get_metric(metric) if isinstance(metric, str) else metric
        workers = validate_workers(workers)
        context = self._ranking_context(
            name, pattern, workers=workers, use_rank_cache=use_rank_cache,
            **evaluate_kwargs,
        )
        score_many = (
            self._executor(workers).rank_many if workers > 1 else None
        )
        if isinstance(metric, str) and metric == "social-impact":
            return bulk_top_k_detail(context, k, score_many=score_many)
        return bulk_top_k_scores(context, k, chosen, score_many=score_many)

    def _ranking_context(
        self,
        name: str,
        pattern: Pattern,
        workers: int = 1,
        use_rank_cache: bool = True,
        **evaluate_kwargs: Any,
    ) -> RankingContext:
        """The (possibly cached) bulk-ranking context for one query."""
        entry = self._entry(name)
        key = cache_key(name, pattern)
        if use_rank_cache:
            cached = self._rank_cache.get(key, entry.graph.version)
            if cached is not None:
                return cached.context
        result = self.evaluate(name, pattern, workers=workers, **evaluate_kwargs)
        context = RankingContext(result.result_graph())
        # A guarded evaluation that tripped produced a partial relation;
        # rankings over it are valid for this call but must not be served
        # to later (possibly unbudgeted) top_k calls.
        if use_rank_cache and not result.stats.get("partial"):
            self._rank_cache.put(key, context, entry.graph.version)
        return context

    # ------------------------------------------------------------------
    # updates + pinned queries
    # ------------------------------------------------------------------
    def pin(self, name: str, pattern: Pattern) -> None:
        """Cache a query and keep its result maintained across updates."""
        pattern.validate()
        entry = self._entry(name)
        key = cache_key(name, pattern)
        existing = self._cache.get(key, entry.graph.version)
        if existing is not None and existing.pinned:
            return
        if pattern.is_simulation_pattern:
            maintainer: Any = IncrementalSimulation(
                entry.graph, pattern, index=entry.attr_index
            )
        else:
            maintainer = IncrementalBoundedSimulation(
                entry.graph, pattern, index=entry.attr_index
            )
        self._cache.put(
            key,
            maintainer.relation(),
            entry.graph.version,
            pinned=True,
            maintainer=maintainer,
        )

    def unpin(self, name: str, pattern: Pattern) -> None:
        self._cache.unpin(cache_key(name, pattern))

    def update_graph(self, name: str, updates: Sequence[Update]) -> dict[str, Any]:
        """Apply edge updates; maintain pinned queries and compression.

        Returns a summary: per pinned query the ``ΔM`` (added/removed
        pairs), plus bookkeeping counters.
        """
        entry = self._entry(name)
        pinned = self._cache.pinned_entries(name)
        before = {key: cache_entry.relation for key, cache_entry in pinned}

        oracle_survives = True
        for update in updates:
            # Node deletions are decomposed into their incident edge
            # deletions plus a bare node removal, so every maintainer sees
            # a primitive sequence it can follow without pre-images.
            for primitive in decompose(entry.graph, update):
                oracle_survives = oracle_survives and DistanceOracle.survives(
                    primitive
                )
                prior_version = entry.graph.version
                primitive.apply(entry.graph)
                for _key, cache_entry in pinned:
                    cache_entry.maintainer.apply(primitive, apply_to_graph=False)
                if isinstance(entry.compression, MaintainedCompression):
                    entry.compression.apply(primitive, apply_to_graph=False)
                if entry.reach_index is not None:
                    entry.reach_index.on_update(primitive)
                if entry.attr_index is not None:
                    entry.attr_index.on_update(primitive, prior_version=prior_version)
        if entry.compression is not None and not isinstance(
            entry.compression, MaintainedCompression
        ):
            # A static compressed graph is stale after any update.
            entry.compression = None

        deltas: dict[tuple, dict[str, Any]] = {}
        for key, cache_entry in pinned:
            fresh = cache_entry.maintainer.relation()
            added, removed = before[key].diff(fresh)
            cache_entry.relation = fresh
            cache_entry.graph_version = entry.graph.version
            deltas[key[1]] = {"added": added, "removed": removed}
        rank_maintenance, refreshed_keys = self._refresh_pinned_rankings(entry, pinned)
        # Contexts of non-pinned queries are stale now; drop them eagerly
        # (version checks would catch them lazily, but the snapshots are
        # the heaviest thing the engine caches).  The frozen CSR snapshot
        # is version-stale too — drop it so the memory is released before
        # the next direct evaluation re-freezes.
        self._rank_cache.invalidate_graph(name, keep=refreshed_keys)
        self._snapshots.invalidate_graph(name)
        # Oracle labels are shortest-path distances: a batch of purely
        # distance-preserving primitives (attribute writes, bare node
        # insertions) leaves them exact, so the entry's validity advances
        # in place instead of paying a rebuild.  Anything structural drops
        # the labels; the next bounded evaluation rebuilds lazily.
        if oracle_survives:
            self._oracles.refresh_version(name, entry.graph.version)
        else:
            self._oracles.invalidate_graph(name)
        invalidated = self._cache.invalidate_graph(name, keep_pinned=True)
        entry.version += 1
        return {
            "applied": len(updates),
            "graph_version": entry.version,
            "invalidated_cache_entries": invalidated,
            "pinned_deltas": deltas,
            "rank_maintenance": rank_maintenance,
        }

    def _refresh_pinned_rankings(
        self,
        entry: RegisteredGraph,
        pinned: Sequence[tuple[tuple, CacheEntry]],
    ) -> tuple[dict[tuple, dict[str, int]], set[tuple]]:
        """Re-rank only the matches an update batch actually touched.

        For every pinned query whose ranking context is cached, the result
        graph is rebuilt from the maintained relation (reusing the bounded
        maintainer's refinement state for witness edges), the old and new
        snapshots are diffed, and every memoized detail whose impact set is
        disjoint from the changed nodes is carried over untouched — same
        object, no Dijkstra.  Touched matches that were ranked before are
        eagerly re-scored so the refreshed entry is as warm as the old one.
        Returns per-query ``{reused, rescored, changed_nodes}`` counters and
        the set of refreshed cache keys.
        """
        summary: dict[tuple, dict[str, int]] = {}
        refreshed: set[tuple] = set()
        for key, cache_entry in pinned:
            rank_entry = self._rank_cache.peek(key)  # repro-lint: disable=cache-version-guard -- mid-update refresh: the entry is stale by definition here and is rescored then re-stamped with the new version
            if rank_entry is None:
                continue
            maintainer = cache_entry.maintainer
            state = getattr(maintainer, "state", None)
            result_graph = build_result_graph(
                entry.graph, maintainer.pattern, cache_entry.relation, state=state
            )
            old = rank_entry.context
            fresh_context = RankingContext(result_graph)
            changed = fresh_context.diff_nodes(old)
            reused = fresh_context.carry_over_from(old, changed)
            rescored = 0
            for node in old._details:
                if node in fresh_context.matched_by and node not in fresh_context._details:
                    fresh_context.detail(node)
                    rescored += 1
            rank_entry.context = fresh_context
            rank_entry.graph_version = entry.graph.version
            refreshed.add(key)
            summary[key[1]] = {
                "reused": reused,
                "rescored": rescored,
                "changed_nodes": len(changed),
            }
        return summary, refreshed

    def rank_cache_stats(self) -> dict[str, int]:
        """Counters of the ranked-result cache (see :meth:`cache_stats`)."""
        return self._rank_cache.stats()

    def snapshot_stats(self) -> dict[str, int]:
        """Counters of the frozen-snapshot cache (builds, hits, stale drops)."""
        return self._snapshots.stats()

    def oracle_cache_stats(self) -> dict[str, int]:
        """Counters of the distance-oracle cache (builds, refreshes, drops)."""
        return self._oracles.stats()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, Any]:
        """Query-cache counters, plus the snapshot and oracle caches' under
        ``"snapshots"`` / ``"oracles"``."""
        stats: dict[str, Any] = self._cache.stats()
        stats["snapshots"] = self._snapshots.stats()
        stats["oracles"] = self._oracles.stats()
        return stats

    def stats(self) -> dict[str, Any]:
        """Every cache subsystem's counters in one JSON-friendly dict.

        The one-stop aggregate the ``expfinder stats`` subcommand and the
        query service's ``/stats`` endpoint surface: query/rank/snapshot/
        oracle cache counters plus the registered graph inventory.
        """
        return {
            "graphs": {
                name: {
                    "nodes": entry.graph.num_nodes,
                    "edges": entry.graph.num_edges,
                    "version": entry.graph.version,
                    "oracle": entry.oracle_config is not None,
                }
                for name, entry in sorted(self._registered.items())
            },
            "cache": self._cache.stats(),
            "rank_cache": self._rank_cache.stats(),
            "snapshots": self._snapshots.stats(),
            "oracles": self._oracles.stats(),
        }

    def warm_pool(self, workers: int | None) -> None:
        """Pre-build the persistent worker pool for ``workers`` (> 1).

        Long-running callers (the query service) invoke this at startup so
        pool construction happens once, off the request path; with one
        worker evaluation runs inline and there is nothing to warm.
        """
        count = validate_workers(workers)
        if count > 1:
            self._executor(count).warm()

    def persist_graph(self, name: str) -> None:
        """Write a registered graph to the file store."""
        if self.store is None:
            raise EvaluationError("engine has no file store configured")
        self.store.save_graph(name, self._entry(name).graph)

    def persist_snapshot(
        self,
        name: str,
        include_oracle: bool = False,
        workers: int | None = None,
    ) -> dict[str, Any]:
        """Persist a graph's frozen snapshot (and optionally its oracle).

        Freezes the graph's current version if no warm snapshot exists,
        writes the binary snapshot file into the store's catalogue, and —
        with ``include_oracle=True`` (requires :meth:`enable_oracle`
        first; ``workers`` fans out the build) — the oracle labeling too.
        A later engine pointed at the same store faults both back in via
        ``mmap`` instead of rebuilding, as long as the registered graph is
        at the same version.  Returns ``{"snapshot": path}`` plus
        ``{"oracle": path}`` when included.
        """
        if self.store is None:
            raise EvaluationError("engine has no file store configured")
        entry = self._entry(name)
        paths: dict[str, Any] = {
            "snapshot": self.store.save_snapshot(
                name, self._frozen_snapshot(entry)
            )
        }
        if include_oracle:
            oracle = self._oracle_for(entry, workers=validate_workers(workers))
            if oracle is None:
                raise EvaluationError(
                    f"oracle not enabled for graph {name!r}; call enable_oracle() first"
                )
            paths["oracle"] = self.store.save_oracle(name, oracle)
        return paths

    def __repr__(self) -> str:
        return f"<QueryEngine graphs={self.graphs()}>"
