"""Sampling-based cardinality estimation and runaway-query guards.

ExpFinder's bounded matcher is cubic in the worst case, and until now the
planner's cost model trusted an *analytic* frontier formula
(``avg_degree ** depth``) that a hub-heavy graph demolishes: a pattern of
unconstrained nodes joined by ``'*'`` bounds — a *query bomb* — looks
merely expensive on paper and is catastrophic in practice.  This module is
the layer that makes the engine safe to expose to untrusted query traffic:

* **the estimator** — :func:`sample_frontier` probes a deterministic
  sample of a pattern edge's source candidates with truncated BFS over the
  frozen CSR adjacency and returns a *measured* per-source ball volume and
  edge-scan count, with a confidence score that says how much of the
  candidate set the sample covered.  :func:`estimate_pattern` assembles the
  per-edge estimates (and the planner routes from them instead of the
  analytic formula — see ``route_edge``'s ``ball_edges_estimate``);
* **the guards** — a :class:`QueryBudget` (node-visit and wall-clock
  limits) enforced by a :class:`QueryGuard` that every successor-row
  kernel charges as it works.  A tripped guard either raises
  :class:`~repro.errors.BudgetExceededError` (``allow_partial=False``) or
  stops row construction early, which is *sound*: partially built rows
  contain only true bounded-reachability entries, so the removal fixpoint
  computes a valid (smaller) simulation relation — always a subset of the
  exact answer (``tests/test_query_bombs.py`` asserts it against
  unguarded twins);
* **adaptive re-planning** — when a kernel's measured work exceeds its
  estimate by :attr:`QueryBudget.replan_factor`, the remaining pattern
  edges are re-routed with the estimates scaled by the observed ratio
  (the cost model self-corrects mid-query instead of riding a bad sample
  into the ground).

Estimates are deterministic for a fixed seed, bounded (a probe never
visits more than ``probe_cap`` nodes, so estimating cannot itself become
the bomb), and degrade gracefully: confidence shrinks with the sampled
fraction and with probe truncation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from random import Random
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.errors import BudgetExceededError, EvaluationError
from repro.pattern.pattern import Bound, Pattern

#: Default number of source candidates probed per pattern edge group.
DEFAULT_SAMPLE = 8

#: A single probe never visits more nodes than this — the estimator's own
#: cost is bounded even when the query it sizes up is a bomb.
DEFAULT_PROBE_CAP = 4096

#: Fixed default sampling seed: estimates are reproducible run to run.
DEFAULT_SEED = 0x5EED

#: Guard-trip reasons, surfaced in ``MatchResult.stats["guard"]``.
GUARD_NODE_BUDGET = "node-budget"
GUARD_TIME_LIMIT = "time-limit"


# ----------------------------------------------------------------------
# frontier sampling
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FrontierEstimate:
    """Measured frontier growth for one group of sources at one depth.

    ``frontier`` and ``ball_edges`` are per-source means over the sample:
    nodes reached within ``depth`` (nonempty paths) and adjacency entries
    scanned getting there.  ``confidence`` is in ``(0, 1]``: the sampled
    fraction of the source set, discounted when probes hit the cap (a
    truncated probe reports a lower bound, not a measurement).
    """

    depth: Bound
    num_sources: int
    frontier: float
    ball_edges: float
    sample_size: int
    truncated: int
    confidence: float

    def describe(self) -> str:
        bound = "*" if self.depth is None else str(self.depth)
        return (
            f"~{self.frontier:.0f} nodes/source within {bound} "
            f"(sampled {self.sample_size}/{self.num_sources}, "
            f"confidence {self.confidence:.2f})"
        )


def _probe(
    adjacency: Sequence[frozenset[int]],
    source: int,
    depth: Bound,
    probe_cap: int,
) -> tuple[int, int, bool]:
    """``(nodes reached, edges scanned, truncated)`` for one truncated BFS.

    Mirrors :func:`repro.graph.distance.frozen_reach_levels` semantics
    (nonempty paths: the source counts only if a cycle re-reaches it) but
    stops dead at ``probe_cap`` visited nodes, which keeps every probe —
    and therefore the whole estimate — bounded-cost by construction.
    """
    frontier: Iterable[int] = adjacency[source]
    seen: set[int] = set(frontier)
    visited = len(seen)
    scanned = len(adjacency[source])
    level = 1
    while frontier and (depth is None or level < depth):
        if visited >= probe_cap:
            return visited, scanned, True
        grown: set[int] = set()
        for node in frontier:
            row = adjacency[node]
            scanned += len(row)
            grown |= row
        frontier = grown - seen
        seen |= frontier
        visited += len(frontier)
        level += 1
    return visited, scanned, visited >= probe_cap


def sample_frontier(
    adjacency: Sequence[frozenset[int]],
    sources: Sequence[int],
    depth: Bound,
    sample_size: int = DEFAULT_SAMPLE,
    probe_cap: int = DEFAULT_PROBE_CAP,
    seed: int = DEFAULT_SEED,
) -> FrontierEstimate:
    """Estimate per-source ball volume by probing a sample of ``sources``.

    Deterministic for a fixed ``seed`` (the sample is drawn from the
    sorted source list with :class:`random.Random`); when the sample
    covers every source and no probe hits ``probe_cap``, the estimate is
    exact — the mean ball size — with confidence 1.0.  The estimate is
    always bounded by the graph size.

    >>> adjacency = (frozenset({1}), frozenset({2}), frozenset())
    >>> estimate = sample_frontier(adjacency, [0], depth=2)
    >>> estimate.frontier, estimate.confidence
    (2.0, 1.0)
    """
    if sample_size < 1:
        raise EvaluationError(f"sample_size must be >= 1 (got {sample_size})")
    if probe_cap < 1:
        raise EvaluationError(f"probe_cap must be >= 1 (got {probe_cap})")
    num_sources = len(sources)
    if num_sources == 0:
        return FrontierEstimate(depth, 0, 0.0, 0.0, 0, 0, 1.0)
    ordered = sorted(sources)
    if sample_size >= num_sources:
        sample = ordered
    else:
        sample = Random(seed).sample(ordered, sample_size)
    num_nodes = len(adjacency)
    reached_total = 0
    scanned_total = 0
    truncated = 0
    for source in sample:
        reached, scanned, hit_cap = _probe(adjacency, source, depth, probe_cap)
        reached_total += reached
        scanned_total += scanned
        truncated += int(hit_cap)
    taken = len(sample)
    frontier = min(float(num_nodes), reached_total / taken)
    ball_edges = scanned_total / taken
    coverage = taken / num_sources
    confidence = coverage * (1.0 - truncated / taken / 2.0)
    return FrontierEstimate(
        depth=depth,
        num_sources=num_sources,
        frontier=frontier,
        ball_edges=ball_edges,
        sample_size=taken,
        truncated=truncated,
        confidence=max(confidence, 1e-3),
    )


@dataclass(frozen=True)
class EdgeEstimate:
    """One pattern edge's sampled estimate plus the cost it implies."""

    edge: tuple[str, str]
    bound: Bound
    num_sources: int
    num_children: int
    frontier: FrontierEstimate
    cost: float
    visits: float  # estimated guard charge: sources x per-source frontier

    def describe(self) -> str:
        return (
            f"edge {self.edge[0]}->{self.edge[1]}: "
            f"{self.num_sources}x{self.num_children} candidates, "
            f"{self.frontier.describe()}, est cost {self.cost:.3g}"
        )


@dataclass(frozen=True)
class PatternEstimate:
    """Per-edge estimates for a whole pattern, plus the totals explain shows."""

    edges: tuple[EdgeEstimate, ...]

    @property
    def total_cost(self) -> float:
        return sum(edge.cost for edge in self.edges)

    @property
    def total_visits(self) -> float:
        return sum(edge.visits for edge in self.edges)

    def describe_lines(self) -> list[str]:
        lines = [edge.describe() for edge in self.edges]
        lines.append(
            f"estimated total: ~{self.total_visits:.0f} node visits, "
            f"cost {self.total_cost:.3g}"
        )
        return lines


def estimate_pattern(
    frozen: Any,
    pattern: Pattern,
    candidate_ids: Mapping[str, frozenset[int]],
    sample_size: int = DEFAULT_SAMPLE,
    probe_cap: int = DEFAULT_PROBE_CAP,
    seed: int = DEFAULT_SEED,
    oracle_profile: dict | None = None,
) -> PatternEstimate:
    """Sampled per-edge estimates for ``pattern`` over a frozen snapshot.

    One frontier sample is taken per pattern node with out-edges (at the
    deepest bound its edges need — exactly the traversal the enumeration
    kernels share), then each edge's kernel cost comes from the planner's
    cost model with the *measured* ball replacing the analytic formula.
    This is what ``explain(budget=...)`` prints and what guarded
    evaluation routes from.
    """
    from repro.engine.planner import route_edge
    from repro.matching.bounded import BoundedState, FROZEN_BULK_DEPTH

    adjacency = frozen.successor_sets()
    num_nodes = len(adjacency)
    num_edges = frozen.num_edges
    estimates: list[EdgeEstimate] = []
    for source_pattern in pattern.nodes():
        out_edges = list(pattern.out_edges(source_pattern))
        if not out_edges:
            continue
        sources = sorted(candidate_ids[source_pattern])
        depth = BoundedState._bfs_depth(bound for _, bound in out_edges)
        sampled = sample_frontier(
            adjacency, sources, depth,
            sample_size=sample_size, probe_cap=probe_cap, seed=seed,
        )
        for edge_target, bound in out_edges:
            children = candidate_ids[edge_target]
            route = route_edge(
                (source_pattern, edge_target),
                bound,
                len(sources),
                len(children),
                num_nodes,
                num_edges,
                oracle_profile,
                bulk_depth=FROZEN_BULK_DEPTH,
                ball_edges_estimate=sampled.ball_edges,
            )
            cost = dict(route.costs)[route.kernel]
            estimates.append(
                EdgeEstimate(
                    edge=(source_pattern, edge_target),
                    bound=bound,
                    num_sources=len(sources),
                    num_children=len(children),
                    frontier=sampled,
                    cost=cost,
                    visits=len(sources) * sampled.frontier,
                )
            )
    return PatternEstimate(edges=tuple(estimates))


# ----------------------------------------------------------------------
# budgets and guards
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class QueryBudget:
    """Per-query limits for the bounded matcher.

    ``node_visits`` bounds the total successor-row work (one visit = one
    node arrival during row construction — the unit every kernel charges);
    ``seconds`` is a wall-clock limit.  With ``allow_partial=True`` a
    tripped guard degrades gracefully: evaluation stops admitting work and
    returns a *sound subset* of the exact answer flagged
    ``stats["partial"] = True``; otherwise the trip raises
    :class:`~repro.errors.BudgetExceededError`.  ``replan_factor`` tunes
    adaptive mid-query re-planning: when an edge group's measured work
    exceeds its estimate by this factor, the remaining edges are re-routed
    with scaled estimates.

    >>> QueryBudget(node_visits=10_000).validate()
    >>> QueryBudget(node_visits=0).validate()
    Traceback (most recent call last):
    ...
    repro.errors.EvaluationError: node_visits must be a positive integer (got 0)
    """

    node_visits: int | None = None
    seconds: float | None = None
    allow_partial: bool = False
    replan_factor: float = 8.0

    def validate(self) -> None:
        if self.node_visits is not None and (
            isinstance(self.node_visits, bool)
            or not isinstance(self.node_visits, int)
            or self.node_visits < 1
        ):
            raise EvaluationError(
                f"node_visits must be a positive integer (got {self.node_visits!r})"
            )
        if self.seconds is not None and not self.seconds > 0:
            raise EvaluationError(
                f"seconds must be positive (got {self.seconds!r})"
            )
        if not self.replan_factor > 1:
            raise EvaluationError(
                f"replan_factor must be > 1 (got {self.replan_factor!r})"
            )

    @property
    def is_limited(self) -> bool:
        return self.node_visits is not None or self.seconds is not None


class QueryGuard:
    """Mutable per-evaluation enforcement of a :class:`QueryBudget`.

    Kernels call :meth:`charge` after each unit of work (a source's ball,
    a bitset level's arrivals, a filled oracle row) and consult
    :meth:`should_stop` before starting the next.  ``shared_counter`` (a
    ``multiprocessing.Value('q')``) aggregates visits across shard
    workers, so one budget governs a whole parallel evaluation and a blown
    budget stops *every* in-flight worker at its next check.

    >>> guard = QueryGuard(QueryBudget(node_visits=10, allow_partial=True))
    >>> guard.charge(4); guard.should_stop()
    False
    >>> guard.charge(7); guard.should_stop()
    True
    >>> guard.tripped
    'node-budget'
    """

    __slots__ = (
        "budget", "visits", "tripped", "replans", "_deadline", "_counter",
        "_clock",
    )

    def __init__(
        self,
        budget: QueryBudget,
        shared_counter: Any = None,
        deadline: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        budget.validate()
        self.budget = budget
        self.visits = 0
        self.replans = 0
        self.tripped: str | None = None
        self._counter = shared_counter
        self._clock = clock
        if deadline is not None:
            self._deadline = deadline
        elif budget.seconds is not None:
            self._deadline = clock() + budget.seconds
        else:
            self._deadline = None

    def charge(self, visits: int) -> None:
        """Account ``visits`` units of work; trip when the budget is blown."""
        if visits <= 0:
            return
        self.visits += visits
        total = self.visits
        if self._counter is not None:
            with self._counter.get_lock():
                self._counter.value += visits
                total = self._counter.value
        limit = self.budget.node_visits
        if limit is not None and total > limit:
            self._trip(GUARD_NODE_BUDGET)

    def should_stop(self) -> bool:
        """True once any limit tripped (checks the clock and shared total)."""
        if self.tripped is not None:
            return True
        if self._deadline is not None and self._clock() > self._deadline:
            self._trip(GUARD_TIME_LIMIT)
            return True
        limit = self.budget.node_visits
        if (
            limit is not None
            and self._counter is not None
            and self._counter.value > limit
        ):
            self._trip(GUARD_NODE_BUDGET)
            return True
        return False

    def _trip(self, reason: str) -> None:
        if self.tripped is None:
            self.tripped = reason
        if not self.budget.allow_partial:
            raise BudgetExceededError(
                f"query exceeded its {reason} "
                f"(visits={self.visits}, budget={self.budget}); pass "
                "allow_partial=True for a bounded partial result instead"
            )

    def stats(self) -> dict[str, Any]:
        """The guard's contribution to ``MatchResult.stats``."""
        info: dict[str, Any] = {
            "partial": self.tripped is not None,
            "visits": self.visits,
        }
        if self.tripped is not None:
            info["guard"] = self.tripped
        if self.replans:
            info["replans"] = self.replans
        return info

    def __repr__(self) -> str:
        state = self.tripped or "within budget"
        return f"<QueryGuard visits={self.visits} ({state})>"
