"""Query planning: route, algorithm, and per-edge kernel selection.

The demo promises "optimized query plans"; for ExpFinder that means three
decisions, all made here so they are inspectable and testable:

* **route** — cache hit, compressed graph, or the original graph, in that
  order of preference (§II's evaluation flow);
* **algorithm** — the quadratic simulation matcher when every bound is 1,
  the cubic bounded matcher otherwise;
* **kernel, per pattern edge** — how the bounded matcher materialises the
  edge's successor rows over a frozen snapshot: *oracle-pairwise* label
  merges (when a :class:`~repro.graph.oracle.DistanceOracle` covers the
  bound and candidate sets are selective), *per-source BFS enumeration*
  (shallow bounds, tiny frontiers), or the *bitset-parallel* traversal
  (deep or ``'*'`` bounds over broad candidate sets).

:func:`make_plan` and the kernel cost model are pure: they see numbers
describing the engine state and return explainable values.  The cost
units are abstract "operation" counts weighted by per-kernel constants
(an oracle label-merge step is a C-speed list scan; a bitset step is a
big-int mask op) — crude, but the inputs that matter (candidate
cardinalities, estimated frontier sizes, measured label sizes) dominate
the decision by orders of magnitude, so the constants only tune the
boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.pattern.pattern import Bound, Pattern

ROUTE_CACHE = "cache"
ROUTE_COMPRESSED = "compressed"
ROUTE_DIRECT = "direct"

ALGORITHM_SIMULATION = "simulation"
ALGORITHM_BOUNDED = "bounded-simulation"

KERNEL_ORACLE = "oracle-pairwise"
KERNEL_PER_SOURCE = "bfs-enumeration"
KERNEL_BITSET = "bitset"

#: Relative per-operation weights of the three kernels.  One unit is one
#: per-source-BFS edge scan (C-speed frozenset algebra); bitset traversal
#: pays big-int mask arithmetic per edge per level; an oracle join step is
#: a C-speed list scan plus an int add.
PER_SOURCE_OP = 1.0
BITSET_OP = 2.5
ORACLE_OP = 0.25

#: Sources per bitset chunk — mirrors ``matching.bounded.FROZEN_CHUNK_BITS``
#: (kept as a plain number here so the planner stays import-light).
BITSET_CHUNK = 4096


@dataclass(frozen=True)
class EdgeRoute:
    """The kernel decision for one pattern edge, with its cost estimates."""

    edge: tuple[str, str]
    bound: Bound
    kernel: str
    costs: tuple[tuple[str, float], ...]
    num_sources: int
    num_children: int

    def describe(self) -> str:
        bound = "*" if self.bound is None else str(self.bound)
        estimates = ", ".join(
            f"{kernel}={cost:.3g}" for kernel, cost in self.costs
        )
        return (
            f"edge {self.edge[0]}->{self.edge[1]} (bound {bound}, "
            f"{self.num_sources}x{self.num_children} candidates): "
            f"{self.kernel} [{estimates}]"
        )


@dataclass(frozen=True)
class Plan:
    """An evaluation decision plus the reasons behind it."""

    route: str
    algorithm: str
    reasons: tuple[str, ...]
    edge_routes: tuple[EdgeRoute, ...] = field(default=())

    def explain(self) -> str:
        """Human-readable plan description (CLI ``--explain``)."""
        lines = [f"route: {self.route}", f"algorithm: {self.algorithm}"]
        lines.extend(f"- {reason}" for reason in self.reasons)
        lines.extend(f"- {route.describe()}" for route in self.edge_routes)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# per-edge kernel cost model
# ----------------------------------------------------------------------

def estimate_levels(bound: Bound, num_nodes: int, avg_degree: float) -> int:
    """How many BFS levels a traversal for this bound is expected to run.

    Finite bounds truncate the search; ``'*'`` runs to the frontier's
    natural death, which on a random-ish digraph happens around the
    diameter — estimated as ``log(n) / log(avg degree)`` and clamped to a
    sane band so degenerate degree values cannot produce silly plans.
    """
    if bound is not None:
        return max(1, bound)
    if num_nodes <= 1:
        return 1
    growth = max(1.25, avg_degree)
    return max(4, min(40, int(math.log(num_nodes) / math.log(growth)) + 1))


def frontier_size(depth: int, num_nodes: int, avg_degree: float) -> float:
    """Estimated ball volume at ``depth``: ``min(n, avg_degree ** depth)``."""
    if avg_degree <= 1.0:
        return min(num_nodes, depth * max(avg_degree, 0.5) + 1.0)
    try:
        ball = avg_degree ** depth
    except OverflowError:  # pragma: no cover - absurd depths
        return float(num_nodes)
    return float(min(num_nodes, ball))


def kernel_costs(
    num_sources: int,
    num_children: int,
    bound: Bound,
    num_nodes: int,
    num_edges: int,
    oracle_profile: dict | None = None,
    ball_edges_estimate: float | None = None,
) -> dict[str, float]:
    """Abstract cost of each kernel for one pattern edge.

    ``oracle_profile`` is :meth:`DistanceOracle.profile
    <repro.graph.oracle.DistanceOracle.profile>` output (``cap`` plus
    measured average label sizes); without one — or when the cap does not
    cover the bound — the oracle kernel is absent from the result.
    Label sizes are *measured*, which makes the model self-calibrating:
    hub-poor graphs grow labels comparable to ball volumes and the oracle
    correctly loses its advantage there.

    ``ball_edges_estimate`` replaces the analytic ``avg_degree ** depth``
    frontier with a *sampled* per-source edge-scan count (see
    :func:`repro.engine.estimator.sample_frontier`) — on hub-heavy graphs
    the analytic formula misjudges ball volume by orders of magnitude
    either way, which is exactly what guarded evaluation cannot afford.
    """
    num_nodes = max(1, num_nodes)
    avg_degree = num_edges / num_nodes
    levels = estimate_levels(bound, num_nodes, avg_degree)
    if ball_edges_estimate is not None:
        ball_edges = max(1.0, float(ball_edges_estimate))
    else:
        ball_edges = min(
            float(num_edges),
            frontier_size(levels, num_nodes, avg_degree) * max(avg_degree, 0.5),
        )
    costs: dict[str, float] = {
        KERNEL_PER_SOURCE: num_sources * ball_edges * PER_SOURCE_OP,
        KERNEL_BITSET: (
            -(-num_sources // BITSET_CHUNK) * num_edges * levels * BITSET_OP
        ),
    }
    if oracle_profile is not None:
        cap = oracle_profile.get("cap")
        if cap is None or (bound is not None and bound <= cap):
            avg_out = float(oracle_profile.get("avg_out_label", 0.0))
            avg_in = float(oracle_profile.get("avg_in_label", 0.0))
            merge = min(avg_out, avg_in) or max(avg_out, avg_in)
            costs[KERNEL_ORACLE] = (
                num_children * avg_in  # bucket construction
                + num_sources * avg_out  # label scans
                + num_sources * num_children * merge * 0.5  # join work
            ) * ORACLE_OP
    return costs


def enumeration_kernel(bound_depth: Bound, num_sources: int, bulk_depth: int) -> str:
    """Per-source vs bitset for one group of enumeration-routed edges.

    This is the calibrated frontier-size rule the frozen kernels have
    shipped with since they were introduced: below ``bulk_depth`` (or with
    a single source) per-source balls stay small enough that big-int
    bookkeeping cannot pay for itself; at or beyond it — and for ``'*'`` —
    the shared bitset traversal amortises overlapping balls.
    """
    if bound_depth is not None and (bound_depth < bulk_depth or num_sources == 1):
        return KERNEL_PER_SOURCE
    return KERNEL_BITSET


def route_edge(
    edge: tuple[str, str],
    bound: Bound,
    num_sources: int,
    num_children: int,
    num_nodes: int,
    num_edges: int,
    oracle_profile: dict | None = None,
    bulk_depth: int = 5,
    ball_edges_estimate: float | None = None,
) -> EdgeRoute:
    """Pick the kernel for one pattern edge from the cost model.

    The oracle-pairwise kernel is chosen when it is available (an oracle
    whose cap covers the bound) and its candidate x candidate label-merge
    estimate undercuts every enumeration estimate; otherwise the edge
    falls to the calibrated enumeration split.  The returned
    :class:`EdgeRoute` carries every estimate so ``explain()`` can show
    the losing kernels too.  ``ball_edges_estimate`` feeds a sampled
    frontier measurement into the cost model (guarded evaluation routes
    from estimates rather than the analytic formula).
    """
    costs = kernel_costs(
        num_sources,
        num_children,
        bound,
        num_nodes,
        num_edges,
        oracle_profile,
        ball_edges_estimate=ball_edges_estimate,
    )
    enumeration = enumeration_kernel(bound, num_sources, bulk_depth)
    kernel = enumeration
    oracle_cost = costs.get(KERNEL_ORACLE)
    if oracle_cost is not None and num_sources and oracle_cost < costs[enumeration]:
        kernel = KERNEL_ORACLE
    ranked = tuple(sorted(costs.items(), key=lambda item: item[1]))
    return EdgeRoute(
        edge=edge,
        bound=bound,
        kernel=kernel,
        costs=ranked,
        num_sources=num_sources,
        num_children=num_children,
    )


def choose_algorithm(pattern: Pattern) -> tuple[str, str]:
    """``(algorithm, reason)`` for a pattern."""
    if pattern.is_simulation_pattern:
        return (
            ALGORITHM_SIMULATION,
            "all pattern bounds are 1: quadratic simulation matcher applies",
        )
    return (
        ALGORITHM_BOUNDED,
        "pattern has bounds > 1 (or '*'): cubic bounded-simulation matcher",
    )


def make_plan(
    pattern: Pattern,
    cached: bool = False,
    compression_available: bool = False,
    compression_compatible: bool = False,
    use_cache: bool = True,
    use_compression: bool = True,
) -> Plan:
    """Decide how a query will be evaluated.

    >>> from repro.datasets.paper_example import paper_pattern
    >>> make_plan(paper_pattern()).route
    'direct'
    >>> make_plan(paper_pattern(), cached=True).route
    'cache'
    """
    algorithm, algo_reason = choose_algorithm(pattern)
    reasons: list[str] = []
    if cached and use_cache:
        reasons.append("result already cached for this graph version")
        return Plan(ROUTE_CACHE, algorithm, tuple(reasons))
    if cached and not use_cache:
        reasons.append("cache hit ignored (use_cache=False)")
    if compression_available and use_compression:
        if compression_compatible:
            reasons.append(
                "compressed graph available and the pattern reads only "
                "compression-label attributes"
            )
            reasons.append(algo_reason)
            return Plan(ROUTE_COMPRESSED, algorithm, tuple(reasons))
        reasons.append(
            "compressed graph available but the pattern reads attributes the "
            "compression does not preserve; falling back to the original graph"
        )
    elif compression_available:
        reasons.append("compression available but disabled (use_compression=False)")
    else:
        reasons.append("no compressed graph for this data graph")
    reasons.append(algo_reason)
    return Plan(ROUTE_DIRECT, algorithm, tuple(reasons))
