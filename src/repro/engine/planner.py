"""Query planning: pick the evaluation route and algorithm.

The demo promises "optimized query plans"; for ExpFinder that means two
decisions, both made here so they are inspectable and testable:

* **route** — cache hit, compressed graph, or the original graph, in that
  order of preference (§II's evaluation flow);
* **algorithm** — the quadratic simulation matcher when every bound is 1,
  the cubic bounded matcher otherwise.

:func:`make_plan` is pure: it sees booleans describing the engine state and
returns an explainable :class:`Plan`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pattern.pattern import Pattern

ROUTE_CACHE = "cache"
ROUTE_COMPRESSED = "compressed"
ROUTE_DIRECT = "direct"

ALGORITHM_SIMULATION = "simulation"
ALGORITHM_BOUNDED = "bounded-simulation"


@dataclass(frozen=True)
class Plan:
    """An evaluation decision plus the reasons behind it."""

    route: str
    algorithm: str
    reasons: tuple[str, ...]

    def explain(self) -> str:
        """Human-readable plan description (CLI ``--explain``)."""
        lines = [f"route: {self.route}", f"algorithm: {self.algorithm}"]
        lines.extend(f"- {reason}" for reason in self.reasons)
        return "\n".join(lines)


def choose_algorithm(pattern: Pattern) -> tuple[str, str]:
    """``(algorithm, reason)`` for a pattern."""
    if pattern.is_simulation_pattern:
        return (
            ALGORITHM_SIMULATION,
            "all pattern bounds are 1: quadratic simulation matcher applies",
        )
    return (
        ALGORITHM_BOUNDED,
        "pattern has bounds > 1 (or '*'): cubic bounded-simulation matcher",
    )


def make_plan(
    pattern: Pattern,
    cached: bool = False,
    compression_available: bool = False,
    compression_compatible: bool = False,
    use_cache: bool = True,
    use_compression: bool = True,
) -> Plan:
    """Decide how a query will be evaluated.

    >>> from repro.datasets.paper_example import paper_pattern
    >>> make_plan(paper_pattern()).route
    'direct'
    >>> make_plan(paper_pattern(), cached=True).route
    'cache'
    """
    algorithm, algo_reason = choose_algorithm(pattern)
    reasons: list[str] = []
    if cached and use_cache:
        reasons.append("result already cached for this graph version")
        return Plan(ROUTE_CACHE, algorithm, tuple(reasons))
    if cached and not use_cache:
        reasons.append("cache hit ignored (use_cache=False)")
    if compression_available and use_compression:
        if compression_compatible:
            reasons.append(
                "compressed graph available and the pattern reads only "
                "compression-label attributes"
            )
            reasons.append(algo_reason)
            return Plan(ROUTE_COMPRESSED, algorithm, tuple(reasons))
        reasons.append(
            "compressed graph available but the pattern reads attributes the "
            "compression does not preserve; falling back to the original graph"
        )
    elif compression_available:
        reasons.append("compression available but disabled (use_compression=False)")
    else:
        reasons.append("no compressed graph for this data graph")
    reasons.append(algo_reason)
    return Plan(ROUTE_DIRECT, algorithm, tuple(reasons))
