"""The query-result cache with user-pinned entries.

§II: "Upon receiving a pattern query Q, the query engine directly returns
M(Q,G) if it is already cached" and the incremental module "maintains the
query results of a set of frequently issued queries (decided by the users)".
Those two sentences define this module:

* plain entries live in an LRU cache keyed by (graph, pattern structure);
  any graph update invalidates them;
* *pinned* entries are exempt from eviction and survive updates — the
  engine attaches an incremental maintainer to each and refreshes the
  cached relation in place.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any

from repro.errors import CacheError, StorageError
from repro.matching.base import MatchRelation
from repro.pattern.pattern import Pattern

CacheKey = tuple[str, tuple]


def cache_key(graph_name: str, pattern: Pattern) -> CacheKey:
    """Structural cache key: graph identity + canonical pattern form."""
    return (graph_name, pattern.canonical_key())


@dataclass
class CacheEntry:
    """One cached result; ``maintainer`` is set only for pinned entries.

    ``graph_version`` records ``Graph.version`` at the moment the relation
    was computed (or last refreshed, for pinned entries); reads validate
    against it, so results can never outlive the graph state they answer
    for — even when a mutation bypasses the engine's update path.
    """

    relation: MatchRelation
    graph_version: int
    pinned: bool = False
    maintainer: Any = None
    hits: int = 0
    extra: dict[str, Any] = field(default_factory=dict)


class QueryCache:
    """LRU cache of match relations with pin support.

    Reads are validated against ``Graph.version`` exactly like the rank,
    snapshot and oracle caches: :meth:`get` with a version other than the
    one recorded at :meth:`put` time drops the entry (pinned or not — a
    pinned entry's maintainer never saw the out-of-band mutation either,
    so its relation is just as unreliable) and reports a miss.

    Structural operations hold an internal lock: the query service shares
    one cache per snapshot epoch across reader threads, and a check-then-
    delete sequence (stale drop, eviction) torn between two threads would
    raise ``KeyError`` from inside the cache.

    >>> cache = QueryCache(capacity=2)
    >>> cache.stats()["size"]
    0
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise CacheError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        self._stale_drops = 0

    # ------------------------------------------------------------------
    def get(self, key: CacheKey, graph_version: int) -> CacheEntry | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            if entry.graph_version != graph_version:
                # Out-of-band mutation (a write that bypassed update_graph):
                # the relation answers for a graph that no longer exists.
                del self._entries[key]
                self._stale_drops += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self._hits += 1
            return entry

    def fresh(self, key: CacheKey, graph_version: int) -> bool:
        """Non-mutating version-aware lookup for planning/explain paths.

        Unlike :meth:`get` this neither drops a stale entry nor touches
        the LRU order or hit counters, so ``explain`` can ask "would the
        cache route serve this?" without perturbing the cache it is
        describing.
        """
        entry = self._entries.get(key)
        return entry is not None and entry.graph_version == graph_version

    def put(
        self,
        key: CacheKey,
        relation: MatchRelation,
        graph_version: int,
        pinned: bool = False,
        maintainer: Any = None,
    ) -> CacheEntry:
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None and existing.pinned and not pinned:
                # Refreshing a pinned entry's relation must not unpin it.
                existing.relation = relation
                existing.graph_version = graph_version
                self._entries.move_to_end(key)
                return existing
            entry = CacheEntry(
                relation=relation,
                graph_version=graph_version,
                pinned=pinned,
                maintainer=maintainer,
            )
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._evict_if_needed()
            return entry

    def _evict_if_needed(self) -> None:
        while len(self._entries) > self.capacity:
            victim = next(
                (k for k, e in self._entries.items() if not e.pinned), None
            )
            if victim is None:
                return  # everything is pinned; allow overflow rather than drop
            del self._entries[victim]
            self._evictions += 1

    # ------------------------------------------------------------------
    def pin(self, key: CacheKey, maintainer: Any = None) -> None:
        with self._lock:
            try:
                entry = self._entries[key]
            except KeyError:
                raise CacheError("cannot pin a result that is not cached") from None
            entry.pinned = True
            if maintainer is not None:
                entry.maintainer = maintainer

    def unpin(self, key: CacheKey) -> None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                raise CacheError("cannot unpin a result that is not cached")
            entry.pinned = False
            entry.maintainer = None
            self._evict_if_needed()

    def pinned_entries(self, graph_name: str) -> list[tuple[CacheKey, CacheEntry]]:
        """All pinned entries for one graph (the update path walks these)."""
        with self._lock:
            return [
                (key, entry)
                for key, entry in self._entries.items()
                if entry.pinned and key[0] == graph_name
            ]

    def invalidate_graph(self, graph_name: str, keep_pinned: bool = True) -> int:
        """Drop entries of a graph (pinned ones survive by default)."""
        with self._lock:
            doomed = [
                key
                for key, entry in self._entries.items()
                if key[0] == graph_name and not (keep_pinned and entry.pinned)
            ]
            for key in doomed:
                del self._entries[key]
            self._invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self._hits,
            "misses": self._misses,
            "evictions": self._evictions,
            "invalidations": self._invalidations,
            "stale_drops": self._stale_drops,
            "pinned": sum(1 for e in self._entries.values() if e.pinned),
        }


@dataclass
class SnapshotEntry:
    """One cached frozen snapshot, valid for exactly one graph version."""

    frozen: Any  # repro.graph.frozen.FrozenGraph
    graph_version: int
    hits: int = 0


class SnapshotCache:
    """LRU cache of :class:`~repro.graph.frozen.FrozenGraph` snapshots.

    Keyed by graph *name* (one snapshot serves every query against that
    graph, unlike the per-pattern query/rank caches) and validated against
    ``Graph.version`` on every read, exactly like :class:`RankCache`: any
    mutation — engine-routed or out-of-band through the counting write
    APIs — makes the entry stale, and the next read drops it so the engine
    re-freezes the current graph.

    With a ``store`` attached, a miss additionally tries to *fault in* a
    persisted snapshot file before the caller pays a rebuild: the load is
    validated against ``graph_version`` exactly like the in-memory entry,
    and any :class:`StorageError` (missing, stale, corrupt) silently falls
    back to the rebuild path — a bad file can slow things down, never
    break them or change an answer.

    >>> cache = SnapshotCache(capacity=2)
    >>> cache.stats()["size"]
    0
    """

    def __init__(self, capacity: int = 8, store: Any = None) -> None:
        if capacity < 1:
            raise CacheError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.store = store
        self._entries: "OrderedDict[str, SnapshotEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._stale_drops = 0
        self._invalidations = 0
        self._builds = 0
        self._fault_ins = 0
        self._fault_in_errors = 0

    def get(self, name: str, graph_version: int) -> Any | None:
        """The snapshot for ``name`` iff it matches ``graph_version``."""
        entry = self._entries.get(name)
        if entry is None:
            self._misses += 1
            return self._fault_in(name, graph_version)
        if entry.graph_version != graph_version:
            del self._entries[name]
            self._stale_drops += 1
            self._misses += 1
            return self._fault_in(name, graph_version)
        self._entries.move_to_end(name)
        entry.hits += 1
        self._hits += 1
        return entry.frozen

    def _fault_in(self, name: str, graph_version: int) -> Any | None:
        """Serve a miss from the store's snapshot file, if it checks out."""
        if self.store is None:
            return None
        try:
            if not self.store.has_snapshot(name):
                return None
            frozen = self.store.load_snapshot(name, expected_version=graph_version)
        except StorageError:
            # Stale or corrupt file: fall back to a rebuild, never fail.
            self._fault_in_errors += 1
            return None
        self._fault_ins += 1
        self._insert(name, SnapshotEntry(frozen=frozen, graph_version=graph_version))
        return frozen

    def peek(self, name: str) -> SnapshotEntry | None:
        """Raw access without version checks or stats (``explain`` uses it)."""
        return self._entries.get(name)

    def put(self, name: str, frozen: Any, graph_version: int) -> SnapshotEntry:
        entry = SnapshotEntry(frozen=frozen, graph_version=graph_version)
        self._builds += 1
        return self._insert(name, entry)

    def _insert(self, name: str, entry: SnapshotEntry) -> SnapshotEntry:
        self._entries[name] = entry
        self._entries.move_to_end(name)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry

    def invalidate_graph(self, name: str) -> int:
        """Drop the snapshot of one graph (re-registration, bulk updates)."""
        if name in self._entries:
            del self._entries[name]
            self._invalidations += 1
            return 1
        return 0

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self._hits,
            "misses": self._misses,
            "stale_drops": self._stale_drops,
            "invalidations": self._invalidations,
            "builds": self._builds,
            "fault_ins": self._fault_ins,
            "fault_in_errors": self._fault_in_errors,
        }


@dataclass
class OracleEntry:
    """One cached distance oracle, valid for a recorded graph version."""

    oracle: Any  # repro.graph.oracle.DistanceOracle
    graph_version: int
    hits: int = 0


class OracleCache:
    """LRU cache of :class:`~repro.graph.oracle.DistanceOracle` instances.

    Keyed by graph *name* and validated against ``Graph.version`` on every
    read, exactly like :class:`SnapshotCache` — with one refinement: label
    entries are shortest-path distances, so updates that cannot move a
    distance (attribute writes, bare node insertions) need not cost the
    labels.  The engine calls :meth:`refresh_version` after such update
    batches, advancing the recorded version in place; structural batches
    invalidate as usual and the next evaluation rebuilds.

    >>> cache = OracleCache(capacity=2)
    >>> cache.stats()["size"]
    0
    """

    def __init__(self, capacity: int = 4, store: Any = None) -> None:
        if capacity < 1:
            raise CacheError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.store = store
        self._entries: "OrderedDict[str, OracleEntry]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._stale_drops = 0
        self._invalidations = 0
        self._builds = 0
        self._refreshes = 0
        self._fault_ins = 0
        self._fault_in_errors = 0

    def get(
        self, name: str, graph_version: int, config: "dict[str, Any] | None" = None
    ) -> Any | None:
        """The oracle for ``name`` iff its recorded version matches.

        ``config`` (the engine's ``enable_oracle`` parameters) gates the
        disk fault-in: a stored oracle whose distance ``cap`` differs from
        the requested one answers different bounds, so it is skipped and
        the caller rebuilds.
        """
        entry = self._entries.get(name)
        if entry is None:
            self._misses += 1
            return self._fault_in(name, graph_version, config)
        if entry.graph_version != graph_version:
            del self._entries[name]
            self._stale_drops += 1
            self._misses += 1
            return self._fault_in(name, graph_version, config)
        self._entries.move_to_end(name)
        entry.hits += 1
        self._hits += 1
        return entry.oracle

    def _fault_in(
        self, name: str, graph_version: int, config: "dict[str, Any] | None"
    ) -> Any | None:
        """Serve a miss from the store's oracle file, if it checks out."""
        if self.store is None:
            return None
        try:
            if not self.store.has_oracle(name):
                return None
            oracle = self.store.load_oracle(name, expected_version=graph_version)
        except StorageError:
            # Stale or corrupt file: fall back to a rebuild, never fail.
            self._fault_in_errors += 1
            return None
        if config is not None and oracle.cap != config.get("cap"):
            return None
        self._fault_ins += 1
        self._insert(name, OracleEntry(oracle=oracle, graph_version=graph_version))
        return oracle

    def peek(self, name: str) -> OracleEntry | None:
        """Raw access without version checks or stats (``explain`` uses it)."""
        return self._entries.get(name)

    def put(self, name: str, oracle: Any, graph_version: int) -> OracleEntry:
        entry = OracleEntry(oracle=oracle, graph_version=graph_version)
        self._builds += 1
        return self._insert(name, entry)

    def _insert(self, name: str, entry: OracleEntry) -> OracleEntry:
        self._entries[name] = entry
        self._entries.move_to_end(name)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return entry

    def refresh_version(self, name: str, graph_version: int) -> bool:
        """Advance an entry's validity after a distance-preserving update."""
        entry = self._entries.get(name)
        if entry is None:
            return False
        entry.graph_version = graph_version
        self._refreshes += 1
        return True

    def invalidate_graph(self, name: str) -> int:
        """Drop the oracle of one graph (structural update, re-registration)."""
        if name in self._entries:
            del self._entries[name]
            self._invalidations += 1
            return 1
        return 0

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self._hits,
            "misses": self._misses,
            "stale_drops": self._stale_drops,
            "invalidations": self._invalidations,
            "builds": self._builds,
            "refreshes": self._refreshes,
            "fault_ins": self._fault_ins,
            "fault_in_errors": self._fault_in_errors,
        }


@dataclass
class RankEntry:
    """One cached ranking context, valid for exactly one graph version."""

    context: Any  # repro.ranking.topk.RankingContext
    graph_version: int
    hits: int = 0


class RankCache:
    """LRU cache of bulk-ranking contexts, keyed alongside the query cache.

    A ranked result is heavier than a match relation — the context holds a
    result-graph snapshot plus memoized Dijkstra runs — so it gets its own
    (smaller) LRU rather than riding in :class:`QueryCache`.  Keys are the
    same ``(graph name, canonical pattern)`` tuples; validity is checked
    against ``Graph.version`` on every read, so *any* mutation of the
    underlying graph (through the engine or out-of-band) invalidates the
    entry — except entries the engine refreshes in place through its
    pinned-query re-ranking path, which advances ``graph_version``.

    >>> cache = RankCache(capacity=2)
    >>> cache.stats()["size"]
    0
    """

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise CacheError(f"capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[CacheKey, RankEntry]" = OrderedDict()
        # Same locking rationale as QueryCache: epoch-shared across the
        # query service's reader threads.
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._stale_drops = 0
        self._invalidations = 0

    def get(self, key: CacheKey, graph_version: int) -> RankEntry | None:
        """The entry for ``key`` iff it matches ``graph_version``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            if entry.graph_version != graph_version:
                del self._entries[key]
                self._stale_drops += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self._hits += 1
            return entry

    def peek(self, key: CacheKey) -> RankEntry | None:
        """Raw access without version checks or stats (maintenance paths)."""
        return self._entries.get(key)

    def put(self, key: CacheKey, context: Any, graph_version: int) -> RankEntry:
        with self._lock:
            entry = RankEntry(context=context, graph_version=graph_version)
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return entry

    def invalidate_graph(
        self, graph_name: str, keep: "set[CacheKey] | None" = None
    ) -> int:
        """Drop a graph's entries, except those in ``keep`` (refreshed ones)."""
        with self._lock:
            doomed = [
                key
                for key in self._entries
                if key[0] == graph_name and (keep is None or key not in keep)
            ]
            for key in doomed:
                del self._entries[key]
            self._invalidations += len(doomed)
            return len(doomed)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self._hits,
            "misses": self._misses,
            "stale_drops": self._stale_drops,
            "invalidations": self._invalidations,
        }
