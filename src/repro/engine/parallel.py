"""Parallel sharded evaluation — ball partitioning plus a worker pool.

Bounded simulation splits into two phases with very different shapes:

1. **successor-row construction** — one truncated reachability search per
   candidate of every pattern node with out-edges.  This dominates
   evaluation cost and is embarrassingly parallel once the graph is
   decomposed into distance-bounded balls (:mod:`repro.graph.partition`):
   a worker holding the ball around its pivots computes exactly the rows
   the sequential matcher would, because each pivot's full
   radius-``depth`` ball is inside the shard.  Workers traverse
   :class:`~repro.graph.frozen.FrozenGraph` snapshots — shards ship as
   flat CSR buffers (or share the one full snapshot), never as pickled
   dict graphs — through the very same
   :func:`~repro.matching.bounded.frozen_successor_rows` kernel the
   sequential matcher uses.
2. **removal fixpoint** — a worklist cascade over the merged rows.  Pattern
   cycles and ``*`` bounds make refutations propagate arbitrarily far, so
   this phase is *not* ball-local; running it once over the merged state
   (:meth:`~repro.matching.bounded.BoundedState.from_successor_rows`) is
   the boundary refinement that makes the parallel result equal the
   sequential one exactly.  ``tests/test_differential.py`` asserts that
   equality over hundreds of seeded random graphs and patterns.

:class:`ParallelExecutor` fans both workloads out to a
:mod:`multiprocessing` pool:

* :meth:`ParallelExecutor.match` — *per-query* parallelism: shard one big
  query's successor-row work across workers, merge, refine.
* :meth:`ParallelExecutor.match_many` — *per-batch* parallelism: farm whole
  (pattern, candidates) tasks out, one query per worker at a time, with
  the data graph shipped once per worker via the pool initializer.

Simulation patterns (every bound 1) ride the same sharded machinery: with
all bounds 1, bounded simulation's fixpoint coincides with plain
simulation's, so the merged relation equals ``match_simulation``'s (also
asserted by the differential harness).

Workers are separate processes; a speedup needs actual spare cores.  On a
single-core host the sharded path still produces identical results, just
with fork/pickle overhead on top — ``benchmarks/bench_parallel_eval.py``
measures both situations honestly.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from array import array
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.engine.estimator import GUARD_TIME_LIMIT, QueryBudget, QueryGuard
from repro.errors import BudgetExceededError, EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.graph.frozen import FrozenGraph
from repro.graph.index import AttributeIndex, candidates_from_index
from repro.graph.oracle import DistanceOracle, OracleSlice, set_build_context
from repro.graph.partition import Shard, decompose
from repro.matching.base import MatchRelation, MatchResult, Stopwatch
from repro.matching.bounded import (
    BoundedState,
    PatternEdge,
    frozen_successor_rows,
    match_bounded,
)
from repro.matching.simulation import match_simulation
from repro.pattern.pattern import Pattern
from repro.ranking.topk import RankingContext

#: Per-shard worker payload, all flat int buffers over a frozen snapshot:
#: (frozen ball sub-snapshot or None for "use the shared snapshot",
#: out-edge spec per pivot pattern node, pivot ids per pattern node,
#: child-candidate id arrays per pattern node, oracle label slice or None).
ShardPayload = tuple[
    "FrozenGraph | None",
    dict[str, tuple],
    dict[str, tuple[int, ...]],
    dict[str, array],
    "OracleSlice | None",
]

# Set once per batch worker (fork inheritance or pool initializer), so
# per-task payloads stay tiny: the graph, its frozen snapshot and the
# shared candidate table — {predicate key: node set}, computed once for the
# whole batch — never travel per query; a task carries only its pattern and
# the table keys its pattern nodes resolve to.
_batch_graph: Graph | None = None
_batch_table: dict[tuple, set[NodeId]] | None = None
_batch_frozen: FrozenGraph | None = None
_batch_oracle: DistanceOracle | None = None
_batch_budget: QueryBudget | None = None

# The shared frozen snapshot (and optional distance oracle) for
# broad-cover sharded queries.  Under the fork start method the parent
# sets them *before* creating the pool and children inherit them for free
# (copy-on-write); under spawn the pool initializer ships them once per
# worker — and both pickle as a handful of flat buffers, far cheaper than
# a dict graph.
_shared_frozen: FrozenGraph | None = None
_shared_oracle: DistanceOracle | None = None

# Bulk-ranking fan-out state: the snapshot context (and optionally the
# metric) ship once per worker — fork inheritance or pool initializer —
# so a ranking task carries only a chunk of node ids.
_rank_context: RankingContext | None = None
_rank_metric = None


def _set_shared_frozen(
    frozen: FrozenGraph | None, oracle: DistanceOracle | None = None
) -> None:
    global _shared_frozen, _shared_oracle
    _shared_frozen = frozen
    _shared_oracle = oracle


def _shipment(
    frozen: FrozenGraph, oracle: DistanceOracle | None
) -> tuple[Any, Any]:
    """``(frozen, oracle)`` as a spawn pool initializer should receive them.

    Store-loaded objects record their backing snapshot file in ``.path``;
    shipping that path lets every worker ``mmap`` the same pages — shared
    RSS, no per-worker pickle of the buffers.  Objects built in-process
    have no file and ship as pickled (attribute-less) flat buffers.
    """
    shipped_frozen: Any = (
        frozen.path if frozen.path is not None else frozen.without_attrs()
    )
    shipped_oracle: Any = (
        oracle if oracle is None or oracle.path is None else oracle.path
    )
    return shipped_frozen, shipped_oracle


def _resolve_shipped(frozen: Any, oracle: Any) -> tuple[Any, Any]:
    """Worker-side inverse of :func:`_shipment`: map file paths back in."""
    from repro.engine.storage import load_frozen_file, load_oracle_file

    if isinstance(frozen, (str, Path)):
        frozen = load_frozen_file(frozen)
    if isinstance(oracle, (str, Path)):
        oracle = load_oracle_file(oracle)
    return frozen, oracle


def _init_shared_worker(frozen: Any, oracle: Any = None) -> None:
    # Runs inside spawn-started pool workers (invisible to coverage).
    _set_shared_frozen(*_resolve_shipped(frozen, oracle))  # pragma: no cover


# Guard state for sharded workers: either a live QueryGuard (inline runs —
# one guard accumulates across every shard, exactly like the sequential
# matcher) or a ``(budget, shared counter, deadline)`` triple from which
# each worker process builds its own guard around the *shared* visit
# counter — one budget governs the whole fan-out, so sequential and
# parallel evaluation trip on the same total work.
_shard_guard_state: "QueryGuard | tuple | None" = None


def _set_shard_guard(state: "QueryGuard | tuple | None") -> None:
    global _shard_guard_state
    _shard_guard_state = state


def _resolve_shard_guard() -> "QueryGuard | None":
    state = _shard_guard_state
    if state is None or isinstance(state, QueryGuard):
        return state
    budget, counter, deadline = state
    return QueryGuard(budget, shared_counter=counter, deadline=deadline)


# Persistent-pool guarded state.  The shared visit counter is installed
# once per worker at pool creation (the initializer runs under fork and
# spawn alike), so a guarded task only needs to carry its budget — the
# counter that aggregates visits across workers is already in place and
# the pool never has to be rebuilt per guarded call.
_persistent_counter: Any = None

#: Worker-side memo of snapshot/oracle files already mapped in, so a
#: long-lived pool worker pays ``load_frozen_file`` once per file rather
#: than once per task.  Bounded: it resets rather than grows.
_persistent_loads: dict[str, Any] = {}
_PERSISTENT_LOAD_SLOTS = 8


def _init_persistent_worker(counter: Any) -> None:
    global _persistent_counter
    _persistent_counter = counter


def _load_memo(path: Any, loader: Callable[[Any], Any]) -> Any:
    key = str(path)
    obj = _persistent_loads.get(key)
    if obj is None:
        if len(_persistent_loads) >= _PERSISTENT_LOAD_SLOTS:
            _persistent_loads.clear()
        obj = _persistent_loads[key] = loader(path)
    return obj


def _resolve_persistent(frozen: Any, oracle: Any) -> tuple[Any, Any]:
    """Like :func:`_resolve_shipped`, but memoized per worker process."""
    from repro.engine.storage import load_frozen_file, load_oracle_file

    if isinstance(frozen, (str, Path)):
        frozen = _load_memo(frozen, load_frozen_file)
    if isinstance(oracle, (str, Path)):
        oracle = _load_memo(oracle, load_oracle_file)
    return frozen, oracle


def _shard_rows_shipped(
    task: "tuple[ShardPayload, Any, Any]",
) -> tuple[dict[PatternEdge, dict[NodeId, dict[NodeId, int]]], dict[str, Any]]:
    """One unguarded shard on the *persistent* pool.

    The shared snapshot/oracle travel inside the task (a file path when
    mmap-backed — memoized per worker — or attribute-less flat buffers)
    instead of through module globals, so a long-running service can fan
    broad-cover queries out over the warm pool without rebuilding it.
    """
    payload, shipped_frozen, shipped_oracle = task
    shared_frozen, shared_oracle = _resolve_persistent(shipped_frozen, shipped_oracle)
    return _shard_rows_core(payload, shared_frozen, shared_oracle, None)


def _shard_rows_guarded(
    task: "tuple[ShardPayload, Any, Any, QueryBudget]",
) -> tuple[dict[PatternEdge, dict[NodeId, dict[NodeId, int]]], dict[str, Any]]:
    """One guarded shard on the *persistent* pool.

    The task carries everything a long-lived worker does not already
    hold: the shard payload, the shipped shared snapshot/oracle (a file
    path when mmap-backed — memoized per worker — or attribute-less flat
    buffers) and the call's budget.  The guard wraps the process-wide
    shared counter installed at pool creation, so one node budget still
    governs the whole fan-out exactly like the dedicated-pool path.
    """
    payload, shipped_frozen, shipped_oracle, budget = task
    shared_frozen, shared_oracle = _resolve_persistent(shipped_frozen, shipped_oracle)
    guard = QueryGuard(budget, shared_counter=_persistent_counter)
    return _shard_rows_core(payload, shared_frozen, shared_oracle, guard)


def validate_workers(workers: int | None) -> int:
    """Normalize a ``workers`` argument: ``None`` means sequential (1).

    Raises :class:`EvaluationError` for anything that is not a positive
    integer, so every entry point (engine, CLI, facade) rejects bad values
    with one consistent message.
    """
    if workers is None:
        return 1
    if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
        raise EvaluationError(f"workers must be a positive integer (got {workers!r})")
    return workers


def _shard_rows(
    payload: ShardPayload,
) -> tuple[dict[PatternEdge, dict[NodeId, dict[NodeId, int]]], dict[str, Any]]:
    """Successor rows for one shard (runs inside a worker process).

    The payload is int-indexed against a frozen snapshot — either the ball
    sub-snapshot it carries or the process-shared full one.  Rows are
    computed by the same :func:`frozen_successor_rows` kernel the
    sequential matcher uses (sound because each pivot's full ball is inside
    the shard), then converted back to labels for the merge.  Returns the
    rows plus a guard-info dict (empty when unguarded): each worker's
    guard charges the *shared* visit counter, so a blown budget stops
    every sibling at its next check, not just this shard.
    """
    return _shard_rows_core(
        payload, _shared_frozen, _shared_oracle, _resolve_shard_guard()
    )


def _shard_rows_core(
    payload: ShardPayload,
    shared_frozen: "FrozenGraph | None",
    shared_oracle: "DistanceOracle | None",
    guard: "QueryGuard | None",
) -> tuple[dict[PatternEdge, dict[NodeId, dict[NodeId, int]]], dict[str, Any]]:
    """The shard kernel shared by the global-state and task-state entries."""
    frozen, edges_spec, pivots, candidate_arrays, oracle_slice = payload
    if frozen is None:
        frozen = shared_frozen
        assert frozen is not None, "shared snapshot was not installed"
        # Shared-snapshot shards query the process-shared oracle directly
        # (full ids); materialized ball shards carry their own label slice
        # re-keyed to ball ids.
        oracle = oracle_slice if oracle_slice is not None else shared_oracle
    else:
        oracle = oracle_slice
    candidate_ids = {u: frozenset(ids) for u, ids in candidate_arrays.items()}
    rows_ids = frozen_successor_rows(
        frozen, edges_spec, candidate_ids, sources_by_node=pivots, oracle=oracle,
        guard=guard,
    )
    labels = frozen.labels
    converted = {
        edge: {
            labels[source_id]: {
                labels[reached_id]: dist for reached_id, dist in entries.items()
            }
            for source_id, entries in edge_rows.items()
        }
        for edge, edge_rows in rows_ids.items()
    }
    return converted, (guard.stats() if guard is not None else {})


def _init_batch_worker(
    graph: Graph | None,
    table: dict[tuple, set[NodeId]] | None,
    frozen: FrozenGraph | None = None,
    oracle: DistanceOracle | None = None,
    budget: "QueryBudget | None" = None,
) -> None:
    global _batch_graph, _batch_table, _batch_frozen, _batch_oracle, _batch_budget
    frozen, oracle = _resolve_shipped(frozen, oracle)
    _batch_graph = graph
    _batch_table = table
    _batch_frozen = frozen
    _batch_oracle = oracle
    _batch_budget = budget


def _init_guarded_worker(
    frozen: Any,
    oracle: Any,
    budget: "QueryBudget",
    counter: Any,
    deadline: float | None,
) -> None:  # pragma: no cover - runs in spawn workers
    _set_shared_frozen(*_resolve_shipped(frozen, oracle))
    _set_shard_guard((budget, counter, deadline))


def _init_rank_worker(context: RankingContext | None, metric: Any) -> None:
    global _rank_context, _rank_metric
    _rank_context = context
    _rank_metric = metric


def _rank_chunk(nodes: Sequence[NodeId]) -> list:
    """Score one chunk of matches against the worker's snapshot context.

    With no metric installed this is the rich social-impact path and
    returns :class:`~repro.ranking.social_impact.RankedMatch` objects;
    otherwise it returns the metric's ``score_bulk`` floats.  Either way
    the values are pure functions of the immutable snapshot, so they are
    identical to what the parent would compute inline.
    """
    context = _rank_context
    assert context is not None, "ranking context was not installed"
    if _rank_metric is None:
        return [context.detail(node) for node in nodes]
    return [_rank_metric.score_bulk(context, node) for node in nodes]


def _batch_query(
    payload: tuple[Pattern, dict[str, tuple]],
) -> tuple[MatchRelation, dict[str, Any]]:
    """Evaluate one whole query against the worker's graph (batch mode)."""
    pattern, key_by_node = payload
    assert _batch_graph is not None, "batch graph was not installed"
    assert _batch_table is not None, "batch candidate table was not installed"
    candidates = {u: _batch_table[key] for u, key in key_by_node.items()}
    if pattern.is_simulation_pattern:
        # Guards cover the bounded algorithm only (the quadratic matcher
        # has no runaway mode worth the bookkeeping), sequentially and in
        # workers alike — so both modes agree on the partial flag.
        result = match_simulation(
            _batch_graph, pattern, candidates=candidates, frozen=_batch_frozen
        )
    else:
        result = match_bounded(
            _batch_graph,
            pattern,
            candidates=candidates,
            frozen=_batch_frozen,
            oracle=_batch_oracle,
            budget=_batch_budget,
        )
    return result.relation, result.stats


class ParallelExecutor:
    """A reusable worker pool for sharded and batched evaluation.

    The pool is created lazily on first parallel use and reused across
    calls (forking a pool costs more than a small query); close it with
    :meth:`close` or use the executor as a context manager.  With
    ``workers=1`` everything runs inline in the calling process — same
    code path, no processes — so callers can treat the executor as the one
    evaluation front end regardless of parallelism.

    >>> from repro.datasets.paper_example import paper_graph, paper_pattern
    >>> with ParallelExecutor(workers=2) as executor:
    ...     result = executor.match(paper_graph(), paper_pattern())
    >>> sorted(result.relation.matches_of("SA"))
    ['Bob', 'Walt']
    >>> result.stats["parallel"]["workers"]
    2
    """

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        self.workers = validate_workers(workers)
        self._ctx = multiprocessing.get_context(start_method)
        self._pool = None
        #: Total worker pools this executor has created (persistent and
        #: dedicated alike) — the regression counter the pool-churn tests
        #: watch: steady-state guarded serving must not move it.
        self.pools_created = 0
        # The shared visit counter all persistent-pool guards wrap; it is
        # allocated with the pool so every worker receives it through the
        # initializer, and guarded calls are serialized by ``_guard_serial``
        # (one budget at a time owns the counter).
        self._guard_counter: Any = None
        self._guard_serial = threading.Lock()
        # Serializes the fan-out section of :meth:`match`: sharded
        # evaluation installs process-wide module globals (the shared
        # snapshot and guard state), so concurrent calls from service
        # threads must take turns.  Candidate generation and the merge
        # run outside this lock.
        self._match_serial = threading.Lock()

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _query_pool(self) -> Any:
        if self._pool is None:
            if self._guard_counter is None:
                self._guard_counter = self._ctx.Value("q", 0)
            self._pool = self._ctx.Pool(
                self.workers,
                initializer=_init_persistent_worker,
                initargs=(self._guard_counter,),
            )
            self.pools_created += 1
        return self._pool

    def _dedicated_pool(self, **kwargs: Any) -> Any:
        """A single-call pool (counted in :attr:`pools_created`).

        Dedicated pools remain for work that cannot share the persistent
        one: wall-clock-guarded fan-outs (termination mid-flight) and the
        fork paths that inherit call-specific module globals.
        """
        self.pools_created += 1
        return self._ctx.Pool(self.workers, **kwargs)

    def warm(self) -> "ParallelExecutor":
        """Create the persistent pool now, off any request path.

        Long-running services call this at startup so the first guarded
        or sharded query never pays pool construction.  With one worker
        there is nothing to warm (everything runs inline).
        """
        if self.workers > 1:
            self._query_pool()
        return self

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "live pool" if self._pool is not None else "no pool"
        return f"<ParallelExecutor workers={self.workers} ({state})>"

    # ------------------------------------------------------------------
    # per-query parallelism
    # ------------------------------------------------------------------
    def match(
        self,
        graph: Graph,
        pattern: Pattern,
        index: AttributeIndex | None = None,
        num_shards: int | None = None,
        frozen: FrozenGraph | None = None,
        oracle: DistanceOracle | None = None,
        budget: QueryBudget | None = None,
        candidates: dict[str, set[NodeId]] | None = None,
    ) -> MatchResult:
        """``M(Q,G)`` via sharded evaluation: partition, fan out, merge.

        Candidate generation runs once in the calling process (through
        ``index`` when given, or skipped entirely when the caller passes
        precomputed ``candidates`` — the serving layer computes them
        under its per-epoch index lock); the graph is decomposed into
        ``num_shards`` (default: one per worker) ball shards whose
        successor rows the pool computes; the merged state then runs the
        standard removal fixpoint.  The result carries full refinement
        state, exactly like :func:`~repro.matching.bounded.match_bounded`.

        All shard work runs over a :class:`FrozenGraph` snapshot — the
        caller's ``frozen`` (the engine passes its cached one; it must
        match the graph's current version) or one frozen here.  Shards
        ship as flat CSR buffers, not pickled dict graphs.  With an
        ``oracle`` (a :class:`~repro.graph.oracle.DistanceOracle` built
        from the same snapshot lineage), workers route selective pattern
        edges to pairwise label merges: shared-snapshot shards query the
        process-shared oracle, while materialized ball shards receive the
        label *slices* their pivots and child candidates need, re-keyed to
        ball ids, alongside the frozen shard payload.

        A ``budget`` (:class:`~repro.engine.estimator.QueryBudget`) guards
        the fan-out as one query: workers charge a *shared* visit counter,
        so the node budget governs total work across shards (sequential
        and guarded-parallel runs agree on whether the budget trips); a
        wall-clock limit aborts in-flight workers via pool termination,
        and shards that never reported merge as empty rows — a sound
        under-approximation flagged ``stats["partial"] = True``.

        Thread-safe: concurrent calls serialize on an instance lock for
        the fan-out itself (the sharded machinery installs process-wide
        module globals), which is what lets a threaded query service
        share one executor across requests.
        """
        pattern.validate()
        watch = Stopwatch()
        if frozen is not None and not frozen.matches(graph):
            raise EvaluationError(
                f"stale frozen snapshot: {frozen!r} does not match "
                f"graph version {graph.version}"
            )
        if candidates is None:
            candidates = candidates_from_index(graph, pattern, index)
        if frozen is None:
            frozen = FrozenGraph.freeze(graph)
        if oracle is not None and not oracle.compatible_with(frozen):
            raise EvaluationError(
                f"stale distance oracle: {oracle!r} does not match {frozen!r}"
            )
        shards = decompose(
            graph, pattern, candidates, num_shards or self.workers, frozen=frozen
        )
        # Balls pay off when they are selective; for broad queries they
        # overlap so much that slicing and shipping one induced
        # sub-snapshot per shard costs more than sharing the one full
        # snapshot (fork inheritance makes sharing free on POSIX).
        # Ownership and soundness are identical either way: a BFS from a
        # pivot sees the same nodes in its ball sub-snapshot as in any
        # super-snapshot of it.
        inline = self.workers == 1 or len(shards) <= 1
        ball_total = sum(len(shard.nodes) for shard in shards)
        # Inline runs read the full snapshot directly — slicing a ball
        # sub-snapshot would copy it for nothing.
        materialize = not inline and ball_total <= graph.num_nodes
        # Without per-ball restriction the candidate id arrays are
        # identical across shards; build them once and let every payload
        # reference the same objects.
        shared_arrays = (
            None
            if materialize
            else self._candidate_arrays(frozen.ids(), candidates, pattern, shards)
        )
        payloads = [
            self._shard_payload(
                frozen, pattern, shard, candidates, materialize, shared_arrays,
                oracle=oracle,
            )
            for shard in shards
        ]
        guarded = budget is not None and budget.is_limited
        if guarded:
            budget.validate()
        guard_stats: dict[str, Any] = {}
        with self._match_serial:
            if inline:
                guard = QueryGuard(budget) if guarded else None
                _set_shared_frozen(frozen, oracle)
                _set_shard_guard(guard)
                try:
                    results = [_shard_rows(payload) for payload in payloads]
                finally:
                    _set_shared_frozen(None)
                    _set_shard_guard(None)
                if guard is not None:
                    guard_stats = guard.stats()
            elif guarded and budget.seconds is None:
                # Node-only budgets never need to kill workers mid-flight,
                # so they run on the persistent pool: the shared visit
                # counter was installed at pool creation and pool
                # construction stays off the per-call path (the churn the
                # serving layer cares about).
                results, guard_stats = self._guarded_persistent_map(
                    frozen, payloads, oracle, budget
                )
            elif guarded:
                # A wall-clock limit may require terminating in-flight
                # workers, which would destroy a persistent pool — only
                # these calls pay for a dedicated pool.
                results, guard_stats = self._guarded_map(
                    frozen, payloads, oracle, budget
                )
            elif materialize:
                results = self._query_pool().map(_shard_rows, payloads)
            elif self._pool is not None:
                # A warm persistent pool exists (a long-running service):
                # ship the shared snapshot inside the tasks — a file path
                # when mmap-backed, memoized per worker — instead of
                # forking a dedicated pool per broad-cover call, keeping
                # pool construction off the request path entirely.
                shipped_frozen, shipped_oracle = _shipment(frozen, oracle)
                tasks = [
                    (payload, shipped_frozen, shipped_oracle)
                    for payload in payloads
                ]
                results = self._pool.map(_shard_rows_shipped, tasks)
            else:
                results = self._shared_frozen_map(frozen, payloads, oracle=oracle)
        merged: dict[PatternEdge, dict[NodeId, dict[NodeId, int]]] = {}
        for rows, _info in results:
            for edge, row in rows.items():
                merged.setdefault(edge, {}).update(row)
        state = BoundedState.from_successor_rows(
            graph, pattern, candidates, merged,
            allow_missing=bool(guard_stats.get("partial")),
        )
        relation = state.relation()
        stats = {
            "algorithm": (
                "simulation" if pattern.is_simulation_pattern else "bounded-simulation"
            ),
            "seconds": watch.seconds(),
            "candidate_source": "scan" if index is None else "index",
            "parallel": {
                "mode": "sharded-query",
                "workers": self.workers,
                "shards": len(shards),
                "pivots": sum(shard.num_pivots for shard in shards),
                "shipping": (
                    "inline"
                    if inline
                    else ("ball-subgraphs" if materialize else "shared-graph")
                ),
            },
        }
        stats.update(guard_stats)
        return MatchResult(graph, pattern, relation, stats=stats, state=state)

    @staticmethod
    def _candidate_arrays(
        ids: dict[NodeId, int],
        candidates: dict[str, set[NodeId]],
        pattern: Pattern,
        shards: Sequence[Shard],
    ) -> dict[str, array]:
        """Dense candidate id arrays for every pattern node any shard filters
        against (the union of the shards' out-edge targets)."""
        targets_needed = {
            edge_target
            for shard in shards
            for u in shard.pivots
            for edge_target, _bound in pattern.out_edges(u)
        }
        return {
            u: array("q", sorted(ids[v] for v in candidates[u]))
            for u in targets_needed
        }

    @staticmethod
    def _shard_payload(
        frozen: FrozenGraph,
        pattern: Pattern,
        shard: Shard,
        candidates: dict[str, set[NodeId]],
        materialize: bool,
        shared_arrays: dict[str, array] | None,
        oracle: DistanceOracle | None = None,
    ) -> ShardPayload:
        """What one worker needs, as flat buffers over a frozen snapshot.

        ``materialize=True`` slices the ball sub-snapshot out of the full
        one (CSR filtering, no dict graph in between) and indexes pivots
        and candidates against *its* dense ids, restricted to the ball
        (entries beyond it are unreachable within the depths);
        ``materialize=False`` sends no snapshot at all — ids refer to the
        process-shared full one and the candidate arrays are the
        ``shared_arrays`` built once for the whole decomposition.

        With an ``oracle``, a materialized payload also carries the label
        slice for the edges the cost model routes to pairwise merges:
        forward rows of the shard's pivots (plus the successors needed for
        self-cycle fixes), reverse rows of the routed edges' child
        candidates — re-keyed to ball ids, so the worker joins against its
        ball adjacency directly.
        """
        edges_spec = {u: tuple(pattern.out_edges(u)) for u in shard.pivots}
        targets_needed = {
            edge_target
            for out_edges in edges_spec.values()
            for edge_target, _bound in out_edges
        }
        if materialize:
            ball = frozen.induced(
                shard.nodes,
                name=f"{frozen.name}#shard{shard.index}",
                include_attrs=False,
            )
            ids = ball.ids()
            candidate_arrays = {
                u: array("q", sorted(ids[v] for v in candidates[u] & shard.nodes))
                for u in targets_needed
            }
            oracle_slice = (
                ParallelExecutor._slice_for_shard(
                    frozen, pattern, shard, candidates, oracle, ball
                )
                if oracle is not None
                else None
            )
        else:
            assert shared_arrays is not None
            ball = None
            ids = frozen.ids()
            candidate_arrays = {u: shared_arrays[u] for u in targets_needed}
            oracle_slice = None  # workers query the process-shared oracle
        pivot_ids = {
            u: tuple(ids[v] for v in pivots) for u, pivots in shard.pivots.items()
        }
        return (ball, edges_spec, pivot_ids, candidate_arrays, oracle_slice)

    @staticmethod
    def _slice_for_shard(
        frozen: FrozenGraph,
        pattern: Pattern,
        shard: Shard,
        candidates: dict[str, set[NodeId]],
        oracle: DistanceOracle,
        ball: FrozenGraph,
    ) -> "OracleSlice | None":
        """The label slice a materialized shard ships, or None if no edge
        of this shard routes to the oracle (cost model, shard-local pivot
        counts)."""
        from repro.engine.planner import KERNEL_ORACLE, route_edge
        from repro.matching.bounded import FROZEN_BULK_DEPTH

        full_ids = frozen.ids()
        profile = oracle.profile()
        routed: set[tuple[str, str]] = set()
        out_nodes: set[int] = set()
        in_nodes: set[int] = set()
        successor_sets = frozen.successor_sets()
        for source_pattern, pivots in shard.pivots.items():
            pivot_ids = [full_ids[v] for v in pivots]
            for edge_target, bound in pattern.out_edges(source_pattern):
                children = candidates[edge_target] & shard.nodes
                route = route_edge(
                    (source_pattern, edge_target),
                    bound,
                    len(pivot_ids),
                    len(children),
                    ball.num_nodes,
                    ball.num_edges,
                    profile if oracle.covers(bound) else None,
                    bulk_depth=FROZEN_BULK_DEPTH,
                )
                if route.kernel != KERNEL_ORACLE:
                    continue
                routed.add((source_pattern, edge_target))
                child_ids = {full_ids[v] for v in children}
                out_nodes.update(pivot_ids)
                in_nodes.update(child_ids)
                for pivot_id in pivot_ids:
                    if pivot_id in child_ids:
                        # Self-cycle fixes merge through the successors.
                        out_nodes.update(successor_sets[pivot_id])
                        in_nodes.add(pivot_id)
        if not routed:
            return None
        ball_ids = ball.ids()
        labels = frozen.labels
        remap = {full_id: ball_ids[labels[full_id]] for full_id in out_nodes | in_nodes}
        label_slice = oracle.slice_rows(out_nodes, in_nodes, remap=remap)
        label_slice.edges = frozenset(routed)
        return label_slice

    def _guarded_persistent_map(
        self,
        frozen: FrozenGraph,
        payloads: list[ShardPayload],
        oracle: DistanceOracle | None,
        budget: QueryBudget,
    ) -> tuple[list, dict[str, Any]]:
        """Fan guarded shard work out over the *persistent* pool.

        For budgets without a wall-clock limit nothing ever has to be
        terminated mid-flight, so the long-lived pool can serve guarded
        calls too — tasks carry the shipped snapshot (a file path for
        mmap-backed stores, memoized worker-side) and the budget, while
        the shared visit counter installed at pool creation aggregates
        work across workers exactly like the dedicated-pool path.  Calls
        are serialized: one budget at a time owns the counter.
        ``Pool.map`` waits for every task before raising the first error,
        so no straggler outlives the call and charges a reset counter.
        """
        shipped_frozen, shipped_oracle = _shipment(frozen, oracle)
        with self._guard_serial:
            pool = self._query_pool()
            counter = self._guard_counter
            with counter.get_lock():
                counter.value = 0
            tasks = [
                (payload, shipped_frozen, shipped_oracle, budget)
                for payload in payloads
            ]
            results = pool.map(_shard_rows_guarded, tasks)
            visits = counter.value
        tripped = None
        replans = 0
        for _rows, info in results:
            replans += info.get("replans", 0)
            if tripped is None and info.get("guard"):
                tripped = info["guard"]
        guard_stats: dict[str, Any] = {
            "partial": tripped is not None,
            "visits": visits,
        }
        if tripped is not None:
            guard_stats["guard"] = tripped
        if replans:
            guard_stats["replans"] = replans
        return results, guard_stats

    def _guarded_map(
        self,
        frozen: FrozenGraph,
        payloads: list[ShardPayload],
        oracle: DistanceOracle | None,
        budget: QueryBudget,
    ) -> tuple[list, dict[str, Any]]:
        """Fan shard work out under a budget shared across all workers.

        A dedicated pool forks with the snapshot *and* the guard state —
        ``(budget, shared counter, absolute deadline)`` — in its globals;
        each worker builds a :class:`QueryGuard` around the shared counter,
        so one node budget governs the sum of all shards' work.  The
        parent drains ``imap_unordered`` with the remaining wall-clock as
        timeout: when time runs out it *terminates* the pool, cancelling
        in-flight shards; their pivots merge as missing (empty) rows — a
        sound under-approximation.  ``time.monotonic`` is comparable
        across processes on Linux, so the absolute deadline forks as-is.
        """
        counter = self._ctx.Value("q", 0)
        deadline = (
            time.monotonic() + budget.seconds
            if budget.seconds is not None
            else None
        )
        aborted = False
        results: list = []
        pool = None
        _set_shared_frozen(frozen, oracle)
        _set_shard_guard((budget, counter, deadline))
        try:
            if self._ctx.get_start_method() == "fork":
                pool = self._dedicated_pool()
            else:
                pool = self._dedicated_pool(
                    initializer=_init_guarded_worker,
                    initargs=(*_shipment(frozen, oracle), budget, counter, deadline),
                )
            iterator = pool.imap_unordered(_shard_rows, payloads)
            for _ in payloads:
                try:
                    if deadline is None:
                        results.append(iterator.next())
                    else:
                        remaining = deadline - time.monotonic()
                        results.append(iterator.next(max(0.0, remaining)))
                except multiprocessing.TimeoutError:
                    aborted = True
                    break
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()
            _set_shared_frozen(None)
            _set_shard_guard(None)
        visits = counter.value
        tripped = GUARD_TIME_LIMIT if aborted else None
        replans = 0
        for _rows, info in results:
            replans += info.get("replans", 0)
            if tripped is None and info.get("guard"):
                tripped = info["guard"]
        if aborted and not budget.allow_partial:
            raise BudgetExceededError(
                f"query exceeded its {GUARD_TIME_LIMIT} (visits={visits}, "
                f"budget={budget}); in-flight shard workers were cancelled"
            )
        guard_stats: dict[str, Any] = {
            "partial": tripped is not None,
            "visits": visits,
        }
        if tripped is not None:
            guard_stats["guard"] = tripped
        if replans:
            guard_stats["replans"] = replans
        return results, guard_stats

    def _shared_frozen_map(
        self,
        frozen: FrozenGraph,
        payloads: list[ShardPayload],
        oracle: DistanceOracle | None = None,
    ) -> list:
        """Fan shard work out over a pool that shares the full snapshot.

        A dedicated pool is created per call: under the fork start method
        the children inherit the snapshot (and oracle labels, when routing
        uses them) from the parent's module globals at zero cost; under
        spawn the initializer ships their flat buffers once per worker.
        Either way beats pickling a near-full ball into every task, which
        is what broad-cover queries would otherwise pay.
        """
        _set_shared_frozen(frozen, oracle)
        try:
            if self._ctx.get_start_method() == "fork":
                pool = self._dedicated_pool()
            else:
                # Workers only traverse: ship the adjacency-only twin —
                # or just the file path when the snapshot is mmap-backed.
                pool = self._dedicated_pool(
                    initializer=_init_shared_worker,
                    initargs=_shipment(frozen, oracle),
                )
            with pool:
                return pool.map(_shard_rows, payloads)
        finally:
            _set_shared_frozen(None)

    # ------------------------------------------------------------------
    # bulk-ranking parallelism
    # ------------------------------------------------------------------
    #: Below this many matches the fork/IPC cost of a pool dwarfs the
    #: Dijkstra work; rank inline instead (still through the same code).
    RANK_FANOUT_THRESHOLD = 64

    def rank_many(
        self,
        context: RankingContext,
        metric: Any,
        nodes: Sequence[NodeId],
    ) -> list:
        """Fan per-match scoring out across the pool, in input order.

        ``metric=None`` selects the rich social-impact path (returns
        :class:`RankedMatch` objects); otherwise each node is scored with
        ``metric.score_bulk``.  The snapshot context ships once per worker
        (fork inheritance on POSIX, pool initializer elsewhere); tasks
        carry only node-id chunks.  Scores are deterministic functions of
        the snapshot, so the output is byte-identical to inline scoring —
        the differential tests assert it.  Results are absorbed back into
        ``context``'s memos so subsequent calls (and the engine's rank
        cache) reuse them.
        """
        nodes = list(nodes)
        if (
            self.workers == 1
            or len(nodes) < self.RANK_FANOUT_THRESHOLD
        ):
            _init_rank_worker(context, metric)
            try:
                results = _rank_chunk(nodes)
            finally:
                _init_rank_worker(None, None)
        else:
            # ~4 chunks per worker smooths out uneven per-match cost
            # (component sizes vary wildly) without inflating IPC.
            chunk_size = max(1, -(-len(nodes) // (self.workers * 4)))
            chunks = [
                nodes[i : i + chunk_size] for i in range(0, len(nodes), chunk_size)
            ]
            _init_rank_worker(context, metric)
            try:
                if self._ctx.get_start_method() == "fork":
                    pool = self._dedicated_pool()
                else:  # pragma: no cover - non-fork platforms
                    pool = self._dedicated_pool(
                        initializer=_init_rank_worker,
                        initargs=(context, metric),
                    )
                with pool:
                    results = [
                        item for chunk in pool.map(_rank_chunk, chunks) for item in chunk
                    ]
            finally:
                _init_rank_worker(None, None)
        if metric is None:
            # Detail memos are keyed by node alone, so absorbing is always
            # safe; metric scores are memoized by the caller, which knows
            # whether this metric instance may share the context's memo.
            context.absorb_details(results)
        return results

    # ------------------------------------------------------------------
    # per-batch parallelism
    # ------------------------------------------------------------------
    def match_many(
        self,
        graph: Graph,
        tasks: Sequence[tuple[Pattern, dict[str, tuple]]],
        table: dict[tuple, set[NodeId]],
        frozen: FrozenGraph | None = None,
        oracle: DistanceOracle | None = None,
        budget: QueryBudget | None = None,
    ) -> list[tuple[MatchRelation, dict[str, Any]]]:
        """Evaluate whole queries across the pool.

        Each task is ``(pattern, {pattern node: candidate-table key})``;
        ``table`` maps those keys (canonical predicate keys) to candidate
        sets computed once for the whole batch.  The graph, its frozen
        snapshot (when given — worker matchers then run the CSR kernels),
        the distance oracle (when given — worker matchers then route
        selective edges to label merges) and the table ship once per
        worker — fork inheritance on POSIX, pool initializer elsewhere —
        so a task pickles only its pattern and a few keys.  Returns
        ``(relation, worker stats)`` per task, in order.  With one worker
        (or one task) everything runs inline.

        A ``budget`` applies *per query*: each bounded-pattern task gets a
        fresh guard inside its worker (node and wall limits count from the
        task's own start), exactly as a sequential loop over the batch
        would apply it.
        """
        if not tasks:
            return []
        if frozen is not None and not frozen.matches(graph):
            raise EvaluationError(
                f"stale frozen snapshot: {frozen!r} does not match "
                f"graph version {graph.version}"
            )
        if oracle is not None:
            if frozen is None:
                raise EvaluationError(
                    "a distance oracle requires a frozen snapshot in the "
                    "batch-farming path"
                )
            if not oracle.compatible_with(frozen):
                raise EvaluationError(
                    f"stale distance oracle: {oracle!r} does not match {frozen!r}"
                )
        if budget is not None and budget.is_limited:
            budget.validate()
        else:
            budget = None
        if self.workers == 1 or len(tasks) == 1:
            _init_batch_worker(graph, table, frozen, oracle, budget)
            try:
                return [_batch_query(task) for task in tasks]
            finally:
                _init_batch_worker(None, None, None, None, None)
        try:
            if self._ctx.get_start_method() == "fork":
                # Children inherit graph, snapshot, oracle and table from
                # the parent's module globals for free (copy-on-write);
                # nothing to pickle.
                _init_batch_worker(graph, table, frozen, oracle, budget)
                pool = self._dedicated_pool()
            else:
                # Matchers in workers get candidates from the table, so
                # the snapshot ships without its attribute columns (or as
                # its backing file path when mmap-backed).
                if frozen is None:
                    shipped_frozen = shipped_oracle = None
                else:
                    shipped_frozen, shipped_oracle = _shipment(frozen, oracle)
                pool = self._dedicated_pool(
                    initializer=_init_batch_worker,
                    initargs=(graph, table, shipped_frozen, shipped_oracle, budget),
                )
            with pool:
                return pool.map(_batch_query, list(tasks))
        finally:
            _init_batch_worker(None, None, None, None, None)

    # ------------------------------------------------------------------
    # parallel oracle construction
    # ------------------------------------------------------------------
    def build_oracle(
        self,
        frozen: FrozenGraph,
        cap: int | None = None,
        top: int | None = None,
    ) -> DistanceOracle:
        """Build a :class:`DistanceOracle`, fanning phase two across workers.

        Phase one (the sequential top-landmark prefix) runs in the calling
        process; the independent phase-two landmark chunks are mapped over
        a dedicated pool that shares the phase-one labels — fork
        inheritance on POSIX, pool initializer elsewhere — and return flat
        entry triples.  Because phase-two pruning only ever consults the
        fixed phase-one labels, the resulting label arrays are
        byte-identical to a sequential :meth:`DistanceOracle.build`
        (asserted in ``tests/test_oracle.py``); workers only change the
        wall-clock.  With one worker everything runs inline.
        """
        if self.workers == 1:
            return DistanceOracle.build(frozen, cap=cap, top=top)
        return DistanceOracle.build(
            frozen, cap=cap, top=top, chunk_map=self._oracle_chunk_map
        )

    def _oracle_chunk_map(
        self, function: Callable[..., Any], chunks: Sequence[Any]
    ) -> list:
        """Map phase-two chunks over a context-sharing pool.

        ``function`` is always :func:`repro.graph.oracle.phase_two_chunk`;
        the build context was installed by ``DistanceOracle.build`` right
        before this call, so forked children inherit it.  Under spawn the
        initializer re-installs it from an explicit argument.
        """
        chunks = list(chunks)
        if len(chunks) <= 1:
            return [function(chunk) for chunk in chunks]
        if self._ctx.get_start_method() == "fork":
            pool = self._dedicated_pool()
        else:  # pragma: no cover - non-fork platforms
            from repro.graph.oracle import _build_context

            pool = self._dedicated_pool(
                initializer=set_build_context,
                initargs=(_build_context,),
            )
        with pool:
            return pool.map(function, chunks)  # repro-lint: disable=spawn-safety -- callers pass the module-level phase_two_chunk; asserted spawn-picklable by tests/test_parallel.py
