"""Parallel sharded evaluation — ball partitioning plus a worker pool.

Bounded simulation splits into two phases with very different shapes:

1. **successor-row construction** — one truncated BFS per candidate of
   every pattern node with out-edges.  This dominates evaluation cost and
   is embarrassingly parallel once the graph is decomposed into
   distance-bounded balls (:mod:`repro.graph.partition`): a worker holding
   the ball around its pivots computes exactly the rows the sequential
   matcher would, because each pivot's full radius-``depth`` ball is inside
   the shard.
2. **removal fixpoint** — a worklist cascade over the merged rows.  Pattern
   cycles and ``*`` bounds make refutations propagate arbitrarily far, so
   this phase is *not* ball-local; running it once over the merged state
   (:meth:`~repro.matching.bounded.BoundedState.from_successor_rows`) is
   the boundary refinement that makes the parallel result equal the
   sequential one exactly.  ``tests/test_differential.py`` asserts that
   equality over hundreds of seeded random graphs and patterns.

:class:`ParallelExecutor` fans both workloads out to a
:mod:`multiprocessing` pool:

* :meth:`ParallelExecutor.match` — *per-query* parallelism: shard one big
  query's successor-row work across workers, merge, refine.
* :meth:`ParallelExecutor.match_many` — *per-batch* parallelism: farm whole
  (pattern, candidates) tasks out, one query per worker at a time, with
  the data graph shipped once per worker via the pool initializer.

Simulation patterns (every bound 1) ride the same sharded machinery: with
all bounds 1, bounded simulation's fixpoint coincides with plain
simulation's, so the merged relation equals ``match_simulation``'s (also
asserted by the differential harness).

Workers are separate processes; a speedup needs actual spare cores.  On a
single-core host the sharded path still produces identical results, just
with fork/pickle overhead on top — ``benchmarks/bench_parallel_eval.py``
measures both situations honestly.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Sequence

from repro.errors import EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.graph.distance import bounded_descendants
from repro.graph.index import AttributeIndex, candidates_from_index
from repro.graph.partition import Shard, decompose
from repro.matching.base import MatchRelation, MatchResult, Stopwatch
from repro.matching.bounded import BoundedState, PatternEdge, match_bounded
from repro.matching.simulation import match_simulation
from repro.pattern.pattern import Pattern
from repro.ranking.topk import RankingContext

#: Per-shard worker payload: (ball subgraph or None, pattern, pivots,
#: candidates, depths).  ``None`` means "use the shared graph".
ShardPayload = tuple[Graph | None, Pattern, dict, dict, dict]

# Set once per batch worker (fork inheritance or pool initializer), so
# per-task payloads stay tiny: the graph and the shared candidate table —
# {predicate key: node set}, computed once for the whole batch — never
# travel per query; a task carries only its pattern and the table keys its
# pattern nodes resolve to.
_batch_graph: Graph | None = None
_batch_table: dict[tuple, set[NodeId]] | None = None

# The shared data graph for broad-cover sharded queries.  Under the fork
# start method the parent sets it *before* creating the pool and children
# inherit it for free (copy-on-write); under spawn the pool initializer
# ships it once per worker.
_shared_graph: Graph | None = None

# Bulk-ranking fan-out state: the snapshot context (and optionally the
# metric) ship once per worker — fork inheritance or pool initializer —
# so a ranking task carries only a chunk of node ids.
_rank_context: RankingContext | None = None
_rank_metric = None


def _set_shared_graph(graph: Graph | None) -> None:
    global _shared_graph
    _shared_graph = graph


def validate_workers(workers: int | None) -> int:
    """Normalize a ``workers`` argument: ``None`` means sequential (1).

    Raises :class:`EvaluationError` for anything that is not a positive
    integer, so every entry point (engine, CLI, facade) rejects bad values
    with one consistent message.
    """
    if workers is None:
        return 1
    if isinstance(workers, bool) or not isinstance(workers, int) or workers < 1:
        raise EvaluationError(f"workers must be a positive integer (got {workers!r})")
    return workers


def _shard_rows(
    payload: ShardPayload,
) -> dict[PatternEdge, dict[NodeId, dict[NodeId, int]]]:
    """Successor rows for one shard (runs inside a worker process).

    For every owned pivot: one truncated BFS over the ball subgraph (equal
    to a full-graph BFS because the cover is sound), filtered per out-edge
    against the child candidates present in the ball.
    """
    subgraph, pattern, pivots, candidates, depths = payload
    if subgraph is None:
        subgraph = _shared_graph
        assert subgraph is not None, "shared graph was not installed"
    rows: dict[PatternEdge, dict[NodeId, dict[NodeId, int]]] = {}
    for u, pivot_list in pivots.items():
        out_edges = list(pattern.out_edges(u))
        for target, _bound in out_edges:
            rows.setdefault((u, target), {})
        for pivot in pivot_list:
            reach = bounded_descendants(subgraph, pivot, depths[u])
            for target, bound in out_edges:
                child_cand = candidates[target]
                rows[(u, target)][pivot] = {
                    reached: dist
                    for reached, dist in reach.items()
                    if reached in child_cand and (bound is None or dist <= bound)
                }
    return rows


def _init_batch_worker(
    graph: Graph | None, table: dict[tuple, set[NodeId]] | None
) -> None:
    global _batch_graph, _batch_table
    _batch_graph = graph
    _batch_table = table


def _init_rank_worker(context: RankingContext | None, metric) -> None:
    global _rank_context, _rank_metric
    _rank_context = context
    _rank_metric = metric


def _rank_chunk(nodes: Sequence[NodeId]) -> list:
    """Score one chunk of matches against the worker's snapshot context.

    With no metric installed this is the rich social-impact path and
    returns :class:`~repro.ranking.social_impact.RankedMatch` objects;
    otherwise it returns the metric's ``score_bulk`` floats.  Either way
    the values are pure functions of the immutable snapshot, so they are
    identical to what the parent would compute inline.
    """
    context = _rank_context
    assert context is not None, "ranking context was not installed"
    if _rank_metric is None:
        return [context.detail(node) for node in nodes]
    return [_rank_metric.score_bulk(context, node) for node in nodes]


def _batch_query(
    payload: tuple[Pattern, dict[str, tuple]],
) -> tuple[MatchRelation, dict[str, Any]]:
    """Evaluate one whole query against the worker's graph (batch mode)."""
    pattern, key_by_node = payload
    assert _batch_graph is not None, "batch graph was not installed"
    assert _batch_table is not None, "batch candidate table was not installed"
    candidates = {u: _batch_table[key] for u, key in key_by_node.items()}
    if pattern.is_simulation_pattern:
        result = match_simulation(_batch_graph, pattern, candidates=candidates)
    else:
        result = match_bounded(_batch_graph, pattern, candidates=candidates)
    return result.relation, result.stats


class ParallelExecutor:
    """A reusable worker pool for sharded and batched evaluation.

    The pool is created lazily on first parallel use and reused across
    calls (forking a pool costs more than a small query); close it with
    :meth:`close` or use the executor as a context manager.  With
    ``workers=1`` everything runs inline in the calling process — same
    code path, no processes — so callers can treat the executor as the one
    evaluation front end regardless of parallelism.

    >>> from repro.datasets.paper_example import paper_graph, paper_pattern
    >>> with ParallelExecutor(workers=2) as executor:
    ...     result = executor.match(paper_graph(), paper_pattern())
    >>> sorted(result.relation.matches_of("SA"))
    ['Bob', 'Walt']
    >>> result.stats["parallel"]["workers"]
    2
    """

    def __init__(self, workers: int, start_method: str | None = None) -> None:
        self.workers = validate_workers(workers)
        self._ctx = multiprocessing.get_context(start_method)
        self._pool = None

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _query_pool(self):
        if self._pool is None:
            self._pool = self._ctx.Pool(self.workers)
        return self._pool

    def close(self) -> None:
        """Terminate the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        state = "live pool" if self._pool is not None else "no pool"
        return f"<ParallelExecutor workers={self.workers} ({state})>"

    # ------------------------------------------------------------------
    # per-query parallelism
    # ------------------------------------------------------------------
    def match(
        self,
        graph: Graph,
        pattern: Pattern,
        index: AttributeIndex | None = None,
        num_shards: int | None = None,
    ) -> MatchResult:
        """``M(Q,G)`` via sharded evaluation: partition, fan out, merge.

        Candidate generation runs once in the calling process (through
        ``index`` when given); the graph is decomposed into
        ``num_shards`` (default: one per worker) ball shards whose
        successor rows the pool computes; the merged state then runs the
        standard removal fixpoint.  The result carries full refinement
        state, exactly like :func:`~repro.matching.bounded.match_bounded`.
        """
        pattern.validate()
        watch = Stopwatch()
        candidates = candidates_from_index(graph, pattern, index)
        shards = decompose(graph, pattern, candidates, num_shards or self.workers)
        # Balls pay off when they are selective; for broad queries they
        # overlap so much that materializing and shipping one induced
        # subgraph per shard costs more than sharing the one full graph
        # (fork inheritance makes sharing free on POSIX).  Ownership and
        # soundness are identical either way: a BFS from a pivot sees the
        # same nodes in its ball subgraph as in any supergraph of it.
        inline = self.workers == 1 or len(shards) <= 1
        ball_total = sum(len(shard.nodes) for shard in shards)
        # Inline runs read the caller's graph directly — materializing a
        # ball subgraph would copy it for nothing.
        materialize = not inline and ball_total <= graph.num_nodes
        payloads = [
            self._shard_payload(graph, pattern, shard, candidates, materialize)
            for shard in shards
        ]
        if inline:
            _set_shared_graph(graph)
            try:
                rows_list = [_shard_rows(payload) for payload in payloads]
            finally:
                _set_shared_graph(None)
        elif materialize:
            rows_list = self._query_pool().map(_shard_rows, payloads)
        else:
            rows_list = self._shared_graph_map(graph, payloads)
        merged: dict[PatternEdge, dict[NodeId, dict[NodeId, int]]] = {}
        for rows in rows_list:
            for edge, row in rows.items():
                merged.setdefault(edge, {}).update(row)
        state = BoundedState.from_successor_rows(graph, pattern, candidates, merged)
        relation = state.relation()
        stats = {
            "algorithm": (
                "simulation" if pattern.is_simulation_pattern else "bounded-simulation"
            ),
            "seconds": watch.seconds(),
            "candidate_source": "scan" if index is None else "index",
            "parallel": {
                "mode": "sharded-query",
                "workers": self.workers,
                "shards": len(shards),
                "pivots": sum(shard.num_pivots for shard in shards),
                "shipping": (
                    "inline"
                    if inline
                    else ("ball-subgraphs" if materialize else "shared-graph")
                ),
            },
        }
        return MatchResult(graph, pattern, relation, stats=stats, state=state)

    @staticmethod
    def _shard_payload(
        graph: Graph,
        pattern: Pattern,
        shard: Shard,
        candidates: dict[str, set[NodeId]],
        materialize: bool,
    ) -> ShardPayload:
        """What one worker needs: the ball (sub)graph and local candidates.

        Candidates are restricted to the ball — entries beyond it are
        unreachable within the shard's depths anyway, and smaller sets mean
        smaller pickles.  ``materialize=False`` sends no graph at all; the
        worker reads the shared one.
        """
        local_candidates = {u: vs & shard.nodes for u, vs in candidates.items()}
        return (
            shard.subgraph(graph) if materialize else None,
            pattern,
            dict(shard.pivots),
            local_candidates,
            dict(shard.depths),
        )

    def _shared_graph_map(self, graph: Graph, payloads: list[ShardPayload]):
        """Fan shard work out over a pool that shares the full graph.

        A dedicated pool is created per call: under the fork start method
        the children inherit the graph from the parent's module global at
        zero cost; under spawn the initializer ships it once per worker.
        That beats pickling a near-full induced subgraph into every task,
        which is what broad-cover queries would otherwise pay.
        """
        _set_shared_graph(graph)
        try:
            if self._ctx.get_start_method() == "fork":
                pool = self._ctx.Pool(self.workers)
            else:  # pragma: no cover - non-fork platforms
                pool = self._ctx.Pool(
                    self.workers, initializer=_set_shared_graph, initargs=(graph,)
                )
            with pool:
                return pool.map(_shard_rows, payloads)
        finally:
            _set_shared_graph(None)

    # ------------------------------------------------------------------
    # bulk-ranking parallelism
    # ------------------------------------------------------------------
    #: Below this many matches the fork/IPC cost of a pool dwarfs the
    #: Dijkstra work; rank inline instead (still through the same code).
    RANK_FANOUT_THRESHOLD = 64

    def rank_many(
        self,
        context: RankingContext,
        metric,
        nodes: Sequence[NodeId],
    ) -> list:
        """Fan per-match scoring out across the pool, in input order.

        ``metric=None`` selects the rich social-impact path (returns
        :class:`RankedMatch` objects); otherwise each node is scored with
        ``metric.score_bulk``.  The snapshot context ships once per worker
        (fork inheritance on POSIX, pool initializer elsewhere); tasks
        carry only node-id chunks.  Scores are deterministic functions of
        the snapshot, so the output is byte-identical to inline scoring —
        the differential tests assert it.  Results are absorbed back into
        ``context``'s memos so subsequent calls (and the engine's rank
        cache) reuse them.
        """
        nodes = list(nodes)
        if (
            self.workers == 1
            or len(nodes) < self.RANK_FANOUT_THRESHOLD
        ):
            _init_rank_worker(context, metric)
            try:
                results = _rank_chunk(nodes)
            finally:
                _init_rank_worker(None, None)
        else:
            # ~4 chunks per worker smooths out uneven per-match cost
            # (component sizes vary wildly) without inflating IPC.
            chunk_size = max(1, -(-len(nodes) // (self.workers * 4)))
            chunks = [
                nodes[i : i + chunk_size] for i in range(0, len(nodes), chunk_size)
            ]
            _init_rank_worker(context, metric)
            try:
                if self._ctx.get_start_method() == "fork":
                    pool = self._ctx.Pool(self.workers)
                else:  # pragma: no cover - non-fork platforms
                    pool = self._ctx.Pool(
                        self.workers,
                        initializer=_init_rank_worker,
                        initargs=(context, metric),
                    )
                with pool:
                    results = [
                        item for chunk in pool.map(_rank_chunk, chunks) for item in chunk
                    ]
            finally:
                _init_rank_worker(None, None)
        if metric is None:
            # Detail memos are keyed by node alone, so absorbing is always
            # safe; metric scores are memoized by the caller, which knows
            # whether this metric instance may share the context's memo.
            context.absorb_details(results)
        return results

    # ------------------------------------------------------------------
    # per-batch parallelism
    # ------------------------------------------------------------------
    def match_many(
        self,
        graph: Graph,
        tasks: Sequence[tuple[Pattern, dict[str, tuple]]],
        table: dict[tuple, set[NodeId]],
    ) -> list[tuple[MatchRelation, dict[str, Any]]]:
        """Evaluate whole queries across the pool.

        Each task is ``(pattern, {pattern node: candidate-table key})``;
        ``table`` maps those keys (canonical predicate keys) to candidate
        sets computed once for the whole batch.  The graph and the table
        ship once per worker — fork inheritance on POSIX, pool initializer
        elsewhere — so a task pickles only its pattern and a few keys.
        Returns ``(relation, worker stats)`` per task, in order.  With one
        worker (or one task) everything runs inline.
        """
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            _init_batch_worker(graph, table)
            try:
                return [_batch_query(task) for task in tasks]
            finally:
                _init_batch_worker(None, None)
        try:
            if self._ctx.get_start_method() == "fork":
                # Children inherit graph and table from the parent's module
                # globals for free (copy-on-write); nothing to pickle.
                _init_batch_worker(graph, table)
                pool = self._ctx.Pool(self.workers)
            else:  # pragma: no cover - non-fork platforms
                pool = self._ctx.Pool(
                    self.workers,
                    initializer=_init_batch_worker,
                    initargs=(graph, table),
                )
            with pool:
                return pool.map(_batch_query, list(tasks))
        finally:
            _init_batch_worker(None, None)
