"""A library of named pattern queries over the bundled attribute schema.

The demo's Fig. 4 shows three prepared queries (Q1, Q2, Q3) with "different
search conditions and topology"; this module is the reproduction's query
library: ready-made patterns over the generator schema
(``field`` / ``specialty`` / ``experience``) exercising distinct topologies
— a star, a chain, a diamond, a cycle, and an unbounded-reachability
variant.  Examples, tests and benchmarks draw from it.
"""

from __future__ import annotations

from repro.errors import PatternError
from repro.pattern.builder import PatternBuilder
from repro.pattern.pattern import Pattern


def q1_team_star(experience: int = 5) -> Pattern:
    """Q1: a lead (output) directly steering three specialist roles — star."""
    return (
        PatternBuilder("q1-team-star")
        .node("SA", f"experience >= {experience}", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("BA", "experience >= 2", field="BA")
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "SD", 2)
        .edge("SA", "BA", 2)
        .edge("SA", "ST", 3)
        .build(require_output=True)
    )


def q2_delivery_chain(experience: int = 5) -> Pattern:
    """Q2: a delivery pipeline SA -> SD -> ST -> UX — chain."""
    return (
        PatternBuilder("q2-delivery-chain")
        .node("SA", f"experience >= {experience}", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("ST", "experience >= 1", field="ST")
        .node("UX", "experience >= 1", field="UX")
        .edge("SA", "SD", 2)
        .edge("SD", "ST", 2)
        .edge("ST", "UX", 3)
        .build(require_output=True)
    )


def q3_review_diamond(experience: int = 4) -> Pattern:
    """Q3: two parallel routes converging on testers — diamond (the Fig. 1
    topology, with the output on the apex)."""
    return (
        PatternBuilder("q3-review-diamond")
        .node("SA", f"experience >= {experience}", field="SA", output=True)
        .node("SD", "experience >= 2", field="SD")
        .node("BA", "experience >= 2", field="BA")
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "SD", 2)
        .edge("SA", "BA", 3)
        .edge("SD", "ST", 1)
        .edge("BA", "ST", 2)
        .build(require_output=True)
    )


def q4_feedback_cycle(experience: int = 4) -> Pattern:
    """Q4: a lead and a tester in a mutual feedback loop — cyclic pattern
    (the case that stresses greatest-fixpoint machinery)."""
    return (
        PatternBuilder("q4-feedback-cycle")
        .node("SA", f"experience >= {experience}", field="SA", output=True)
        .node("ST", "experience >= 2", field="ST")
        .edge("SA", "ST", 2)
        .edge("ST", "SA", 2)
        .build(require_output=True)
    )


def q5_reachability(experience: int = 6) -> Pattern:
    """Q5: an architect connected to a data scientist by ANY collaboration
    chain — the '*' (unbounded) edge of the paper's notation."""
    return (
        PatternBuilder("q5-reachability")
        .node("SA", f"experience >= {experience}", field="SA", output=True)
        .node("DS", "experience >= 2", field="DS")
        .edge("SA", "DS", None)
        .build(require_output=True)
    )


#: Name -> zero-argument constructor, for the CLI and tests.
QUERY_LIBRARY = {
    "q1-team-star": q1_team_star,
    "q2-delivery-chain": q2_delivery_chain,
    "q3-review-diamond": q3_review_diamond,
    "q4-feedback-cycle": q4_feedback_cycle,
    "q5-reachability": q5_reachability,
}


def get_query(name: str) -> Pattern:
    """Instantiate a library query by name."""
    try:
        return QUERY_LIBRARY[name]()
    except KeyError:
        known = ", ".join(sorted(QUERY_LIBRARY))
        raise PatternError(f"unknown library query {name!r} (known: {known})") from None
