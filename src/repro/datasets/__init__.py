"""Bundled datasets: the paper's Fig. 1 example and named synthetic configs."""

from repro.datasets.paper_example import (
    EDGE_E1,
    PAPER_RANKS,
    PAPER_RELATION,
    paper_graph,
    paper_pattern,
)

__all__ = [
    "EDGE_E1",
    "PAPER_RANKS",
    "PAPER_RELATION",
    "paper_graph",
    "paper_pattern",
]
