"""The paper's running example (Fig. 1), reconstructed.

The ICDE'13 text ships without a readable figure, but it states enough facts
to pin a reconstruction down (see DESIGN.md §3): the exact match relation of
Example 1, both social-impact ranks of Example 2 (9/5 for Bob, 7/3 for
Walt), the exact ``ΔM = {(SD, Fred)}`` of Example 3, the length-3
collaboration path from Bob to Jean, and the Pat/Fred equivalence that the
compression discussion uses.  The graph and pattern below satisfy all of
them; ``tests/test_paper_example.py`` enforces each fact.
"""

from __future__ import annotations

from repro.graph.digraph import Edge, Graph
from repro.pattern.pattern import Pattern

#: The update of Example 3: inserting this edge makes Fred a match of SD.
EDGE_E1: Edge = ("Fred", "Eva")

#: Example 1's match relation (before inserting ``EDGE_E1``).
PAPER_RELATION: dict[str, frozenset[str]] = {
    "SA": frozenset({"Bob", "Walt"}),
    "SD": frozenset({"Dan", "Mat", "Pat"}),
    "BA": frozenset({"Jean"}),
    "ST": frozenset({"Eva"}),
}

#: Example 2's ranks for the two SA matches.
PAPER_RANKS: dict[str, float] = {"Bob": 9 / 5, "Walt": 7 / 3}

_PEOPLE: dict[str, dict[str, object]] = {
    "Walt": {"field": "SA", "specialty": "system architect", "experience": 5},
    "Bob": {"field": "SA", "specialty": "system architect", "experience": 7},
    "Jean": {"field": "BA", "specialty": "business analyst", "experience": 3},
    "Dan": {"field": "SD", "specialty": "programmer", "experience": 3},
    "Mat": {"field": "SD", "specialty": "programmer", "experience": 4},
    "Pat": {"field": "SD", "specialty": "DBA", "experience": 3},
    "Fred": {"field": "SD", "specialty": "DBA", "experience": 2},
    "Eva": {"field": "ST", "specialty": "tester", "experience": 2},
    "Bill": {"field": "GD", "specialty": "graphic designer", "experience": 2},
}

_EDGES: list[Edge] = [
    ("Bob", "Dan"),    # "(Bob, Dan): Dan worked in a project led by Bob"
    ("Bob", "Mat"),
    ("Bob", "Bill"),
    ("Bill", "Pat"),   # Bob -> Bill -> Pat -> Jean: the length-3 path to Jean
    ("Dan", "Eva"),
    ("Mat", "Eva"),
    ("Pat", "Jean"),   # Pat "collaborated with ST and BA people"
    ("Pat", "Eva"),
    ("Jean", "Eva"),
    ("Walt", "Fred"),
    ("Walt", "Bill"),
    ("Fred", "Jean"),  # Fred knows BA people, but reaches no tester directly
]


def paper_graph(include_e1: bool = False) -> Graph:
    """The collaboration network ``G`` of Fig. 1(b).

    ``include_e1=True`` applies the Example 3 update (edge Fred -> Eva).
    """
    graph = Graph(name="fig1-collaboration")
    for person, attrs in _PEOPLE.items():
        graph.add_node(person, name=person, **attrs)
    graph.add_edges(_EDGES)
    if include_e1:
        graph.add_edge(*EDGE_E1)
    return graph


def paper_pattern() -> Pattern:
    """The pattern query ``Q`` of Fig. 1(a).

    SA (output, >= 5 years) leads a team with SD / BA / ST experts; edge
    bounds follow the figure's {2, 2, 3, 1} with (SA,SD)=2 and (SA,BA)=3
    fixed by the prose.
    """
    pattern = Pattern(name="fig1-team")
    pattern.add_node("SA", 'field == "SA", experience >= 5', output=True)
    pattern.add_node("SD", 'field == "SD", experience >= 2')
    pattern.add_node("BA", 'field == "BA", experience >= 3')
    pattern.add_node("ST", 'field == "ST", experience >= 2')
    pattern.add_edge("SA", "SD", 2)
    pattern.add_edge("SA", "BA", 3)
    pattern.add_edge("SD", "ST", 1)
    pattern.add_edge("BA", "ST", 2)
    return pattern
