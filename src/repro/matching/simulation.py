"""Plain graph simulation — the quadratic special case (all bounds = 1).

Graph simulation [Henzinger, Henzinger & Kopke, FOCS 1995] requires each
pattern edge to map to a single data edge.  The paper uses it two ways: as
the fast path when every bound is 1, and as a foil — Example 1 shows it is
too restrictive for social networks (this repository's paper-example tests
reproduce that: simulation finds no match where bounded simulation finds
seven pairs).

The implementation is the standard counter-based refinement: start from
predicate candidates, count for every candidate and pattern edge how many of
its successors are still candidates of the child pattern node, and cascade
removals through predecessor lists when a count hits zero.  Each data edge
is examined O(1) times per pattern edge, giving O(|Q| * (|V| + |E|)).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from repro.errors import EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.graph.frozen import FrozenGraph
from repro.graph.index import AttributeIndex, candidates_from_index
from repro.matching.base import MatchRelation, MatchResult, Stopwatch
from repro.pattern.pattern import Pattern

PatternEdge = tuple[str, str]


def simulation_candidates(
    graph: Graph, pattern: Pattern, index: AttributeIndex | None = None
) -> dict[str, set[NodeId]]:
    """Predicate-satisfying candidates per pattern node.

    With an :class:`~repro.graph.index.AttributeIndex`, equality-shaped
    predicates are answered from postings and only the rest scan.  Without
    one, a single shared pass over the graph evaluates every distinct
    pattern predicate on every node.  Both paths live in
    :func:`~repro.graph.index.candidates_from_index`, so indexed and
    scanned candidates cannot drift apart.
    """
    return candidates_from_index(graph, pattern, index)


def refine_simulation(
    graph: Graph,
    pattern: Pattern,
    candidates: dict[str, set[NodeId]],
    frozen: FrozenGraph | None = None,
) -> dict[str, set[NodeId]]:
    """Greatest fixpoint of the simulation refinement, starting from
    ``candidates``.  Returns refined sets (mutates a private copy).

    With a ``frozen`` snapshot of ``graph`` the whole refinement runs
    int-indexed over the snapshot's CSR adjacency sets: successor counts
    are C-speed set intersections and the cascade probes int dicts.  The
    greatest fixpoint is unique, so the result is identical either way;
    a snapshot that no longer matches ``graph`` is rejected, never used.
    """
    pattern.validate()
    if frozen is not None:
        if not frozen.matches(graph):
            raise EvaluationError(
                f"stale frozen snapshot: {frozen!r} does not match "
                f"graph version {graph.version}"
            )
        return _refine_simulation_frozen(frozen, pattern, candidates)
    sim: dict[str, set[NodeId]] = {u: set(vs) for u, vs in candidates.items()}
    edges: list[PatternEdge] = [(u, t) for u, t, _ in pattern.edges()]
    counters: dict[PatternEdge, dict[NodeId, int]] = {}
    removal_queue: deque[tuple[str, NodeId]] = deque()
    queued: set[tuple[str, NodeId]] = set()

    def schedule(pattern_node: str, data_node: NodeId) -> None:
        key = (pattern_node, data_node)
        if key not in queued:
            queued.add(key)
            removal_queue.append(key)

    for edge in edges:
        source_pattern, target_pattern = edge
        child_set = sim[target_pattern]
        edge_counts: dict[NodeId, int] = {}
        for data_node in sim[source_pattern]:
            count = sum(1 for succ in graph.successors(data_node) if succ in child_set)
            edge_counts[data_node] = count
            if count == 0:
                schedule(source_pattern, data_node)
        counters[edge] = edge_counts

    in_edges_of: dict[str, list[PatternEdge]] = {u: [] for u in pattern.nodes()}
    for edge in edges:
        in_edges_of[edge[1]].append(edge)

    while removal_queue:
        pattern_node, data_node = removal_queue.popleft()
        if data_node not in sim[pattern_node]:
            continue
        sim[pattern_node].remove(data_node)
        for edge in in_edges_of[pattern_node]:
            parent_pattern = edge[0]
            edge_counts = counters[edge]
            for upstream in graph.predecessors(data_node):
                if upstream in edge_counts:
                    edge_counts[upstream] -= 1
                    if edge_counts[upstream] == 0 and upstream in sim[parent_pattern]:
                        schedule(parent_pattern, upstream)
    return sim


def _refine_simulation_frozen(
    frozen: FrozenGraph,
    pattern: Pattern,
    candidates: dict[str, set[NodeId]],
) -> dict[str, set[NodeId]]:
    """The counter-based refinement, int-indexed over the frozen snapshot."""
    ids = frozen.ids()
    labels = frozen.labels
    successor_sets = frozen.successor_sets()
    predecessor_sets = frozen.predecessor_sets()
    sim: dict[str, set[int]] = {
        u: {ids[v] for v in vs} for u, vs in candidates.items()
    }
    edges: list[PatternEdge] = [(u, t) for u, t, _ in pattern.edges()]
    counters: dict[PatternEdge, dict[int, int]] = {}
    removal_queue: deque[tuple[str, int]] = deque()
    queued: set[tuple[str, int]] = set()

    def schedule(pattern_node: str, node_id: int) -> None:
        key = (pattern_node, node_id)
        if key not in queued:
            queued.add(key)
            removal_queue.append(key)

    for edge in edges:
        source_pattern, target_pattern = edge
        child_set = sim[target_pattern]
        edge_counts: dict[int, int] = {}
        for node_id in sim[source_pattern]:
            count = len(successor_sets[node_id] & child_set)
            edge_counts[node_id] = count
            if count == 0:
                schedule(source_pattern, node_id)
        counters[edge] = edge_counts

    in_edges_of: dict[str, list[PatternEdge]] = {u: [] for u in pattern.nodes()}
    for edge in edges:
        in_edges_of[edge[1]].append(edge)

    while removal_queue:
        pattern_node, node_id = removal_queue.popleft()
        if node_id not in sim[pattern_node]:
            continue
        sim[pattern_node].remove(node_id)
        for edge in in_edges_of[pattern_node]:
            parent_pattern = edge[0]
            edge_counts = counters[edge]
            for upstream in predecessor_sets[node_id] & edge_counts.keys():
                edge_counts[upstream] -= 1
                if edge_counts[upstream] == 0 and upstream in sim[parent_pattern]:
                    schedule(parent_pattern, upstream)
    return {u: {labels[node_id] for node_id in vs} for u, vs in sim.items()}


def match_simulation(
    graph: Graph,
    pattern: Pattern,
    index: AttributeIndex | None = None,
    candidates: dict[str, set[NodeId]] | None = None,
    frozen: FrozenGraph | None = None,
) -> MatchResult:
    """Compute ``M(Q,G)`` under plain graph simulation.

    ``index`` routes candidate generation through an attribute index;
    ``candidates`` skips it entirely (the batch evaluator precomputes
    shared candidate sets and hands each query its own copy); ``frozen``
    (a current snapshot of ``graph``) runs the refinement over CSR
    adjacency — identical fixpoint, set-algebra speed.

    >>> from repro.graph.digraph import Graph
    >>> from repro.pattern.pattern import Pattern
    >>> g = Graph.from_edges([("a", "b")], nodes={"a": {"l": "X"}, "b": {"l": "Y"}})
    >>> q = Pattern(); q.add_node("X", 'l == "X"'); q.add_node("Y", 'l == "Y"')
    >>> q.add_edge("X", "Y", 1)
    >>> sorted(match_simulation(g, q).relation.pairs())
    [('X', 'a'), ('Y', 'b')]
    """
    watch = Stopwatch()
    if frozen is not None and not frozen.matches(graph):
        # refine_simulation re-checks, but failing here is cheaper: no
        # candidate generation happens for a snapshot we will reject.
        raise EvaluationError(
            f"stale frozen snapshot: {frozen!r} does not match "
            f"graph version {graph.version}"
        )
    if candidates is None:
        candidates = simulation_candidates(graph, pattern, index=index)
        candidate_source = "scan" if index is None else "index"
    else:
        candidate_source = "precomputed"
    refined = refine_simulation(graph, pattern, candidates, frozen=frozen)
    relation = MatchRelation.from_sets(pattern, refined)
    stats = {
        "algorithm": "simulation",
        "seconds": watch.seconds(),
        "candidate_source": candidate_source,
    }
    return MatchResult(graph, pattern, relation, stats=stats)


def simulates(graph: Graph, pattern: Pattern, pairs: Iterable[tuple[str, NodeId]]) -> bool:
    """Check whether a given set of pairs is a valid simulation relation.

    Test/diagnostic helper: verifies the two defining conditions for every
    pair (predicate satisfaction; every pattern edge mapped to a data edge
    whose endpoint is also in the relation).
    """
    by_pattern: dict[str, set[NodeId]] = {u: set() for u in pattern.nodes()}
    for pattern_node, data_node in pairs:
        by_pattern.setdefault(pattern_node, set()).add(data_node)
    for pattern_node, data_nodes in by_pattern.items():
        predicate = pattern.predicate(pattern_node)
        for data_node in data_nodes:
            if not predicate.evaluate(graph.attrs(data_node)):
                return False
            for child_pattern, _bound in pattern.out_edges(pattern_node):
                children = by_pattern.get(child_pattern, set())
                if not any(s in children for s in graph.successors(data_node)):
                    return False
    return True
