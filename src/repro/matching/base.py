"""Match relations and match results.

``M(Q, G)`` in the paper is a *relation* between pattern nodes and data
nodes — the maximum relation satisfying the (bounded) simulation conditions,
which is unique for each Q and G.  :class:`MatchRelation` is its immutable
value type; :class:`MatchResult` wraps a relation with provenance (query,
graph, algorithm, timings) and lazily derives the result graph.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping

from repro.errors import EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.pattern.pattern import Pattern

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.matching.result_graph import ResultGraph


class MatchRelation(Mapping):
    """An immutable mapping ``pattern node -> frozenset of data nodes``.

    Per the paper's semantics, the relation is *total or empty*: if any
    pattern node has no valid match the whole relation is empty.  Builders
    enforce that via :meth:`from_sets`' ``totality`` handling; the raw
    constructor stores exactly what it is given (useful for diagnostics).
    """

    __slots__ = ("_sets",)

    def __init__(self, sets: Mapping[str, Iterable[NodeId]]) -> None:
        self._sets: dict[str, frozenset[NodeId]] = {
            u: frozenset(vs) for u, vs in sets.items()
        }

    @classmethod
    def from_sets(
        cls, pattern: Pattern, sets: Mapping[str, Iterable[NodeId]]
    ) -> "MatchRelation":
        """Build the paper-semantics relation from refined candidate sets.

        Every pattern node must be a key of ``sets``; if any set is empty,
        the result is the empty relation (all pattern nodes map to the empty
        set), matching the all-or-nothing definition of ``M(Q,G)``.
        """
        missing = [u for u in pattern.nodes() if u not in sets]
        if missing:
            raise EvaluationError(f"sets missing pattern nodes: {missing}")
        materialized = {u: frozenset(sets[u]) for u in pattern.nodes()}
        if any(not vs for vs in materialized.values()):
            return cls({u: frozenset() for u in pattern.nodes()})
        return cls(materialized)

    # Mapping interface ----------------------------------------------------
    def __getitem__(self, pattern_node: str) -> frozenset[NodeId]:
        return self._sets[pattern_node]

    def __iter__(self) -> Iterator[str]:
        return iter(self._sets)

    def __len__(self) -> int:
        return len(self._sets)

    # relation views ---------------------------------------------------------
    def matches_of(self, pattern_node: str) -> frozenset[NodeId]:
        """Matches of one pattern node (empty frozenset if none)."""
        return self._sets.get(pattern_node, frozenset())

    def pairs(self) -> Iterator[tuple[str, NodeId]]:
        """All ``(pattern node, data node)`` pairs."""
        for pattern_node, data_nodes in self._sets.items():
            for data_node in data_nodes:
                yield (pattern_node, data_node)

    @property
    def num_pairs(self) -> int:
        return sum(len(vs) for vs in self._sets.values())

    @property
    def is_empty(self) -> bool:
        return all(not vs for vs in self._sets.values())

    def matched_data_nodes(self) -> frozenset[NodeId]:
        """All data nodes matched by at least one pattern node."""
        out: set[NodeId] = set()
        for data_nodes in self._sets.values():
            out.update(data_nodes)
        return frozenset(out)

    def diff(self, other: "MatchRelation") -> tuple[set, set]:
        """``(added, removed)`` pairs going from ``self`` to ``other``.

        This is ``ΔM`` of the paper's Example 3.
        """
        mine = set(self.pairs())
        theirs = set(other.pairs())
        return (theirs - mine, mine - theirs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MatchRelation):
            return NotImplemented
        return self._sets == other._sets

    def __hash__(self) -> int:
        return hash(tuple(sorted((u, vs) for u, vs in self._sets.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{u}:{len(vs)}" for u, vs in self._sets.items())
        return f"<MatchRelation {{{inner}}}>"

    # serialization ----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "repro.relation",
            "version": 1,
            "sets": {u: sorted(vs, key=repr) for u, vs in self._sets.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MatchRelation":
        if not isinstance(payload, Mapping) or payload.get("format") != "repro.relation":
            raise EvaluationError("not a repro.relation payload")
        return cls({u: frozenset(vs) for u, vs in payload["sets"].items()})


class MatchResult:
    """A match relation plus provenance and derived artefacts.

    Attributes
    ----------
    graph, pattern:
        The evaluated inputs (held by reference).
    relation:
        The :class:`MatchRelation` ``M(Q,G)``.
    stats:
        Free-form evaluation statistics: ``algorithm``, ``route``,
        ``seconds``, and anything the engine wants to record.
    """

    __slots__ = ("graph", "pattern", "relation", "stats", "_state", "_result_graph")

    def __init__(
        self,
        graph: Graph,
        pattern: Pattern,
        relation: MatchRelation,
        stats: dict[str, Any] | None = None,
        state: Any = None,
    ) -> None:
        self.graph = graph
        self.pattern = pattern
        self.relation = relation
        self.stats = stats or {}
        self._state = state
        self._result_graph: "ResultGraph | None" = None

    @property
    def is_match(self) -> bool:
        """True iff the pattern matched (relation is total, hence nonempty)."""
        return not self.relation.is_empty

    def matches_of(self, pattern_node: str) -> frozenset[NodeId]:
        return self.relation.matches_of(pattern_node)

    def output_matches(self) -> frozenset[NodeId]:
        """Matches of the pattern's output node (the candidate experts)."""
        output = self.pattern.output_node
        if output is None:
            raise EvaluationError("pattern has no output node")
        return self.relation.matches_of(output)

    def result_graph(self) -> "ResultGraph":
        """The weighted result graph (built once, then cached)."""
        if self._result_graph is None:
            from repro.matching.result_graph import build_result_graph

            self._result_graph = build_result_graph(
                self.graph, self.pattern, self.relation, state=self._state
            )
        return self._result_graph

    def __repr__(self) -> str:
        status = "match" if self.is_match else "no-match"
        return (
            f"<MatchResult {status}: {self.relation.num_pairs} pairs, "
            f"stats={self.stats!r}>"
        )


class Stopwatch:
    """Tiny perf_counter helper so matchers report comparable timings."""

    __slots__ = ("started",)

    def __init__(self) -> None:
        self.started = time.perf_counter()

    def seconds(self) -> float:
        return time.perf_counter() - self.started
