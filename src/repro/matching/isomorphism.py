"""Subgraph isomorphism baseline.

The paper's motivation (§I) contrasts bounded simulation with subgraph
isomorphism: isomorphism is NP-complete, forces a bijection (so one pattern
node cannot usefully match several experts) and requires every pattern edge
to map to a *single* data edge.  This module implements a classic
backtracking matcher (VF2-style candidate ordering and pruning) so the
benchmarks can demonstrate both the cost gap and the restrictiveness gap on
the same inputs.

Semantics: node predicates are honoured; every pattern edge must map to a
direct data edge (bounds are intentionally ignored — isomorphism has no
notion of paths); the mapping must be injective.
"""

from __future__ import annotations

from typing import Iterator

from repro.graph.digraph import Graph, NodeId
from repro.matching.simulation import simulation_candidates
from repro.pattern.pattern import Pattern

MappingType = dict[str, NodeId]


def find_isomorphisms(
    graph: Graph, pattern: Pattern, limit: int | None = None, index=None
) -> Iterator[MappingType]:
    """Yield injective embeddings of ``pattern`` into ``graph``.

    ``limit`` caps how many embeddings are produced (isomorphism counts are
    exponential; benchmarks use ``limit=1`` for existence checks).  An
    optional :class:`~repro.graph.index.AttributeIndex` serves the initial
    candidate sets instead of a full scan.

    >>> g = Graph.from_edges([("a", "b")], nodes={"a": {"l": "X"}, "b": {"l": "Y"}})
    >>> q = Pattern(); q.add_node("X", 'l == "X"'); q.add_node("Y", 'l == "Y"')
    >>> q.add_edge("X", "Y", 1)
    >>> list(find_isomorphisms(g, q))
    [{'X': 'a', 'Y': 'b'}]
    """
    pattern.validate()
    candidates = simulation_candidates(graph, pattern, index=index)
    order = _search_order(pattern, candidates)
    required_out = {u: len(dict(pattern.out_edges(u))) for u in pattern.nodes()}
    required_in = {u: len(dict(pattern.in_edges(u))) for u in pattern.nodes()}

    emitted = 0
    assignment: MappingType = {}
    used: set[NodeId] = set()

    def backtrack(depth: int) -> Iterator[MappingType]:
        nonlocal emitted
        if limit is not None and emitted >= limit:
            return
        if depth == len(order):
            emitted += 1
            yield dict(assignment)
            return
        pattern_node = order[depth]
        for data_node in candidates[pattern_node]:
            if data_node in used:
                continue
            if graph.out_degree(data_node) < required_out[pattern_node]:
                continue
            if graph.in_degree(data_node) < required_in[pattern_node]:
                continue
            if not _edges_consistent(graph, pattern, assignment, pattern_node, data_node):
                continue
            assignment[pattern_node] = data_node
            used.add(data_node)
            yield from backtrack(depth + 1)
            used.remove(data_node)
            del assignment[pattern_node]
            if limit is not None and emitted >= limit:
                return

    yield from backtrack(0)


def _search_order(pattern: Pattern, candidates: dict[str, set[NodeId]]) -> list[str]:
    """Most-constrained-first ordering: fewest candidates, then most edges."""
    def degree(u: str) -> int:
        return len(dict(pattern.out_edges(u))) + len(dict(pattern.in_edges(u)))

    return sorted(pattern.nodes(), key=lambda u: (len(candidates[u]), -degree(u), u))


def _edges_consistent(
    graph: Graph,
    pattern: Pattern,
    assignment: MappingType,
    pattern_node: str,
    data_node: NodeId,
) -> bool:
    for child_pattern, _bound in pattern.out_edges(pattern_node):
        if child_pattern == pattern_node:
            # Self-loop pattern edge: the candidate itself must carry one
            # (the node under assignment is not in `assignment` yet).
            if not graph.has_edge(data_node, data_node):
                return False
        elif child_pattern in assignment and not graph.has_edge(
            data_node, assignment[child_pattern]
        ):
            return False
    for parent_pattern, _bound in pattern.in_edges(pattern_node):
        if parent_pattern == pattern_node:
            continue  # already handled above
        if parent_pattern in assignment and not graph.has_edge(
            assignment[parent_pattern], data_node
        ):
            return False
    return True


def has_isomorphism(graph: Graph, pattern: Pattern, index=None) -> bool:
    """Existence check (first embedding only)."""
    return next(find_isomorphisms(graph, pattern, limit=1, index=index), None) is not None


def count_isomorphisms(
    graph: Graph, pattern: Pattern, limit: int | None = None, index=None
) -> int:
    """Number of embeddings, optionally capped at ``limit``."""
    return sum(1 for _ in find_isomorphisms(graph, pattern, limit=limit, index=index))
