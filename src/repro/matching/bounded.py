"""Bounded simulation — the paper's core matching semantics (cubic time).

Given pattern ``Q`` whose edges carry length bounds and data graph ``G``,
``M(Q,G)`` is the maximum relation such that every match satisfies its
pattern node's search condition and, for every pattern edge ``(u,u')`` with
bound ``b``, reaches some match of ``u'`` by a nonempty path of length <= b
(``b = None`` is the paper's ``*``: plain reachability).

The matcher materializes, per pattern edge ``e`` and candidate ``v``, the
*bounded successor set* ``S[e][v] = {v': dist}`` of child-candidates within
the bound (one truncated BFS per candidate per pattern-edge source), plus a
reverse index ``R`` and live counters ``cnt[e][v] = |S[e][v] ∩ sim(child)|``.
Removals then cascade in worklist fashion exactly as in the quadratic
simulation algorithm.  This is the cubic algorithm of Fan et al. (PVLDB
2010); keeping ``S``/``R``/``cnt`` around pays off twice:

* the result graph's weighted edges are precisely the surviving ``S``
  entries between matches, and
* the incremental module (SIGMOD 2011) maintains the same state under edge
  updates instead of recomputing it.

``S`` is indexed by *candidates*, not current matches, so membership changes
never invalidate it — only graph distance changes do.
"""

from __future__ import annotations

from collections import deque
from dataclasses import replace
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro.errors import EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.graph.distance import bounded_descendants, frozen_reach_levels
from repro.graph.frozen import FrozenGraph
from repro.matching.base import MatchRelation, MatchResult, Stopwatch
from repro.matching.simulation import simulation_candidates
from repro.pattern.pattern import Bound, Pattern

PatternEdge = tuple[str, str]

#: At this BFS depth (or ``*``), per-source balls overlap so much that the
#: bitset-parallel traversal (all sources advance together, each node's
#: visitor set packed into one big int) wins; below it, per-source level
#: BFS over the frozen adjacency sets is cheaper than paying big-int ops.
FROZEN_BULK_DEPTH = 5

#: Sources per bitset traversal.  Bounds transient memory (one n-slot list
#: of masks of this many bits) and keeps big-int ops cache-friendly.
FROZEN_CHUNK_BITS = 4096

#: Arrivals the bitset kernel accumulates before charging its guard.
#: Bounds budget overshoot (one hub level can carry millions of arrivals)
#: while keeping the charge/should_stop round trip off the per-node path.
_GUARD_CHARGE_BATCH = 1024

#: byte value -> indices of its set bits; decodes visitor masks without
#: allocating big ints per extracted bit.
_BYTE_BITS = tuple(
    tuple(i for i in range(8) if (byte >> i) & 1) for byte in range(256)
)


def frozen_successor_rows(
    frozen: FrozenGraph,
    out_edges_by_node: Mapping[str, Sequence[tuple[str, Bound]]],
    candidate_ids: Mapping[str, frozenset[int]],
    sources_by_node: Mapping[str, Sequence[int]] | None = None,
    oracle=None,
    kernel_log: dict[PatternEdge, Any] | None = None,
    guard=None,
) -> dict[PatternEdge, dict[int, dict[int, int]]]:
    """Bounded successor rows for every source candidate, int-indexed.

    For each pattern node ``u`` with out-edges and each source id ``v``
    (``sources_by_node[u]`` when given — the sharded evaluator's pivots —
    else every candidate of ``u``), computes per out-edge ``(u, u')`` the
    row ``{w: dist}`` of ``u'``-candidates within the edge bound.  This is
    exactly what :meth:`BoundedState._build_successor_sets` materializes,
    with three kernel strategies instead of one truncated BFS per candidate,
    routed per pattern edge by the planner's cost model
    (:func:`repro.engine.planner.route_edge`):

    * **oracle-pairwise** — with a
      :class:`~repro.graph.oracle.DistanceOracle` (or shipped
      :class:`~repro.graph.oracle.OracleSlice`) covering the bound and
      selective candidate sets, rows come from candidate x candidate label
      merges: no ball is ever materialised;
    * **shallow bounds** — per-source level BFS over the snapshot's
      adjacency sets; candidate filtering is one C-speed intersection per
      level per edge instead of a per-reached-node interpreted check;
    * **deep or ``*`` bounds** — one *bitset-parallel* traversal per chunk
      of sources: each frontier node carries the set of sources that just
      reached it, packed into a big int, so overlapping balls are walked
      once instead of once per source.  Entries are decoded per level from
      the first-arrival masks of surviving child candidates.

    All strategies produce identical rows (the seeded differential suite
    asserts it); the split is purely a cost model.  ``kernel_log``, when
    given, receives the chosen :class:`~repro.engine.planner.EdgeRoute`
    per pattern edge — this is what ``explain()`` and the matcher stats
    surface.

    ``guard`` (a :class:`~repro.engine.estimator.QueryGuard`) changes two
    things.  First, routing: each source group's analytic frontier is
    replaced by a *sampled* one (:func:`~repro.engine.estimator.
    sample_frontier`), and when a group's measured work overshoots its
    estimate by the budget's ``replan_factor`` the remaining groups'
    estimates are re-scaled by the observed ratio before they are routed —
    adaptive mid-query re-planning.  Second, enforcement: every kernel
    charges node arrivals as it works and stops admitting new work once
    the guard trips.  Rows already filled stay; rows not reached stay at
    their initialized empty dict.  Incomplete-but-honest rows are *sound*:
    the removal fixpoint over them yields a valid bounded simulation,
    hence a subset of the exact ``M(Q,G)``.
    """
    # Local import: the planner lives in the engine package, which imports
    # this module at load time — a module-level import would be circular.
    from repro.engine.planner import (
        KERNEL_BITSET,
        KERNEL_ORACLE,
        KERNEL_PER_SOURCE,
        enumeration_kernel,
        route_edge,
    )

    rows: dict[PatternEdge, dict[int, dict[int, int]]] = {}
    adjacency = frozen.successor_sets()
    num_nodes = len(adjacency)
    num_edges = frozen.num_edges
    # A shipped OracleSlice carries the parent's routing verbatim (its
    # ``edges`` set); a full oracle exposes measured label statistics and
    # lets the cost model decide here.
    forced_edges = getattr(oracle, "edges", None)
    oracle_profile = (
        oracle.profile()
        if oracle is not None and forced_edges is None
        else None
    )
    # Guarded evaluation routes from *sampled* frontier estimates and
    # re-scales the remaining estimates (``correction``) whenever a group's
    # measured work overshoots its estimate by the budget's replan factor.
    correction = 1.0
    replan_factor = (
        guard.budget.replan_factor if guard is not None else None
    )
    for source_pattern, out_edges in out_edges_by_node.items():
        out_edges = list(out_edges)
        if not out_edges:
            continue
        if sources_by_node is not None:
            sources = list(sources_by_node.get(source_pattern, ()))
        else:
            sources = sorted(candidate_ids[source_pattern])
        sampled = None
        ball_edges_estimate = None
        if guard is not None and sources:
            from repro.engine.estimator import sample_frontier

            sampled = sample_frontier(
                adjacency,
                sources,
                BoundedState._bfs_depth(bound for _, bound in out_edges),
            )
            ball_edges_estimate = max(1.0, sampled.ball_edges * correction)
        oracle_edges = []
        enum_edges = []
        routes = {}
        for edge_target, bound in out_edges:
            edge = (source_pattern, edge_target)
            rows[edge] = {source: {} for source in sources}
            children = candidate_ids[edge_target]
            route = route_edge(
                edge,
                bound,
                len(sources),
                len(children),
                num_nodes,
                num_edges,
                oracle_profile if oracle is not None and oracle.covers(bound) else None,
                bulk_depth=FROZEN_BULK_DEPTH,
                ball_edges_estimate=ball_edges_estimate,
            )
            if forced_edges is not None and edge in forced_edges:
                route = replace(route, kernel=KERNEL_ORACLE)
            routes[edge] = route
            item = (edge, bound, children)
            if route.kernel == KERNEL_ORACLE:
                oracle_edges.append(item)
            else:
                enum_edges.append(item)
        if sources and (guard is None or not guard.should_stop()):
            visits_before = guard.visits if guard is not None else 0
            if oracle_edges:
                oracle.fill_rows(sources, oracle_edges, rows, adjacency)
                if guard is not None:
                    guard.charge(sum(
                        len(row)
                        for edge, _bound, _children in oracle_edges
                        for row in rows[edge].values()
                    ))
            if enum_edges and (guard is None or not guard.should_stop()):
                depth = BoundedState._bfs_depth(bound for _, bound, _ in enum_edges)
                kernel = enumeration_kernel(depth, len(sources), FROZEN_BULK_DEPTH)
                if kernel == KERNEL_PER_SOURCE:
                    _per_source_rows(
                        adjacency, sources, depth, enum_edges, rows, guard=guard
                    )
                else:
                    _bitset_rows(
                        adjacency, sources, depth, enum_edges, rows, guard=guard
                    )
            if guard is not None and sampled is not None and replan_factor:
                measured = guard.visits - visits_before
                estimated = max(1.0, len(sources) * sampled.frontier * correction)
                if measured > replan_factor * estimated:
                    correction *= measured / estimated
                    guard.replans += 1
                # Enumeration edges of one source node share a traversal,
                # so the group decision overrides the per-edge estimate in
                # the log (same rows either way; the log must tell the
                # truth about what ran).
                for edge, _bound, _children in enum_edges:
                    route = routes[edge]
                    if route.kernel != kernel:
                        routes[edge] = replace(route, kernel=kernel)
        if kernel_log is not None:
            kernel_log.update(routes)
    return rows


def _per_source_rows(adjacency, sources, depth, edge_data, rows, guard=None) -> None:
    """One level BFS per source; per-level set intersections filter rows.

    With a ``guard``, each source's ball is charged (sum of its level
    sizes) and row construction stops before the next source once the
    guard trips — completed rows are exact, unstarted rows stay empty.
    """
    for source in sources:
        if guard is not None and guard.should_stop():
            break
        levels = frozen_reach_levels(adjacency, source, depth)
        if guard is not None:
            guard.charge(sum(len(level) for level in levels))
        for edge, bound, child_candidates in edge_data:
            entries = rows[edge][source]
            for dist, level in enumerate(levels[:bound], start=1):
                for reached in level & child_candidates:
                    entries[reached] = dist


def _bitset_rows(adjacency, sources, depth, edge_data, rows, guard=None) -> None:
    """Bitset-parallel traversal: all sources of one chunk advance together.

    ``frontier[node]`` is a big-int mask of the chunk sources that first
    reached ``node`` at the current distance; propagation ORs masks along
    edges (C-speed regardless of how many sources share the step), and a
    per-node ``reach`` mask keeps arrivals first-only.  Survivor masks are
    decoded bytewise via the :data:`_BYTE_BITS` table.

    With a ``guard``, arrivals (popcounts of the first-arrival masks) are
    charged in :data:`_GUARD_CHARGE_BATCH` batches *during* the frontier
    rebuild, and the rebuild stops as soon as the guard trips — one hub
    level can carry millions of arrivals, far past any sane budget, so
    charging per level would gut the guarantee.  Entries emitted from the
    truncated frontier are all true, so the partial rows stay sound.
    """
    num_nodes = len(adjacency)
    byte_bits = _BYTE_BITS
    for chunk_start in range(0, len(sources), FROZEN_CHUNK_BITS):
        if guard is not None and guard.should_stop():
            break
        chunk = sources[chunk_start : chunk_start + FROZEN_CHUNK_BITS]
        mask_bytes = (len(chunk) + 7) // 8
        reach = [0] * num_nodes
        frontier: dict[int, int] = {}
        for bit, source in enumerate(chunk):
            frontier[source] = frontier.get(source, 0) | (1 << bit)
        dist = 0
        while frontier and (depth is None or dist < depth):
            if guard is not None and guard.should_stop():
                break
            dist += 1
            grown: dict[int, int] = {}
            get = grown.get
            for node, mask in frontier.items():
                for target in adjacency[node]:
                    seen = get(target)
                    grown[target] = mask if seen is None else seen | mask
            frontier = {}
            pending = 0
            for node, mask in grown.items():
                seen = reach[node]
                arrived = mask & ~seen if seen else mask
                if arrived:
                    reach[node] = seen | arrived
                    frontier[node] = arrived
                    if guard is not None:
                        pending += arrived.bit_count()
                        if pending >= _GUARD_CHARGE_BATCH:
                            guard.charge(pending)
                            pending = 0
                            if guard.should_stop():
                                break
            if guard is not None and pending:
                guard.charge(pending)
            for edge, bound, child_candidates in edge_data:
                if bound is not None and dist > bound:
                    continue
                edge_rows = rows[edge]
                for reached in child_candidates.intersection(frontier):
                    mask_view = frontier[reached].to_bytes(mask_bytes, "little")
                    for byte_index, byte in enumerate(mask_view):
                        if byte:
                            base = byte_index * 8
                            for offset in byte_bits[byte]:
                                edge_rows[chunk[base + offset]][reached] = dist



class BoundedState:
    """Complete refinement state for one (graph, pattern) evaluation.

    Public attributes (the incremental module manipulates them directly):

    ``cand``  pattern node -> predicate-satisfying data nodes (set)
    ``sim``   pattern node -> current surviving matches (set, the fixpoint)
    ``S``     pattern edge -> source candidate -> {target candidate: dist}
    ``R``     pattern edge -> target candidate -> set of source candidates
    ``cnt``   pattern edge -> source candidate -> |S ∩ sim(target)|
    """

    __slots__ = (
        "graph", "pattern", "cand", "sim", "S", "R", "cnt", "_in_edges",
        "_reach_index", "kernels",
    )

    def __init__(
        self,
        graph: Graph,
        pattern: Pattern,
        reach_index=None,
        index=None,
        candidates: dict[str, set[NodeId]] | None = None,
        frozen: FrozenGraph | None = None,
        oracle=None,
        guard=None,
    ) -> None:
        pattern.validate()
        if frozen is not None and not frozen.matches(graph):
            raise EvaluationError(
                f"stale frozen snapshot: {frozen!r} does not match "
                f"graph version {graph.version}"
            )
        if oracle is not None:
            if frozen is None:
                raise EvaluationError(
                    "a distance oracle requires a frozen snapshot (its labels "
                    "are int-indexed against the snapshot's dense ids)"
                )
            if not oracle.compatible_with(frozen):
                raise EvaluationError(
                    f"stale distance oracle: {oracle!r} does not match {frozen!r}"
                )
        self._reach_index = reach_index
        if candidates is None:
            candidates = simulation_candidates(graph, pattern, index=index)
        self._init_containers(graph, pattern, candidates)
        # The snapshot only accelerates construction; it is deliberately
        # *not* stored on the state, because incremental maintenance
        # mutates the graph afterwards and must fall back to live reads.
        self._build_successor_sets(frozen=frozen, oracle=oracle, guard=guard)
        self._initial_refinement()

    def _init_containers(
        self, graph: Graph, pattern: Pattern, candidates: dict[str, set[NodeId]]
    ) -> None:
        """Shared state setup for both constructors (candidates are copied:
        the state owns and mutates its sets)."""
        self.graph = graph
        self.pattern = pattern
        # Per-pattern-edge EdgeRoute log of the frozen kernels (empty for
        # the dict-graph and merged-row construction paths).
        self.kernels: dict[PatternEdge, Any] = {}
        self.cand = {u: set(vs) for u, vs in candidates.items()}
        self.sim: dict[str, set[NodeId]] = {u: set(vs) for u, vs in self.cand.items()}
        self.S: dict[PatternEdge, dict[NodeId, dict[NodeId, int]]] = {}
        self.R: dict[PatternEdge, dict[NodeId, set[NodeId]]] = {}
        self.cnt: dict[PatternEdge, dict[NodeId, int]] = {}
        self._in_edges: dict[str, list[PatternEdge]] = {u: [] for u in pattern.nodes()}
        for source, target, _bound in pattern.edges():
            edge = (source, target)
            self._in_edges[target].append(edge)
            self.S[edge] = {}
            self.R[edge] = {}
            self.cnt[edge] = {}

    @classmethod
    def from_successor_rows(
        cls,
        graph: Graph,
        pattern: Pattern,
        candidates: dict[str, set[NodeId]],
        rows: dict[PatternEdge, dict[NodeId, dict[NodeId, int]]],
        allow_missing: bool = False,
    ) -> "BoundedState":
        """Assemble a state from externally computed ``S`` rows.

        This is the merge step of parallel sharded evaluation
        (:mod:`repro.engine.parallel`): workers return, per pattern edge and
        owned source candidate, the bounded successor entries their ball
        subgraph yields (identical to the full-graph entries because ball
        covers are sound), and this constructor rebuilds ``R``/``cnt`` and
        runs the very same initial removal fixpoint the sequential
        constructor runs — the boundary refinement that makes cross-shard
        refutations cascade.  Every candidate of every pattern edge's source
        must have a row (possibly empty); a missing row means the shard
        decomposition lost a pivot and raises instead of silently producing
        a wrong (too large) relation.

        ``allow_missing=True`` relaxes that check for *guarded* partial
        evaluation: shards aborted by a tripped budget never report their
        rows, so missing candidates get an empty row (cnt 0) and the
        fixpoint prunes them — an under-approximation, which is exactly
        the sound direction for a partial result.
        """
        pattern.validate()
        state = cls.__new__(cls)
        state._reach_index = None
        state._init_containers(graph, pattern, candidates)
        unknown = [edge for edge in rows if edge not in state.S]
        if unknown:
            raise EvaluationError(f"rows for unknown pattern edges: {unknown}")
        for edge, row in rows.items():
            child_sim = state.sim[edge[1]]
            for data_node, entries in row.items():
                if data_node not in state.cand[edge[0]]:
                    raise EvaluationError(
                        f"row for non-candidate {data_node!r} of {edge[0]!r}"
                    )
                state.S[edge][data_node] = dict(entries)
                for reached in entries:
                    state.R[edge].setdefault(reached, set()).add(data_node)
                state.cnt[edge][data_node] = sum(
                    1 for reached in entries if reached in child_sim
                )
        for (source, target), edge_rows in state.S.items():
            if set(edge_rows) != state.cand[source]:
                lost = state.cand[source] - set(edge_rows)
                if not allow_missing:
                    raise EvaluationError(
                        f"merged S rows incomplete for source {source!r}: "
                        f"{len(lost)} candidate(s) have no row"
                    )
                for data_node in lost:
                    state.S[(source, target)][data_node] = {}
                    state.cnt[(source, target)][data_node] = 0
        state._initial_refinement()
        return state

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_successor_sets(
        self, frozen: FrozenGraph | None = None, oracle=None, guard=None
    ) -> None:
        if frozen is not None and self._reach_index is None:
            # A reach index outranks the snapshot: its reaches are already
            # materialized dicts, so the frozen kernels have nothing to add.
            self._build_successor_sets_frozen(frozen, oracle=oracle, guard=guard)
            return
        for source_pattern in self.pattern.nodes():
            out_edges = list(self.pattern.out_edges(source_pattern))
            if not out_edges:
                continue
            depth = self._bfs_depth(bound for _, bound in out_edges)
            for data_node in self.cand[source_pattern]:
                if guard is not None and guard.should_stop():
                    # Sound early stop: unvisited candidates get empty rows
                    # (cnt 0), so the removal fixpoint prunes them — the
                    # surviving relation shrinks, never grows.
                    self._fill_entries(source_pattern, data_node, {})
                    continue
                reach = self._reach(data_node, depth)
                if guard is not None:
                    guard.charge(len(reach))
                self._fill_entries(source_pattern, data_node, reach)

    def _build_successor_sets_frozen(
        self, frozen: FrozenGraph, oracle=None, guard=None
    ) -> None:
        """S/R/cnt from the int-indexed kernels, converted back to labels."""
        ids = frozen.ids()
        labels = frozen.labels
        candidate_ids = {
            u: frozenset(ids[v] for v in vs) for u, vs in self.cand.items()
        }
        out_edges_by_node = {
            u: tuple(self.pattern.out_edges(u)) for u in self.pattern.nodes()
        }
        rows = frozen_successor_rows(
            frozen,
            out_edges_by_node,
            candidate_ids,
            oracle=oracle,
            kernel_log=self.kernels,
            guard=guard,
        )
        for edge, edge_rows in rows.items():
            entries_of = self.S[edge]
            reverse = self.R[edge]
            counts = self.cnt[edge]
            child_sim = self.sim[edge[1]]
            for source_id, row in edge_rows.items():
                source_label = labels[source_id]
                entries: dict[NodeId, int] = {}
                live = 0
                for reached_id, dist in row.items():
                    reached = labels[reached_id]
                    entries[reached] = dist
                    reverse.setdefault(reached, set()).add(source_label)
                    if reached in child_sim:
                        live += 1
                entries_of[source_label] = entries
                counts[source_label] = live

    def _reach(self, data_node: NodeId, depth: Bound) -> dict[NodeId, int]:
        if self._reach_index is not None and self._reach_index.covers(depth):
            # read-only consumption: skip the defensive copy
            return self._reach_index.reach(data_node, depth, copy=False)
        return bounded_descendants(self.graph, data_node, depth)

    def _fill_entries(
        self, source_pattern: str, data_node: NodeId, reach: dict[NodeId, int]
    ) -> None:
        """(Re)compute S/R/cnt rows of ``data_node`` from a BFS result."""
        for edge_target, bound in self.pattern.out_edges(source_pattern):
            edge = (source_pattern, edge_target)
            child_cand = self.cand[edge_target]
            child_sim = self.sim[edge_target]
            entries: dict[NodeId, int] = {}
            live = 0
            for reached, dist in reach.items():
                if reached in child_cand and (bound is None or dist <= bound):
                    entries[reached] = dist
                    if reached in child_sim:
                        live += 1
            self.S[edge][data_node] = entries
            for reached in entries:
                self.R[edge].setdefault(reached, set()).add(data_node)
            self.cnt[edge][data_node] = live

    @staticmethod
    def _bfs_depth(bounds: Iterable[Bound]) -> Bound:
        depth: Bound = 1
        for bound in bounds:
            if bound is None:
                return None
            depth = max(depth, bound)  # type: ignore[type-var]
        return depth

    def _initial_refinement(self) -> None:
        seeds: list[tuple[str, NodeId]] = []
        for (source_pattern, _), counts in self.cnt.items():
            for data_node, live in counts.items():
                if live == 0:
                    seeds.append((source_pattern, data_node))
        self.removal_fixpoint(seeds)

    # ------------------------------------------------------------------
    # membership maintenance
    # ------------------------------------------------------------------
    def removal_fixpoint(self, seeds: Iterable[tuple[str, NodeId]]) -> set[tuple[str, NodeId]]:
        """Cascade removals starting from ``seeds``; returns removed pairs.

        A seed is only removed if it currently fails some out-edge counter
        (callers may pass optimistic seeds).
        """
        queue: deque[tuple[str, NodeId]] = deque(seeds)
        removed: set[tuple[str, NodeId]] = set()
        while queue:
            pattern_node, data_node = queue.popleft()
            if data_node not in self.sim[pattern_node]:
                continue
            if not self._fails_some_edge(pattern_node, data_node):
                continue
            self.sim[pattern_node].remove(data_node)
            removed.add((pattern_node, data_node))
            for edge in self._in_edges[pattern_node]:
                counts = self.cnt[edge]
                for upstream in self.R[edge].get(data_node, ()):
                    counts[upstream] -= 1
                    if counts[upstream] == 0 and upstream in self.sim[edge[0]]:
                        queue.append((edge[0], upstream))
        return removed

    def _fails_some_edge(self, pattern_node: str, data_node: NodeId) -> bool:
        for edge_target, _bound in self.pattern.out_edges(pattern_node):
            if self.cnt[(pattern_node, edge_target)].get(data_node, 0) == 0:
                return True
        return False

    def satisfies_all_edges(self, pattern_node: str, data_node: NodeId) -> bool:
        """True iff every out-edge counter of the pair is positive."""
        for edge_target, _bound in self.pattern.out_edges(pattern_node):
            if self.cnt[(pattern_node, edge_target)].get(data_node, 0) == 0:
                return False
        return True

    def force_remove(self, pattern_node: str, data_node: NodeId) -> None:
        """Unconditional membership removal (e.g. the node's attributes no
        longer satisfy the search condition), cascading as usual."""
        if data_node not in self.sim[pattern_node]:
            return
        self.sim[pattern_node].remove(data_node)
        seeds: list[tuple[str, NodeId]] = []
        for edge in self._in_edges[pattern_node]:
            counts = self.cnt[edge]
            for upstream in self.R[edge].get(data_node, ()):
                counts[upstream] -= 1
                if counts[upstream] == 0 and upstream in self.sim[edge[0]]:
                    seeds.append((edge[0], upstream))
        self.removal_fixpoint(seeds)

    def add_member(self, pattern_node: str, data_node: NodeId) -> None:
        """Insert a pair into ``sim`` and bump upstream counters.

        The caller is responsible for having verified
        :meth:`satisfies_all_edges`; this only maintains invariants.
        """
        if data_node in self.sim[pattern_node]:
            raise EvaluationError(f"already a member: ({pattern_node!r}, {data_node!r})")
        self.sim[pattern_node].add(data_node)
        for edge in self._in_edges[pattern_node]:
            counts = self.cnt[edge]
            for upstream in self.R[edge].get(data_node, ()):
                counts[upstream] += 1

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def relation(self) -> MatchRelation:
        """The paper-semantics ``M(Q,G)`` for the current state."""
        return MatchRelation.from_sets(self.pattern, self.sim)

    def match_edges(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        """Surviving weighted pairs: the result graph's edge set.

        Yields ``(v, v', dist)`` for every pattern edge and every pair of
        current matches within the bound.  Pairs may repeat when several
        pattern edges induce them; consumers keep the minimum (identical)
        distance.
        """
        for (source_pattern, target_pattern), rows in self.S.items():
            source_sim = self.sim[source_pattern]
            target_sim = self.sim[target_pattern]
            for data_node, entries in rows.items():
                if data_node not in source_sim:
                    continue
                for reached, dist in entries.items():
                    if reached in target_sim:
                        yield (data_node, reached, dist)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify S/R/cnt/sim consistency; raises EvaluationError on breakage.

        O(|state|); used by tests (especially property-based incremental
        tests) to catch maintenance bugs at their source.
        """
        for source_pattern, target_pattern, bound in self.pattern.edges():
            edge = (source_pattern, target_pattern)
            rows = self.S[edge]
            if set(rows) != self.cand[source_pattern]:
                raise EvaluationError(f"S rows out of sync for {edge}")
            for data_node, entries in rows.items():
                expected = bounded_descendants(
                    self.graph, data_node, bound
                )
                expected = {
                    n: d for n, d in expected.items() if n in self.cand[target_pattern]
                }
                if entries != expected:
                    raise EvaluationError(
                        f"S[{edge}][{data_node!r}] = {entries} != {expected}"
                    )
                live = sum(1 for n in entries if n in self.sim[target_pattern])
                if self.cnt[edge][data_node] != live:
                    raise EvaluationError(
                        f"cnt[{edge}][{data_node!r}] = "
                        f"{self.cnt[edge][data_node]} != {live}"
                    )
                for reached in entries:
                    if data_node not in self.R[edge].get(reached, set()):
                        raise EvaluationError(f"R missing {edge} {reached!r}")
        for edge, reverse in self.R.items():
            for reached, sources in reverse.items():
                for data_node in sources:
                    if reached not in self.S[edge].get(data_node, {}):
                        raise EvaluationError(f"R stale entry {edge} {reached!r}")
        for pattern_node, members in self.sim.items():
            if not members <= self.cand[pattern_node]:
                raise EvaluationError(f"sim ⊄ cand for {pattern_node!r}")
            for data_node in members:
                if not self.satisfies_all_edges(pattern_node, data_node):
                    raise EvaluationError(
                        f"member fails an edge: ({pattern_node!r}, {data_node!r})"
                    )


def match_bounded(
    graph: Graph,
    pattern: Pattern,
    reach_index=None,
    index=None,
    candidates: dict[str, set[NodeId]] | None = None,
    frozen: FrozenGraph | None = None,
    oracle=None,
    budget=None,
    guard=None,
) -> MatchResult:
    """Compute ``M(Q,G)`` under bounded simulation.

    The returned :class:`MatchResult` carries the refinement state, so
    deriving the result graph or feeding the incremental module costs no
    recomputation.  An optional
    :class:`~repro.graph.reach_index.BoundedReachIndex` (kept consistent by
    its owner) serves the truncated BFS runs from cache; an optional
    :class:`~repro.graph.index.AttributeIndex` (``index``) serves candidate
    generation, and ``candidates`` supplies precomputed candidate sets
    outright (the batch evaluator's shared-work path).  A ``frozen``
    snapshot of ``graph`` (usually the engine's cached one; it must match
    the graph's current ``version``) routes successor-set construction
    through the int-indexed CSR kernels — same relation, same state, less
    time.  An ``oracle`` (:class:`~repro.graph.oracle.DistanceOracle`
    built from a compatible snapshot) additionally lets the planner route
    selective pattern edges to pairwise label merges; the chosen kernel
    per edge lands in ``stats["kernels"]``.

    A ``budget`` (:class:`~repro.engine.estimator.QueryBudget`) guards the
    evaluation: kernels charge node visits against it, a blown limit
    either raises :class:`~repro.errors.BudgetExceededError` or — with
    ``allow_partial=True`` — degrades to a *sound subset* of the exact
    relation flagged ``stats["partial"] = True`` with the tripped guard in
    ``stats["guard"]``.  Callers that already own a
    :class:`~repro.engine.estimator.QueryGuard` (the parallel executor's
    shard workers share one counter) pass ``guard`` instead.

    >>> from repro.graph.digraph import Graph
    >>> from repro.pattern.pattern import Pattern
    >>> g = Graph.from_edges(
    ...     [("a", "m"), ("m", "b")],
    ...     nodes={"a": {"l": "X"}, "m": {"l": "?"}, "b": {"l": "Y"}},
    ... )
    >>> q = Pattern(); q.add_node("X", 'l == "X"'); q.add_node("Y", 'l == "Y"')
    >>> q.add_edge("X", "Y", 2)   # within two hops
    >>> sorted(match_bounded(g, q).relation.pairs())
    [('X', 'a'), ('Y', 'b')]
    """
    watch = Stopwatch()
    if guard is None and budget is not None and budget.is_limited:
        from repro.engine.estimator import QueryGuard

        guard = QueryGuard(budget)
    state = BoundedState(
        graph,
        pattern,
        reach_index=reach_index,
        index=index,
        candidates=candidates,
        frozen=frozen,
        oracle=oracle,
        guard=guard,
    )
    relation = state.relation()
    if candidates is not None:
        candidate_source = "precomputed"
    else:
        candidate_source = "scan" if index is None else "index"
    stats = {
        "algorithm": "bounded-simulation",
        "seconds": watch.seconds(),
        "candidate_source": candidate_source,
    }
    if state.kernels:
        stats["kernels"] = {
            f"{edge[0]}->{edge[1]}": route.kernel
            for edge, route in state.kernels.items()
        }
    if guard is not None:
        stats.update(guard.stats())
    return MatchResult(graph, pattern, relation, stats=stats, state=state)
