"""Bounded simulation — the paper's core matching semantics (cubic time).

Given pattern ``Q`` whose edges carry length bounds and data graph ``G``,
``M(Q,G)`` is the maximum relation such that every match satisfies its
pattern node's search condition and, for every pattern edge ``(u,u')`` with
bound ``b``, reaches some match of ``u'`` by a nonempty path of length <= b
(``b = None`` is the paper's ``*``: plain reachability).

The matcher materializes, per pattern edge ``e`` and candidate ``v``, the
*bounded successor set* ``S[e][v] = {v': dist}`` of child-candidates within
the bound (one truncated BFS per candidate per pattern-edge source), plus a
reverse index ``R`` and live counters ``cnt[e][v] = |S[e][v] ∩ sim(child)|``.
Removals then cascade in worklist fashion exactly as in the quadratic
simulation algorithm.  This is the cubic algorithm of Fan et al. (PVLDB
2010); keeping ``S``/``R``/``cnt`` around pays off twice:

* the result graph's weighted edges are precisely the surviving ``S``
  entries between matches, and
* the incremental module (SIGMOD 2011) maintains the same state under edge
  updates instead of recomputing it.

``S`` is indexed by *candidates*, not current matches, so membership changes
never invalidate it — only graph distance changes do.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator

from repro.errors import EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.graph.distance import bounded_descendants
from repro.matching.base import MatchRelation, MatchResult, Stopwatch
from repro.matching.simulation import simulation_candidates
from repro.pattern.pattern import Bound, Pattern

PatternEdge = tuple[str, str]


class BoundedState:
    """Complete refinement state for one (graph, pattern) evaluation.

    Public attributes (the incremental module manipulates them directly):

    ``cand``  pattern node -> predicate-satisfying data nodes (set)
    ``sim``   pattern node -> current surviving matches (set, the fixpoint)
    ``S``     pattern edge -> source candidate -> {target candidate: dist}
    ``R``     pattern edge -> target candidate -> set of source candidates
    ``cnt``   pattern edge -> source candidate -> |S ∩ sim(target)|
    """

    __slots__ = (
        "graph", "pattern", "cand", "sim", "S", "R", "cnt", "_in_edges",
        "_reach_index",
    )

    def __init__(
        self,
        graph: Graph,
        pattern: Pattern,
        reach_index=None,
        index=None,
        candidates: dict[str, set[NodeId]] | None = None,
    ) -> None:
        pattern.validate()
        self._reach_index = reach_index
        if candidates is None:
            candidates = simulation_candidates(graph, pattern, index=index)
        self._init_containers(graph, pattern, candidates)
        self._build_successor_sets()
        self._initial_refinement()

    def _init_containers(
        self, graph: Graph, pattern: Pattern, candidates: dict[str, set[NodeId]]
    ) -> None:
        """Shared state setup for both constructors (candidates are copied:
        the state owns and mutates its sets)."""
        self.graph = graph
        self.pattern = pattern
        self.cand = {u: set(vs) for u, vs in candidates.items()}
        self.sim: dict[str, set[NodeId]] = {u: set(vs) for u, vs in self.cand.items()}
        self.S: dict[PatternEdge, dict[NodeId, dict[NodeId, int]]] = {}
        self.R: dict[PatternEdge, dict[NodeId, set[NodeId]]] = {}
        self.cnt: dict[PatternEdge, dict[NodeId, int]] = {}
        self._in_edges: dict[str, list[PatternEdge]] = {u: [] for u in pattern.nodes()}
        for source, target, _bound in pattern.edges():
            edge = (source, target)
            self._in_edges[target].append(edge)
            self.S[edge] = {}
            self.R[edge] = {}
            self.cnt[edge] = {}

    @classmethod
    def from_successor_rows(
        cls,
        graph: Graph,
        pattern: Pattern,
        candidates: dict[str, set[NodeId]],
        rows: dict[PatternEdge, dict[NodeId, dict[NodeId, int]]],
    ) -> "BoundedState":
        """Assemble a state from externally computed ``S`` rows.

        This is the merge step of parallel sharded evaluation
        (:mod:`repro.engine.parallel`): workers return, per pattern edge and
        owned source candidate, the bounded successor entries their ball
        subgraph yields (identical to the full-graph entries because ball
        covers are sound), and this constructor rebuilds ``R``/``cnt`` and
        runs the very same initial removal fixpoint the sequential
        constructor runs — the boundary refinement that makes cross-shard
        refutations cascade.  Every candidate of every pattern edge's source
        must have a row (possibly empty); a missing row means the shard
        decomposition lost a pivot and raises instead of silently producing
        a wrong (too large) relation.
        """
        pattern.validate()
        state = cls.__new__(cls)
        state._reach_index = None
        state._init_containers(graph, pattern, candidates)
        unknown = [edge for edge in rows if edge not in state.S]
        if unknown:
            raise EvaluationError(f"rows for unknown pattern edges: {unknown}")
        for edge, row in rows.items():
            child_sim = state.sim[edge[1]]
            for data_node, entries in row.items():
                if data_node not in state.cand[edge[0]]:
                    raise EvaluationError(
                        f"row for non-candidate {data_node!r} of {edge[0]!r}"
                    )
                state.S[edge][data_node] = dict(entries)
                for reached in entries:
                    state.R[edge].setdefault(reached, set()).add(data_node)
                state.cnt[edge][data_node] = sum(
                    1 for reached in entries if reached in child_sim
                )
        for (source, _target), edge_rows in state.S.items():
            if set(edge_rows) != state.cand[source]:
                lost = state.cand[source] - set(edge_rows)
                raise EvaluationError(
                    f"merged S rows incomplete for source {source!r}: "
                    f"{len(lost)} candidate(s) have no row"
                )
        state._initial_refinement()
        return state

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_successor_sets(self) -> None:
        for source_pattern in self.pattern.nodes():
            out_edges = list(self.pattern.out_edges(source_pattern))
            if not out_edges:
                continue
            depth = self._bfs_depth(bound for _, bound in out_edges)
            for data_node in self.cand[source_pattern]:
                reach = self._reach(data_node, depth)
                self._fill_entries(source_pattern, data_node, reach)

    def _reach(self, data_node: NodeId, depth: Bound) -> dict[NodeId, int]:
        if self._reach_index is not None and self._reach_index.covers(depth):
            # read-only consumption: skip the defensive copy
            return self._reach_index.reach(data_node, depth, copy=False)
        return bounded_descendants(self.graph, data_node, depth)

    def _fill_entries(
        self, source_pattern: str, data_node: NodeId, reach: dict[NodeId, int]
    ) -> None:
        """(Re)compute S/R/cnt rows of ``data_node`` from a BFS result."""
        for edge_target, bound in self.pattern.out_edges(source_pattern):
            edge = (source_pattern, edge_target)
            child_cand = self.cand[edge_target]
            child_sim = self.sim[edge_target]
            entries: dict[NodeId, int] = {}
            live = 0
            for reached, dist in reach.items():
                if reached in child_cand and (bound is None or dist <= bound):
                    entries[reached] = dist
                    if reached in child_sim:
                        live += 1
            self.S[edge][data_node] = entries
            for reached in entries:
                self.R[edge].setdefault(reached, set()).add(data_node)
            self.cnt[edge][data_node] = live

    @staticmethod
    def _bfs_depth(bounds: Iterable[Bound]) -> Bound:
        depth: Bound = 1
        for bound in bounds:
            if bound is None:
                return None
            depth = max(depth, bound)  # type: ignore[type-var]
        return depth

    def _initial_refinement(self) -> None:
        seeds: list[tuple[str, NodeId]] = []
        for (source_pattern, _), counts in self.cnt.items():
            for data_node, live in counts.items():
                if live == 0:
                    seeds.append((source_pattern, data_node))
        self.removal_fixpoint(seeds)

    # ------------------------------------------------------------------
    # membership maintenance
    # ------------------------------------------------------------------
    def removal_fixpoint(self, seeds: Iterable[tuple[str, NodeId]]) -> set[tuple[str, NodeId]]:
        """Cascade removals starting from ``seeds``; returns removed pairs.

        A seed is only removed if it currently fails some out-edge counter
        (callers may pass optimistic seeds).
        """
        queue: deque[tuple[str, NodeId]] = deque(seeds)
        removed: set[tuple[str, NodeId]] = set()
        while queue:
            pattern_node, data_node = queue.popleft()
            if data_node not in self.sim[pattern_node]:
                continue
            if not self._fails_some_edge(pattern_node, data_node):
                continue
            self.sim[pattern_node].remove(data_node)
            removed.add((pattern_node, data_node))
            for edge in self._in_edges[pattern_node]:
                counts = self.cnt[edge]
                for upstream in self.R[edge].get(data_node, ()):
                    counts[upstream] -= 1
                    if counts[upstream] == 0 and upstream in self.sim[edge[0]]:
                        queue.append((edge[0], upstream))
        return removed

    def _fails_some_edge(self, pattern_node: str, data_node: NodeId) -> bool:
        for edge_target, _bound in self.pattern.out_edges(pattern_node):
            if self.cnt[(pattern_node, edge_target)].get(data_node, 0) == 0:
                return True
        return False

    def satisfies_all_edges(self, pattern_node: str, data_node: NodeId) -> bool:
        """True iff every out-edge counter of the pair is positive."""
        for edge_target, _bound in self.pattern.out_edges(pattern_node):
            if self.cnt[(pattern_node, edge_target)].get(data_node, 0) == 0:
                return False
        return True

    def force_remove(self, pattern_node: str, data_node: NodeId) -> None:
        """Unconditional membership removal (e.g. the node's attributes no
        longer satisfy the search condition), cascading as usual."""
        if data_node not in self.sim[pattern_node]:
            return
        self.sim[pattern_node].remove(data_node)
        seeds: list[tuple[str, NodeId]] = []
        for edge in self._in_edges[pattern_node]:
            counts = self.cnt[edge]
            for upstream in self.R[edge].get(data_node, ()):
                counts[upstream] -= 1
                if counts[upstream] == 0 and upstream in self.sim[edge[0]]:
                    seeds.append((edge[0], upstream))
        self.removal_fixpoint(seeds)

    def add_member(self, pattern_node: str, data_node: NodeId) -> None:
        """Insert a pair into ``sim`` and bump upstream counters.

        The caller is responsible for having verified
        :meth:`satisfies_all_edges`; this only maintains invariants.
        """
        if data_node in self.sim[pattern_node]:
            raise EvaluationError(f"already a member: ({pattern_node!r}, {data_node!r})")
        self.sim[pattern_node].add(data_node)
        for edge in self._in_edges[pattern_node]:
            counts = self.cnt[edge]
            for upstream in self.R[edge].get(data_node, ()):
                counts[upstream] += 1

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def relation(self) -> MatchRelation:
        """The paper-semantics ``M(Q,G)`` for the current state."""
        return MatchRelation.from_sets(self.pattern, self.sim)

    def match_edges(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        """Surviving weighted pairs: the result graph's edge set.

        Yields ``(v, v', dist)`` for every pattern edge and every pair of
        current matches within the bound.  Pairs may repeat when several
        pattern edges induce them; consumers keep the minimum (identical)
        distance.
        """
        for (source_pattern, target_pattern), rows in self.S.items():
            source_sim = self.sim[source_pattern]
            target_sim = self.sim[target_pattern]
            for data_node, entries in rows.items():
                if data_node not in source_sim:
                    continue
                for reached, dist in entries.items():
                    if reached in target_sim:
                        yield (data_node, reached, dist)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify S/R/cnt/sim consistency; raises EvaluationError on breakage.

        O(|state|); used by tests (especially property-based incremental
        tests) to catch maintenance bugs at their source.
        """
        for source_pattern, target_pattern, bound in self.pattern.edges():
            edge = (source_pattern, target_pattern)
            rows = self.S[edge]
            if set(rows) != self.cand[source_pattern]:
                raise EvaluationError(f"S rows out of sync for {edge}")
            for data_node, entries in rows.items():
                expected = bounded_descendants(
                    self.graph, data_node, bound
                )
                expected = {
                    n: d for n, d in expected.items() if n in self.cand[target_pattern]
                }
                if entries != expected:
                    raise EvaluationError(
                        f"S[{edge}][{data_node!r}] = {entries} != {expected}"
                    )
                live = sum(1 for n in entries if n in self.sim[target_pattern])
                if self.cnt[edge][data_node] != live:
                    raise EvaluationError(
                        f"cnt[{edge}][{data_node!r}] = "
                        f"{self.cnt[edge][data_node]} != {live}"
                    )
                for reached in entries:
                    if data_node not in self.R[edge].get(reached, set()):
                        raise EvaluationError(f"R missing {edge} {reached!r}")
        for edge, reverse in self.R.items():
            for reached, sources in reverse.items():
                for data_node in sources:
                    if reached not in self.S[edge].get(data_node, {}):
                        raise EvaluationError(f"R stale entry {edge} {reached!r}")
        for pattern_node, members in self.sim.items():
            if not members <= self.cand[pattern_node]:
                raise EvaluationError(f"sim ⊄ cand for {pattern_node!r}")
            for data_node in members:
                if not self.satisfies_all_edges(pattern_node, data_node):
                    raise EvaluationError(
                        f"member fails an edge: ({pattern_node!r}, {data_node!r})"
                    )


def match_bounded(
    graph: Graph,
    pattern: Pattern,
    reach_index=None,
    index=None,
    candidates: dict[str, set[NodeId]] | None = None,
) -> MatchResult:
    """Compute ``M(Q,G)`` under bounded simulation.

    The returned :class:`MatchResult` carries the refinement state, so
    deriving the result graph or feeding the incremental module costs no
    recomputation.  An optional
    :class:`~repro.graph.reach_index.BoundedReachIndex` (kept consistent by
    its owner) serves the truncated BFS runs from cache; an optional
    :class:`~repro.graph.index.AttributeIndex` (``index``) serves candidate
    generation, and ``candidates`` supplies precomputed candidate sets
    outright (the batch evaluator's shared-work path).

    >>> from repro.graph.digraph import Graph
    >>> from repro.pattern.pattern import Pattern
    >>> g = Graph.from_edges(
    ...     [("a", "m"), ("m", "b")],
    ...     nodes={"a": {"l": "X"}, "m": {"l": "?"}, "b": {"l": "Y"}},
    ... )
    >>> q = Pattern(); q.add_node("X", 'l == "X"'); q.add_node("Y", 'l == "Y"')
    >>> q.add_edge("X", "Y", 2)   # within two hops
    >>> sorted(match_bounded(g, q).relation.pairs())
    [('X', 'a'), ('Y', 'b')]
    """
    watch = Stopwatch()
    state = BoundedState(
        graph, pattern, reach_index=reach_index, index=index, candidates=candidates
    )
    relation = state.relation()
    if candidates is not None:
        candidate_source = "precomputed"
    else:
        candidate_source = "scan" if index is None else "index"
    stats = {
        "algorithm": "bounded-simulation",
        "seconds": watch.seconds(),
        "candidate_source": candidate_source,
    }
    return MatchResult(graph, pattern, relation, stats=stats, state=state)
