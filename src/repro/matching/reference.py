"""Naive reference matchers — executable specifications.

These implementations transcribe the definitions from the paper as directly
as possible and make no attempt to be fast (they recompute BFS reachability
on every refinement round).  They exist as oracles: the property-based test
suite checks that the optimized matchers, the incremental maintainers and
the compressed-graph route all agree with these on randomly generated
inputs.  Keep them boring.
"""

from __future__ import annotations

from repro.graph.digraph import Graph, NodeId
from repro.graph.distance import bounded_descendants
from repro.matching.base import MatchRelation
from repro.matching.simulation import simulation_candidates
from repro.pattern.pattern import Pattern


def naive_simulation(graph: Graph, pattern: Pattern) -> MatchRelation:
    """Plain simulation by repeated full rescans until nothing changes."""
    pattern.validate()
    sim = simulation_candidates(graph, pattern)
    changed = True
    while changed:
        changed = False
        for pattern_node in pattern.nodes():
            for data_node in list(sim[pattern_node]):
                if not _sim_conditions_hold(graph, pattern, sim, pattern_node, data_node):
                    sim[pattern_node].remove(data_node)
                    changed = True
    return MatchRelation.from_sets(pattern, sim)


def _sim_conditions_hold(
    graph: Graph,
    pattern: Pattern,
    sim: dict[str, set[NodeId]],
    pattern_node: str,
    data_node: NodeId,
) -> bool:
    for child_pattern, _bound in pattern.out_edges(pattern_node):
        children = sim[child_pattern]
        if not any(succ in children for succ in graph.successors(data_node)):
            return False
    return True


def naive_bounded(graph: Graph, pattern: Pattern) -> MatchRelation:
    """Bounded simulation by repeated full rescans with fresh BFS runs."""
    pattern.validate()
    sim = simulation_candidates(graph, pattern)
    changed = True
    while changed:
        changed = False
        for pattern_node in pattern.nodes():
            for data_node in list(sim[pattern_node]):
                if not _bounded_conditions_hold(
                    graph, pattern, sim, pattern_node, data_node
                ):
                    sim[pattern_node].remove(data_node)
                    changed = True
    return MatchRelation.from_sets(pattern, sim)


def _bounded_conditions_hold(
    graph: Graph,
    pattern: Pattern,
    sim: dict[str, set[NodeId]],
    pattern_node: str,
    data_node: NodeId,
) -> bool:
    for child_pattern, bound in pattern.out_edges(pattern_node):
        reach = bounded_descendants(graph, data_node, bound)
        children = sim[child_pattern]
        if not any(reached in children for reached in reach):
            return False
    return True


def is_valid_bounded_relation(
    graph: Graph, pattern: Pattern, sets: dict[str, set[NodeId]]
) -> bool:
    """Do ``sets`` satisfy the bounded-simulation conditions pair-wise?

    (Validity, not maximality.)  Used to check that the computed relation is
    a fixpoint and that adding any excluded pair would break it.
    """
    for pattern_node in pattern.nodes():
        predicate = pattern.predicate(pattern_node)
        for data_node in sets.get(pattern_node, set()):
            if not predicate.evaluate(graph.attrs(data_node)):
                return False
            if not _bounded_conditions_hold(graph, pattern, sets, pattern_node, data_node):
                return False
    return True


def is_maximal_bounded_relation(
    graph: Graph, pattern: Pattern, sets: dict[str, set[NodeId]]
) -> bool:
    """Is ``sets`` the *maximum* valid refinement (before the totality rule)?

    Checks that no single excluded candidate pair can be added back while
    keeping validity.  Exponential alternatives are avoided because the
    greatest fixpoint is reachable by single additions on top of itself.
    """
    if not is_valid_bounded_relation(graph, pattern, sets):
        return False
    candidates = simulation_candidates(graph, pattern)
    for pattern_node in pattern.nodes():
        for data_node in candidates[pattern_node] - sets.get(pattern_node, set()):
            trial = {u: set(vs) for u, vs in sets.items()}
            trial[pattern_node].add(data_node)
            if is_valid_bounded_relation(graph, pattern, trial):
                return False
    return True
