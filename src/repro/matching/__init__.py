"""Matchers: (bounded) simulation, isomorphism baseline, result graphs."""

from repro.matching.base import MatchRelation, MatchResult
from repro.matching.bounded import BoundedState, match_bounded
from repro.matching.isomorphism import (
    count_isomorphisms,
    find_isomorphisms,
    has_isomorphism,
)
from repro.matching.reference import (
    is_maximal_bounded_relation,
    is_valid_bounded_relation,
    naive_bounded,
    naive_simulation,
)
from repro.matching.result_graph import ResultGraph, build_result_graph
from repro.matching.simulation import (
    match_simulation,
    refine_simulation,
    simulates,
    simulation_candidates,
)

__all__ = [
    "MatchRelation",
    "MatchResult",
    "BoundedState",
    "match_bounded",
    "count_isomorphisms",
    "find_isomorphisms",
    "has_isomorphism",
    "is_maximal_bounded_relation",
    "is_valid_bounded_relation",
    "naive_bounded",
    "naive_simulation",
    "ResultGraph",
    "build_result_graph",
    "match_simulation",
    "refine_simulation",
    "simulates",
    "simulation_candidates",
]
