"""Result graphs — the paper's representation of ``M(Q,G)``.

"The GUI visualizes the query results expressed as result graphs, in which
each node is a match of a query node in Q, and each edge (marked with an
integer d) represents a shortest path with length d corresponding to a query
edge."  The ranking function of §II is computed over exactly this weighted
graph, so :class:`ResultGraph` stores weighted adjacency in both directions
and knows which pattern nodes each data node matches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterator, Mapping

from repro.errors import EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.graph.distance import bounded_descendants
from repro.matching.base import MatchRelation
from repro.pattern.pattern import Pattern

if TYPE_CHECKING:  # pragma: no cover
    from repro.matching.bounded import BoundedState


class ResultGraph:
    """A weighted digraph over matched data nodes.

    Edge ``v -> v'`` with weight ``d`` records that some pattern edge is
    witnessed by a shortest path of length ``d`` from ``v`` to ``v'`` in the
    data graph.
    """

    __slots__ = ("graph", "pattern", "_matched_by", "_adj", "_radj", "_num_edges")

    def __init__(self, graph: Graph, pattern: Pattern) -> None:
        self.graph = graph
        self.pattern = pattern
        self._matched_by: dict[NodeId, set[str]] = {}
        self._adj: dict[NodeId, dict[NodeId, int]] = {}
        self._radj: dict[NodeId, dict[NodeId, int]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # construction (module-internal)
    # ------------------------------------------------------------------
    def _add_node(self, data_node: NodeId, pattern_node: str) -> None:
        self._matched_by.setdefault(data_node, set()).add(pattern_node)
        self._adj.setdefault(data_node, {})
        self._radj.setdefault(data_node, {})

    def _add_edge(self, source: NodeId, target: NodeId, weight: int) -> None:
        if weight < 1:
            raise EvaluationError(f"result edge weight must be >= 1: {weight}")
        existing = self._adj[source].get(target)
        if existing is not None and existing <= weight:
            return
        if existing is None:
            self._num_edges += 1
        self._adj[source][target] = weight
        self._radj[target][source] = weight

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._matched_by)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def __contains__(self, data_node: object) -> bool:
        return data_node in self._matched_by

    def nodes(self) -> Iterator[NodeId]:
        return iter(self._matched_by)

    def edges(self) -> Iterator[tuple[NodeId, NodeId, int]]:
        for source, targets in self._adj.items():
            for target, weight in targets.items():
                yield (source, target, weight)

    def matched_pattern_nodes(self, data_node: NodeId) -> frozenset[str]:
        """Which pattern nodes ``data_node`` matches."""
        return frozenset(self._matched_by.get(data_node, set()))

    def weight(self, source: NodeId, target: NodeId) -> int | None:
        """Edge weight, or None if there is no such result edge."""
        return self._adj.get(source, {}).get(target)

    def match_map(self) -> Mapping[NodeId, set[str]]:
        """``data node -> matched pattern nodes`` (live view; read-only).

        The per-call :meth:`matched_pattern_nodes` copies into a frozenset;
        bulk consumers (the ranking context snapshots one entry per match)
        read this view instead.
        """
        return self._matched_by

    def out_adjacency(self) -> Mapping[NodeId, Mapping[NodeId, int]]:
        """Forward weighted adjacency (live view; treat as read-only)."""
        return self._adj

    def in_adjacency(self) -> Mapping[NodeId, Mapping[NodeId, int]]:
        """Reverse weighted adjacency (live view; treat as read-only)."""
        return self._radj

    def node_attrs(self, data_node: NodeId) -> dict[str, Any]:
        """Attribute dictionary of a matched node (drill-down support)."""
        return self.graph.attrs(data_node)

    def __repr__(self) -> str:
        return f"<ResultGraph: {self.num_nodes} nodes, {self.num_edges} edges>"

    # ------------------------------------------------------------------
    # serialization ("query results are stored and managed as files")
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """A JSON-ready representation (witness edges with weights)."""
        return {
            "format": "repro.result_graph",
            "version": 1,
            "pattern": self.pattern.name,
            "nodes": [
                {"id": node, "matches": sorted(self._matched_by[node])}
                for node in self.nodes()
            ],
            "edges": [
                {"source": source, "target": target, "weight": weight}
                for source, target, weight in self.edges()
            ],
        }

    @classmethod
    def from_dict(
        cls, payload: Mapping[str, Any], graph: Graph, pattern: Pattern
    ) -> "ResultGraph":
        """Rebuild against the graph/pattern the result was computed for.

        Node ids must exist in ``graph`` and pattern-node names in
        ``pattern`` — stale files fail loudly instead of mismatching.
        """
        if (
            not isinstance(payload, Mapping)
            or payload.get("format") != "repro.result_graph"
        ):
            raise EvaluationError("not a repro.result_graph payload")
        result = cls(graph, pattern)
        try:
            for entry in payload["nodes"]:
                node = entry["id"]
                if not graph.has_node(node):
                    raise EvaluationError(f"result node missing from graph: {node!r}")
                for pattern_node in entry["matches"]:
                    if pattern_node not in pattern:
                        raise EvaluationError(
                            f"unknown pattern node in result: {pattern_node!r}"
                        )
                    result._add_node(node, pattern_node)
            for entry in payload["edges"]:
                result._add_edge(entry["source"], entry["target"], entry["weight"])
        except (KeyError, TypeError) as exc:
            raise EvaluationError(f"malformed result-graph payload: {exc}") from exc
        return result


def build_result_graph(
    graph: Graph,
    pattern: Pattern,
    relation: MatchRelation,
    state: "BoundedState | None" = None,
) -> ResultGraph:
    """Construct the result graph for a match relation.

    When the bounded matcher's ``state`` is available its surviving bounded
    successor sets are reused; otherwise shortest distances are recomputed
    with truncated BFS from each match (same output, more work).
    """
    result = ResultGraph(graph, pattern)
    for pattern_node, data_node in relation.pairs():
        result._add_node(data_node, pattern_node)
    if relation.is_empty:
        return result

    if state is not None and state.graph is graph and state.pattern is pattern:
        for source, target, dist in state.match_edges():
            result._add_edge(source, target, dist)
        return result

    for source_pattern, target_pattern, bound in pattern.edges():
        targets = relation.matches_of(target_pattern)
        for source_node in relation.matches_of(source_pattern):
            reach = bounded_descendants(graph, source_node, bound)
            for reached, dist in reach.items():
                if reached in targets:
                    result._add_edge(source_node, reached, dist)
    return result
