"""The ExpFinder facade — the whole system behind one object.

Wraps the query engine, storage, ranking, incremental and compression
modules into the workflow the demo walks its audience through: load or
generate a social graph, build a pattern query, find the top-K experts,
update the graph, inspect what changed.

>>> from repro.expfinder import ExpFinder
>>> from repro.datasets.paper_example import paper_graph, paper_pattern
>>> finder = ExpFinder()
>>> finder.add_graph("fig1", paper_graph())
>>> [match.node for match in finder.find_experts("fig1", paper_pattern(), k=1)]
['Bob']
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from repro.engine.engine import QueryEngine
from repro.engine.planner import Plan
from repro.engine.storage import GraphStore
from repro.errors import EvaluationError
from repro.graph.digraph import Graph, NodeId
from repro.graph.io import load_graph
from repro.incremental.updates import Update
from repro.matching.base import MatchResult
from repro.pattern.parser import load_pattern, parse_pattern
from repro.pattern.pattern import Pattern
from repro.ranking.metrics import RankingMetric
from repro.ranking.social_impact import RankedMatch
from repro.viz import ascii as views


class ExpFinder:
    """End-user entry point mirroring the demo system.

    Parameters
    ----------
    workdir:
        Optional directory for file-backed storage of graphs, patterns and
        results.  Without it, everything stays in memory.
    """

    def __init__(self, workdir: str | Path | None = None, cache_capacity: int = 64) -> None:
        store = GraphStore(workdir) if workdir is not None else None
        self.engine = QueryEngine(store=store, cache_capacity=cache_capacity)

    # ------------------------------------------------------------------
    # data management
    # ------------------------------------------------------------------
    def add_graph(self, name: str, graph: Graph, replace: bool = False) -> None:
        """Register an in-memory graph."""
        self.engine.register_graph(name, graph, replace=replace)

    def load_graph_file(self, name: str, path: str | Path) -> Graph:
        """Register a graph from a JSON file."""
        graph = load_graph(path)
        self.engine.register_graph(name, graph)
        return graph

    def graph(self, name: str) -> Graph:
        return self.engine.graph(name)

    def save(self, name: str) -> None:
        """Persist a registered graph to the working directory store."""
        self.engine.persist_graph(name)

    # ------------------------------------------------------------------
    # querying
    # ------------------------------------------------------------------
    @staticmethod
    def pattern_from_text(text: str, name: str = "") -> Pattern:
        """Build a pattern from the text syntax (Pattern Builder substitute)."""
        return parse_pattern(text, name=name)

    @staticmethod
    def pattern_from_file(path: str | Path) -> Pattern:
        return load_pattern(path)

    def enable_oracle(
        self, graph_name: str, cap: int | None = None, top: int | None = None
    ) -> None:
        """Route selective bounded edges through the landmark distance
        oracle (labels build lazily; see ``QueryEngine.enable_oracle``)."""
        self.engine.enable_oracle(graph_name, cap=cap, top=top)

    def oracle_stats(self, graph_name: str) -> dict[str, Any] | None:
        """Label/build statistics of the graph's oracle (None: disabled)."""
        return self.engine.oracle_stats(graph_name)

    def match(
        self,
        graph_name: str,
        pattern: Pattern,
        workers: int | None = None,
        **kwargs: Any,
    ) -> MatchResult:
        """``M(Q,G)`` with engine routing (cache / compressed / direct).

        ``workers`` > 1 runs the direct route with ball-sharded parallel
        evaluation (identical result, fanned out to a process pool).
        """
        return self.engine.evaluate(graph_name, pattern, workers=workers, **kwargs)

    def match_many(
        self,
        graph_name: str,
        patterns: Sequence[Pattern],
        workers: int | None = None,
        **kwargs: Any,
    ) -> list[MatchResult]:
        """Evaluate many queries in one batch (shared candidate work).

        ``workers`` > 1 farms the batch's distinct direct-route queries out
        to a process pool (one big query is sharded instead).
        """
        return self.engine.evaluate_many(
            graph_name, patterns, workers=workers, **kwargs
        )

    def find_experts(
        self,
        graph_name: str,
        pattern: Pattern,
        k: int = 5,
        metric: str | RankingMetric = "social-impact",
        workers: int | None = None,
        **evaluate_kwargs: Any,
    ) -> list[RankedMatch] | list[tuple[NodeId, float]]:
        """Top-K matches of the output node, best first.

        ``workers`` > 1 parallelises both evaluation and per-match scoring;
        any other keyword (``use_cache``, ``use_compression``, ...) is
        forwarded to :meth:`QueryEngine.evaluate`, exactly as
        :meth:`QueryEngine.top_k` accepts them.
        """
        return self.engine.top_k(
            graph_name, pattern, k, metric=metric, workers=workers,
            **evaluate_kwargs,
        )

    def explain(self, graph_name: str, pattern: Pattern) -> Plan:
        """How the engine would evaluate this query right now."""
        return self.engine.explain(graph_name, pattern)

    # ------------------------------------------------------------------
    # dynamics
    # ------------------------------------------------------------------
    def pin(self, graph_name: str, pattern: Pattern) -> None:
        """Mark a query as frequently issued: cached + incrementally maintained."""
        self.engine.pin(graph_name, pattern)

    def update(self, graph_name: str, updates: Sequence[Update]) -> dict[str, Any]:
        """Apply edge updates; returns ΔM per pinned query."""
        return self.engine.update_graph(graph_name, updates)

    def compress(
        self,
        graph_name: str,
        attrs: Sequence[str],
        method: str = "bisimulation",
        maintained: bool = True,
    ):
        """Compress a graph for faster querying; returns the CompressedGraph."""
        return self.engine.compress_graph(
            graph_name, attrs, method=method, maintained=maintained
        )

    # ------------------------------------------------------------------
    # inspection (GUI-substitute views)
    # ------------------------------------------------------------------
    def summary(self, graph_name: str, attr: str = "field") -> str:
        return views.graph_summary(self.engine.graph(graph_name), attr=attr)

    def who_is(self, graph_name: str, node: NodeId) -> str:
        """The personal-information card of one person."""
        return views.node_card(self.engine.graph(graph_name), node)

    def roll_up(self, result: MatchResult) -> str:
        """Global structure of a query result."""
        return views.roll_up(result.result_graph())

    def drill_down(self, result: MatchResult, node: NodeId) -> str:
        """Detailed view of one match inside a query result."""
        return views.drill_down(result.result_graph(), node)

    def ranking_table(self, ranked: Sequence[RankedMatch], k: int | None = None) -> str:
        if ranked and not isinstance(ranked[0], RankedMatch):
            raise EvaluationError(
                "ranking_table renders RankedMatch lists (the social-impact metric)"
            )
        return views.render_ranking(list(ranked), k=k)
