"""Command-line front end — the offline substitute for the demo GUI.

Every interaction the demo performs through its GUI maps to a subcommand:

===============  ======================================================
GUI action        CLI equivalent
===============  ======================================================
select/view data  ``expfinder show --graph g.json [--node Bob]``
generate data     ``expfinder generate --kind collab --nodes 500 --out g.json``
build a pattern   pattern files (see ``repro.pattern.parser`` syntax)
run a query       ``expfinder query --graph g.json --pattern q.pattern``
run many queries  ``expfinder batch --graph g.json --pattern q1 --pattern q2``
browse top-K      ``expfinder topk --graph g.json --pattern q.pattern -k 3``
batch updates     ``expfinder update --graph g.json --insert a:b --delete c:d``
compress          ``expfinder compress --graph g.json --attrs field``
the walkthrough   ``expfinder demo``
===============  ======================================================
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import CliError, ReproError
from repro.graph.digraph import Graph
from repro.graph.generators import collaboration_graph, random_digraph, twitter_like_graph
from repro.graph.io import load_graph, save_graph
from repro.incremental.updates import EdgeDeletion, EdgeInsertion, Update
from repro.compression.compress import compress
from repro.engine.planner import make_plan
from repro.matching.bounded import match_bounded
from repro.matching.simulation import match_simulation
from repro.pattern.parser import load_pattern
from repro.pattern.pattern import Pattern
from repro.ranking.metrics import METRICS
from repro.ranking.social_impact import rank_matches
from repro.viz import ascii as views
from repro.viz.dot import result_to_dot


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    arguments = list(sys.argv[1:] if argv is None else argv)
    if arguments[:1] == ["lint"]:
        # repro-lint owns its own flags and exit codes; forwarding before
        # argparse keeps `expfinder lint --list-rules` working (REMAINDER
        # would refuse a leading option).
        from repro.analysis.cli import main as lint_main

        return lint_main(arguments[1:])
    parser = _build_parser()
    args = parser.parse_args(arguments)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="expfinder",
        description="Find experts in social networks by graph pattern matching.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic social graph")
    generate.add_argument("--kind", choices=("collab", "twitter", "random"), default="collab")
    generate.add_argument("--nodes", type=int, default=500)
    generate.add_argument("--edges", type=int, default=None, help="random kind only")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output JSON path")
    generate.set_defaults(handler=_cmd_generate)

    show = sub.add_parser("show", help="summarize a graph or one node")
    show.add_argument("--graph", required=True)
    show.add_argument("--node", default=None)
    show.add_argument("--attr", default="field", help="attribute for the histogram")
    show.add_argument("--profile", action="store_true",
                      help="print degree/density/reciprocity statistics")
    show.set_defaults(handler=_cmd_show)

    query = sub.add_parser("query", help="evaluate a pattern query")
    query.add_argument("--graph", required=True)
    query.add_argument("--pattern", required=True)
    query.add_argument("--explain", action="store_true", help="print the plan")
    query.add_argument("--result-graph", action="store_true", help="print witness edges")
    query.add_argument("--workers", type=int, default=1,
                       help="evaluate with N worker processes "
                            "(ball-sharded; default 1 = sequential)")
    query.add_argument("--oracle", action="store_true",
                       help="build a landmark distance oracle first and let "
                            "the planner route selective pattern edges to "
                            "pairwise label merges")
    query.add_argument("--oracle-cap", type=int, default=None, metavar="DEPTH",
                       help="bound the oracle's exact-distance depth "
                            "(default: uncapped, covers '*' too)")
    _add_budget_flags(query)
    query.set_defaults(handler=_cmd_query)

    batch = sub.add_parser(
        "batch",
        help="evaluate many pattern queries in one engine pass "
             "(shared candidate generation via the attribute index)",
    )
    batch.add_argument("--graph", required=True)
    batch.add_argument(
        "--pattern", action="append", required=True, metavar="SPEC",
        help="pattern file or lib:<name>; repeat for each query",
    )
    batch.add_argument("--verbose", action="store_true",
                       help="print the full relation of every query")
    batch.add_argument("--workers", type=int, default=1,
                       help="farm queries out to N worker processes "
                            "(default 1 = sequential)")
    batch.add_argument("--oracle", action="store_true",
                       help="enable the landmark distance oracle for the "
                            "whole batch (built once, shared by every query)")
    batch.add_argument("--oracle-cap", type=int, default=None, metavar="DEPTH",
                       help="bound the oracle's exact-distance depth "
                            "(default: uncapped)")
    _add_budget_flags(batch)
    batch.set_defaults(handler=_cmd_batch)

    oracle = sub.add_parser(
        "oracle",
        help="build the landmark distance oracle for a graph and report "
             "label statistics (optionally: the kernel routing of a pattern)",
    )
    oracle.add_argument("--graph", required=True)
    oracle.add_argument("--cap", type=int, default=None, metavar="DEPTH",
                        help="exact-distance depth cap (default: uncapped, "
                             "covers '*' bounds too)")
    oracle.add_argument("--top", type=int, default=None, metavar="N",
                        help="sequential landmark prefix (default 512)")
    oracle.add_argument("--pattern", default=None,
                        help="also print the per-edge kernel routing this "
                             "oracle would produce for a pattern")
    oracle.add_argument("--workers", type=int, default=1,
                        help="build phase-two labels with N worker processes")
    oracle.set_defaults(handler=_cmd_oracle)

    topk = sub.add_parser("topk", help="rank the output node's matches")
    topk.add_argument("--graph", required=True)
    topk.add_argument("--pattern", required=True)
    topk.add_argument("-k", type=int, default=5)
    topk.add_argument("--metric", choices=sorted(METRICS), default="social-impact")
    topk.add_argument("--dot", default=None, help="write a DOT file highlighting the top-1")
    topk.add_argument("--workers", type=int, default=1,
                      help="evaluate and score with N worker processes "
                           "(default 1 = sequential)")
    _add_budget_flags(topk)
    topk.set_defaults(handler=_cmd_topk)

    update = sub.add_parser("update", help="apply graph updates to a graph file")
    update.add_argument("--graph", required=True)
    update.add_argument("--insert", action="append", default=[], metavar="SRC:DST")
    update.add_argument("--delete", action="append", default=[], metavar="SRC:DST")
    update.add_argument("--add-node", action="append", default=[],
                        metavar="NODE[:attr=value,...]")
    update.add_argument("--remove-node", action="append", default=[], metavar="NODE")
    update.add_argument("--set-attr", action="append", default=[],
                        metavar="NODE:ATTR:VALUE")
    update.add_argument("--pattern", default=None, help="also report ΔM for this query")
    update.add_argument("--out", default=None, help="where to write (default: in place)")
    update.set_defaults(handler=_cmd_update)

    compress_cmd = sub.add_parser("compress", help="build a query-preserving compression")
    compress_cmd.add_argument("--graph", required=True)
    compress_cmd.add_argument("--attrs", default="field", help="comma-separated label attrs")
    compress_cmd.add_argument("--method", choices=("bisimulation", "simulation"),
                              default="bisimulation")
    compress_cmd.add_argument("--out", default=None, help="write the quotient graph JSON")
    compress_cmd.set_defaults(handler=_cmd_compress)

    snapshot = sub.add_parser(
        "snapshot",
        help="persist frozen snapshots (and oracles) as mmap-ready binary files",
    )
    snap_sub = snapshot.add_subparsers(dest="snapshot_command", required=True)
    snap_save = snap_sub.add_parser(
        "save", help="freeze a graph into a store's binary snapshot catalogue"
    )
    snap_save.add_argument("--graph", required=True, help="graph JSON file")
    snap_save.add_argument("--store", required=True, help="store root directory")
    snap_save.add_argument("--name", default=None,
                           help="store name (default: the graph file's stem)")
    snap_save.add_argument("--oracle", action="store_true",
                           help="also build and persist the distance oracle")
    snap_save.add_argument("--oracle-cap", type=int, default=None, metavar="DEPTH",
                           help="exact-distance cap for the oracle build")
    snap_save.add_argument("--workers", type=int, default=1,
                           help="worker processes for the oracle build")
    snap_save.set_defaults(handler=_cmd_snapshot_save)
    snap_load = snap_sub.add_parser(
        "load", help="mmap a stored snapshot back and verify it"
    )
    snap_load.add_argument("--store", required=True, help="store root directory")
    snap_load.add_argument("--name", required=True, help="snapshot name")
    snap_load.set_defaults(handler=_cmd_snapshot_load)
    snap_info = snap_sub.add_parser(
        "info", help="print a stored snapshot's header and section layout"
    )
    snap_info.add_argument("--store", required=True, help="store root directory")
    snap_info.add_argument("--name", required=True, help="snapshot name")
    snap_info.set_defaults(handler=_cmd_snapshot_info)

    serve = sub.add_parser(
        "serve",
        help="run the long-running concurrent query service "
             "(MVCC-lite snapshot epochs over HTTP + JSON)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 = ephemeral; printed at startup)")
    serve.add_argument("--store", default=None,
                       help="GraphStore root for --preload and persistence")
    serve.add_argument("--preload", action="append", default=[], metavar="NAME",
                       help="warm-start a stored graph at startup: mmap its "
                            ".frozen.snap/.oracle.snap via the store so the "
                            "first request never pays a freeze or label "
                            "build; repeat per graph (needs --store)")
    serve.add_argument("--graph", action="append", default=[],
                       metavar="[NAME=]FILE",
                       help="register a graph JSON file at startup "
                            "(default name: the file's stem); repeatable")
    serve.add_argument("--workers", type=int, default=1,
                       help="warm a persistent N-process evaluation pool at "
                            "startup (default 1 = inline evaluation)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       help="admission control: concurrent request cap")
    serve.add_argument("--queue-depth", type=int, default=16,
                       help="admission control: waiting-request cap beyond "
                            "the inflight limit (excess gets HTTP 429)")
    serve.add_argument("--admission-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="max wait for a free slot before HTTP 429")
    serve.add_argument("--default-budget", type=int, default=None,
                       metavar="VISITS",
                       help="per-request node-visit budget applied when the "
                            "request carries none (allow-partial semantics)")
    serve.add_argument("--default-time-limit", type=float, default=None,
                       metavar="SECONDS",
                       help="per-request wall-clock limit applied when the "
                            "request carries no budget")
    serve.add_argument("--wal-dir", default=None, metavar="DIR",
                       help="enable the durable write-ahead changelog: every "
                            "update batch is appended (and CRC-framed) here "
                            "before it applies, and startup replays any "
                            "unapplied suffix over the last checkpoint")
    serve.add_argument("--fsync", default="batch",
                       choices=("always", "batch", "none"),
                       help="WAL fsync policy: 'always' syncs every batch, "
                            "'batch' amortizes (process crashes lose nothing "
                            "either way; only power loss differs), 'none' "
                            "trusts the OS page cache (default: batch)")
    serve.add_argument("--checkpoint-every", type=int, default=64,
                       metavar="BATCHES",
                       help="persist a snapshot checkpoint and truncate "
                            "sealed WAL segments every N published batches "
                            "(default: 64)")
    serve.set_defaults(handler=_cmd_serve)

    stats = sub.add_parser(
        "stats",
        help="surface cache/oracle/snapshot statistics for a running "
             "service (--url) or a local engine (--graph)",
    )
    stats.add_argument("--url", default=None,
                       help="base URL of a running `expfinder serve` "
                            "instance; prints its /stats document")
    stats.add_argument("--graph", default=None,
                       help="graph JSON file for local-engine statistics")
    stats.add_argument("--store", default=None,
                       help="GraphStore root (lets the local engine fault "
                            "persisted snapshots in, which the counters show)")
    stats.add_argument("--name", default=None,
                       help="store/registration name (default: file stem)")
    stats.add_argument("--pattern", default=None, metavar="SPEC",
                       help="run one query first so the counters show a "
                            "live evaluation (pattern file or lib:<name>)")
    stats.set_defaults(handler=_cmd_stats)

    # `lint` is dispatched in main() before argparse (its flags are owned
    # by repro.analysis.cli); registered here only so it shows in --help.
    lint = sub.add_parser(
        "lint",
        help="run repro-lint, the AST-based invariant checker "
             "(see also: python -m repro.analysis)",
    )
    lint.set_defaults(handler=_cmd_lint)

    demo = sub.add_parser("demo", help="walk through the paper's Examples 1-3")
    demo.set_defaults(handler=_cmd_demo)
    return parser


# ----------------------------------------------------------------------
# handlers
# ----------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    if args.kind == "collab":
        graph = collaboration_graph(args.nodes, seed=args.seed)
    elif args.kind == "twitter":
        graph = twitter_like_graph(args.nodes, seed=args.seed)
    else:
        edges = args.edges if args.edges is not None else args.nodes * 3
        graph = random_digraph(args.nodes, edges, seed=args.seed)
    path = save_graph(graph, args.out)
    print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {path}")
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    if args.node is not None:
        print(views.node_card(graph, args.node))
        return 0
    print(views.graph_summary(graph, attr=args.attr))
    if args.profile:
        from repro.graph.stats import graph_profile

        profile = graph_profile(graph, attr=args.attr)
        print()
        print(f"density:      {profile['density']:.5f}")
        print(f"reciprocity:  {profile['reciprocity']:.3f}")
        out_stats = profile["out_degree"]
        print(
            "out-degree:   "
            f"min {out_stats.minimum}, median {out_stats.median}, "
            f"mean {out_stats.mean:.2f}, max {out_stats.maximum}, "
            f"zeros {out_stats.zeros}"
        )
        in_stats = profile["in_degree"]
        print(
            "in-degree:    "
            f"min {in_stats.minimum}, median {in_stats.median}, "
            f"mean {in_stats.mean:.2f}, max {in_stats.maximum}, "
            f"zeros {in_stats.zeros}"
        )
        print(f"avg 2-hop reach (sampled): {profile['avg_reach_2']:.1f} nodes")
    return 0


def _load_inputs(args: argparse.Namespace) -> tuple[Graph, Pattern]:
    return load_graph(args.graph), _resolve_pattern(args.pattern)


def _resolve_pattern(spec: str) -> Pattern:
    """A pattern file path, or ``lib:<name>`` from the bundled query library."""
    if spec.startswith("lib:"):
        from repro.datasets.queries import get_query

        return get_query(spec[len("lib:"):])
    return load_pattern(spec)


def _add_budget_flags(sub: argparse.ArgumentParser) -> None:
    """Runaway-query guard flags, shared by query/batch/topk."""
    sub.add_argument("--budget", type=int, default=None, metavar="VISITS",
                     help="abort (or truncate, with --allow-partial) any "
                          "bounded query that touches more than VISITS "
                          "data nodes during traversal")
    sub.add_argument("--time-limit", type=float, default=None, metavar="SECONDS",
                     help="wall-clock limit per bounded query")
    sub.add_argument("--allow-partial", action="store_true",
                     help="degrade gracefully when a guard trips: return a "
                          "sound partial result (marked partial) instead of "
                          "failing the query")


def _parse_budget(args: argparse.Namespace):
    """Flags into a validated :class:`QueryBudget` (or None when absent).

    Mirrors `_check_workers`: validation lives in the engine's one rule
    (`QueryBudget.validate`) and the CLI only rephrases failures in flag
    terms, so the two layers can never disagree.
    """
    if args.budget is None and args.time_limit is None:
        if args.allow_partial:
            raise CliError("--allow-partial needs --budget and/or --time-limit")
        return None
    from repro.engine.estimator import QueryBudget
    from repro.errors import EvaluationError

    budget = QueryBudget(
        node_visits=args.budget,
        seconds=args.time_limit,
        allow_partial=args.allow_partial,
    )
    try:
        budget.validate()
    except EvaluationError as exc:
        raise CliError(f"--budget/--time-limit: {exc}") from None
    return budget


def _report_partial(stats: dict) -> None:
    """One-line partial-result notice (query/topk; batch prints inline)."""
    if stats.get("partial"):
        print(
            f"note: partial result — {stats.get('guard', '?')} guard tripped "
            f"after {stats.get('visits', 0)} node visits"
        )


def _check_workers(workers: int) -> int:
    """CLI-level validation so `--workers 0` fails before any work starts.

    Delegates to the engine's one rule (`validate_workers`) and rephrases
    the failure in flag terms, so CLI and engine can never disagree about
    what a valid worker count is.
    """
    from repro.engine.parallel import validate_workers
    from repro.errors import EvaluationError

    try:
        return validate_workers(workers)
    except EvaluationError as exc:
        raise CliError(f"--workers: {exc}") from None


def _evaluate(graph: Graph, pattern: Pattern, workers: int = 1):
    if workers > 1:
        from repro.engine.parallel import ParallelExecutor

        with ParallelExecutor(workers) as executor:
            return executor.match(graph, pattern)
    if pattern.is_simulation_pattern:
        return match_simulation(graph, pattern)
    return match_bounded(graph, pattern)


def _cmd_query(args: argparse.Namespace) -> int:
    workers = _check_workers(args.workers)
    budget = _parse_budget(args)
    graph, pattern = _load_inputs(args)
    if args.oracle or budget is not None:
        # Oracle-routed and guarded evaluation go through the engine: it
        # owns the snapshot, the oracle cache, the planner's kernel
        # routing, and the estimator-driven query guards.
        from repro.engine.engine import QueryEngine

        engine = QueryEngine()
        engine.register_graph("cli", graph)
        if args.oracle:
            engine.enable_oracle("cli", cap=args.oracle_cap)
        try:
            if args.explain:
                print(engine.explain("cli", pattern, budget=budget).explain())
                print()
            result = engine.evaluate("cli", pattern, workers=workers, budget=budget)
            if args.explain and "kernels" in result.stats:
                kernels = ", ".join(
                    f"{edge}: {kernel}"
                    for edge, kernel in sorted(result.stats["kernels"].items())
                )
                print(f"kernels used: {kernels}")
                print()
        finally:
            engine.close()
        _report_partial(result.stats)
    else:
        if args.explain:
            print(make_plan(pattern).explain())
            print()
        result = _evaluate(graph, pattern, workers=workers)
    print(views.relation_summary(result.relation))
    if args.result_graph and result.is_match:
        print()
        print(views.render_result_graph(result.result_graph()))
    return 0 if result.is_match else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.engine.engine import QueryEngine

    workers = _check_workers(args.workers)
    budget = _parse_budget(args)
    graph = load_graph(args.graph)
    patterns = [_resolve_pattern(spec) for spec in args.pattern]
    engine = QueryEngine()
    engine.register_graph("cli", graph)
    if args.oracle:
        engine.enable_oracle("cli", cap=args.oracle_cap)
    results = engine.evaluate_many("cli", patterns, workers=workers, budget=budget)
    all_matched = True
    for spec, result in zip(args.pattern, results):
        status = "match" if result.is_match else "no-match"
        if result.stats.get("partial"):
            status += f" [partial: {result.stats.get('guard', '?')}]"
        all_matched = all_matched and result.is_match
        print(
            f"{spec}: {status} ({result.relation.num_pairs} pairs, "
            f"route={result.stats['route']}, algorithm={result.stats['algorithm']}, "
            f"{result.stats['seconds']:.4f}s)"
        )
        if args.verbose:
            print(views.relation_summary(result.relation))
            print()
    batch_stats = results[0].stats["batch"] if results else {}
    workers_note = f", {workers} workers" if workers > 1 else ""
    print(
        f"batch: {len(results)} queries, "
        f"{batch_stats.get('distinct_predicates', 0)} distinct predicates, "
        f"{batch_stats.get('seconds_total', 0.0):.4f}s total{workers_note}"
    )
    snapshots = engine.snapshot_stats()
    print(
        f"frozen snapshots: {snapshots['builds']} built, "
        f"{snapshots['hits']} reused"
    )
    if args.oracle:
        stats = engine.oracle_stats("cli") or {}
        if stats.get("state") == "warm":
            # Engagement is read from each result's kernel log (it travels
            # back from pool workers too); the oracle instance's own
            # counters only move in whichever process filled the rows.
            routed = sum(
                1
                for result in results
                if "oracle-pairwise" in result.stats.get("kernels", {}).values()
            )
            print(
                f"distance oracle: {stats['label_entries_out'] + stats['label_entries_in']}"
                f" label entries built in {stats['build_seconds']:.3f}s, "
                f"{routed}/{len(results)} queries oracle-routed"
            )
        else:
            print("distance oracle: enabled (no bounded query needed it)")
    return 0 if all_matched else 1


def _cmd_oracle(args: argparse.Namespace) -> int:
    """Build a graph's distance oracle and report its label statistics.

    The CLI is file-based (one engine per invocation), so "enable" means:
    build now, print what the engine would cache, and — with --pattern —
    show the kernel routing the planner derives from it.  Long-running
    deployments call ``QueryEngine.enable_oracle`` once and keep the
    labels warm across queries; this subcommand is the offline view of
    the same machinery.
    """
    from repro.engine.engine import QueryEngine

    workers = _check_workers(args.workers)
    graph = load_graph(args.graph)
    engine = QueryEngine()
    engine.register_graph("cli", graph)
    engine.enable_oracle("cli", cap=args.cap, top=args.top)
    try:
        stats = engine.warm_oracle("cli", workers=workers)
        cap = "unbounded ('*' covered)" if stats["cap"] is None else stats["cap"]
        print(f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges")
        print(f"exact-distance cap: {cap}")
        print(f"build: {stats['build_seconds']:.3f}s "
              f"(sequential landmark prefix: {stats['top']})")
        print(
            f"labels: {stats['label_entries_out']} forward + "
            f"{stats['label_entries_in']} reverse entries "
            f"(avg {stats['avg_out_label']:.1f} / {stats['avg_in_label']:.1f} "
            "per node)"
        )
        print(f"reachability closure: {stats['reach_entries']} hub entries")
        if args.pattern is not None:
            pattern = _resolve_pattern(args.pattern)
            print()
            print(engine.explain("cli", pattern).explain())
        return 0
    finally:
        engine.close()


def _cmd_snapshot_save(args: argparse.Namespace) -> int:
    """Freeze a graph (and optionally its oracle) into a store's catalogue.

    Also persists the graph JSON under the same name: reloading that JSON
    reproduces the same deterministic ``Graph.version``, which is what
    later loads (and engine cache fault-ins) validate the binary snapshot
    against.
    """
    from repro.engine.engine import QueryEngine
    from repro.engine.storage import GraphStore

    workers = _check_workers(args.workers)
    graph = load_graph(args.graph)
    name = args.name if args.name is not None else Path(args.graph).stem
    engine = QueryEngine(store=GraphStore(args.store))
    engine.register_graph(name, graph)
    try:
        engine.persist_graph(name)
        if args.oracle:
            engine.enable_oracle(name, cap=args.oracle_cap)
        paths = engine.persist_snapshot(
            name, include_oracle=args.oracle, workers=workers
        )
        print(
            f"graph: {graph.num_nodes} nodes, {graph.num_edges} edges "
            f"(version {graph.version})"
        )
        snapshot_path = paths["snapshot"]
        print(f"snapshot: {snapshot_path} ({snapshot_path.stat().st_size} bytes)")
        if args.oracle:
            oracle_path = paths["oracle"]
            print(f"oracle: {oracle_path} ({oracle_path.stat().st_size} bytes)")
        return 0
    finally:
        engine.close()


def _cmd_snapshot_load(args: argparse.Namespace) -> int:
    """Mmap a stored snapshot, validate it, and report what came back."""
    from repro.engine.storage import GraphStore

    store = GraphStore(args.store)
    expected = store.load_graph(args.name).version if store.has_graph(args.name) else None
    frozen = store.load_snapshot(args.name, expected_version=expected)
    print(
        f"snapshot: {frozen.num_nodes} nodes, {frozen.num_edges} edges "
        f"(source version {frozen.source_version})"
    )
    print(f"mapped from: {frozen.path}")
    if expected is not None:
        print(f"validated against stored graph {args.name!r} (version {expected})")
    if store.has_oracle(args.name):
        oracle = store.load_oracle(args.name, expected_version=expected)
        cap = "*" if oracle.cap is None else oracle.cap
        print(
            f"oracle: cap {cap}, "
            f"{len(oracle.out_hubs) + len(oracle.in_hubs)} label entries "
            f"(mapped from {oracle.path})"
        )
    return 0


def _cmd_snapshot_info(args: argparse.Namespace) -> int:
    """Print header fields and section layout of stored snapshot files."""
    from repro.engine.storage import GraphStore

    store = GraphStore(args.store)
    kinds = []
    if store.has_snapshot(args.name):
        kinds.append("frozen")
    if store.has_oracle(args.name):
        kinds.append("oracle")
    if not kinds:
        raise CliError(f"no stored snapshot named {args.name!r}")
    for kind in kinds:
        info = store.snapshot_info(args.name, kind=kind)
        print(f"{info['kind']}: {info['path']}")
        print(
            f"  format v{info['format_version']}, "
            f"source version {info['source_version']}, "
            f"checksum {info['checksum']}, {info['file_bytes']} bytes"
        )
        for section, length in info["sections"]:
            print(f"  section {section}: {length} bytes")
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    """Top-K through the engine, like `query`/`batch` — never a private path.

    Routing through :class:`QueryEngine` gives `topk` everything the other
    subcommands already had: plan-based route selection, the attribute
    index, the query and ranked-result caches, and `--workers` fan-out for
    both evaluation and per-match scoring.
    """
    from repro.engine.engine import QueryEngine

    workers = _check_workers(args.workers)
    budget = _parse_budget(args)
    graph, pattern = _load_inputs(args)
    pattern.validate(require_output=True)
    engine = QueryEngine()
    engine.register_graph("cli", graph)
    try:
        ranked = engine.top_k(
            "cli", pattern, args.k, metric=args.metric, workers=workers,
            budget=budget,
        )
        # M(Q,G) is total-or-empty: no ranked experts means no match at all.
        if not ranked:
            print("no match")
            return 1
        if args.metric == "social-impact":
            print(views.render_ranking(ranked))
            top = ranked[0].node
        else:
            print(views.render_table(("#", "expert", args.metric),
                                     [(i + 1, n, f"{s:.4f}")
                                      for i, (n, s) in enumerate(ranked)]))
            top = ranked[0][0]
        if args.dot is not None:
            # The evaluation is already cached (and the ranking context
            # snapshotted), so deriving the result graph here is cheap —
            # unless the result was partial (never cached), in which case
            # the same budget keeps the re-derivation guarded too.
            result = engine.evaluate("cli", pattern, budget=budget)
            _report_partial(result.stats)
            result_graph = result.result_graph()
            Path(args.dot).write_text(result_to_dot(result_graph, highlight=top))
            print(f"wrote {args.dot}")
        return 0
    finally:
        engine.close()


def _parse_edge(spec: str) -> tuple[str, str]:
    parts = spec.split(":")
    if len(parts) != 2 or not parts[0] or not parts[1]:
        raise CliError(f"bad edge spec {spec!r}; expected SRC:DST")
    return parts[0], parts[1]


def _parse_node_spec(spec: str):
    """``NODE[:attr=value,...]`` into a NodeInsertion."""
    from repro.incremental.updates import NodeInsertion
    from repro.pattern.predicates import _parse_value

    head, _, rest = spec.partition(":")
    if not head:
        raise CliError(f"bad node spec {spec!r}")
    attrs = {}
    if rest:
        for assignment in rest.split(","):
            key, eq, raw = assignment.partition("=")
            if not eq or not key.strip():
                raise CliError(f"bad attribute assignment {assignment!r} in {spec!r}")
            attrs[key.strip()] = _parse_value(raw.strip())
    return NodeInsertion.with_attrs(head, **attrs)


def _parse_attr_spec(spec: str):
    """``NODE:ATTR:VALUE`` into an AttributeUpdate."""
    from repro.incremental.updates import AttributeUpdate
    from repro.pattern.predicates import _parse_value

    parts = spec.split(":")
    if len(parts) != 3 or not all(parts):
        raise CliError(f"bad attribute spec {spec!r}; expected NODE:ATTR:VALUE")
    return AttributeUpdate(parts[0], parts[1], _parse_value(parts[2]))


def _cmd_update(args: argparse.Namespace) -> int:
    from repro.incremental.updates import NodeDeletion, decompose

    graph = load_graph(args.graph)
    updates: list[Update] = []
    for spec in args.add_node:
        updates.append(_parse_node_spec(spec))
    for spec in args.insert:
        updates.append(EdgeInsertion(*_parse_edge(spec)))
    for spec in args.set_attr:
        updates.append(_parse_attr_spec(spec))
    for spec in args.delete:
        updates.append(EdgeDeletion(*_parse_edge(spec)))
    for node in args.remove_node:
        updates.append(NodeDeletion(node))
    if not updates:
        raise CliError(
            "nothing to do: pass --insert/--delete/--add-node/--remove-node/--set-attr"
        )

    before = None
    pattern = None
    if args.pattern is not None:
        pattern = _resolve_pattern(args.pattern)
        before = _evaluate(graph, pattern).relation
    for update in updates:
        for primitive in decompose(graph, update):
            primitive.apply(graph)
    out_path = args.out or args.graph
    save_graph(graph, out_path)
    print(f"applied {len(updates)} update(s); wrote {out_path}")
    if pattern is not None and before is not None:
        after = _evaluate(graph, pattern).relation
        added, removed = before.diff(after)
        for pattern_node, data_node in sorted(added, key=str):
            print(f"ΔM +({pattern_node}, {data_node})")
        for pattern_node, data_node in sorted(removed, key=str):
            print(f"ΔM -({pattern_node}, {data_node})")
        if not added and not removed:
            print("ΔM empty: match relation unchanged")
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    attrs = tuple(part.strip() for part in args.attrs.split(",") if part.strip())
    compressed = compress(graph, attrs, method=args.method)
    print(
        f"{graph.num_nodes} -> {compressed.quotient.num_nodes} nodes, "
        f"{graph.num_edges} -> {compressed.quotient.num_edges} edges "
        f"(size reduced by {compressed.size_reduction:.1%})"
    )
    if args.out is not None:
        save_graph(compressed.quotient, args.out)
        print(f"wrote quotient to {args.out}")
    return 0


def _serve_config(args: argparse.Namespace):
    """serve flags into a validated ServiceConfig (CliError on bad flags)."""
    from repro.engine.estimator import QueryBudget
    from repro.errors import EvaluationError, ServerError
    from repro.server import ServiceConfig

    _check_workers(args.workers)
    default_budget = None
    if args.default_budget is not None or args.default_time_limit is not None:
        default_budget = QueryBudget(
            node_visits=args.default_budget,
            seconds=args.default_time_limit,
            allow_partial=True,
        )
        try:
            default_budget.validate()
        except EvaluationError as exc:
            raise CliError(
                f"--default-budget/--default-time-limit: {exc}"
            ) from None
    try:
        return ServiceConfig(
            workers=args.workers,
            max_inflight=args.max_inflight,
            max_queue=args.queue_depth,
            queue_timeout=args.admission_timeout,
            default_budget=default_budget,
            wal_dir=getattr(args, "wal_dir", None),
            fsync=getattr(args, "fsync", "batch"),
            checkpoint_every=getattr(args, "checkpoint_every", 64),
        ).validated()
    except ServerError as exc:
        raise CliError(f"--max-inflight/--queue-depth/--fsync/"
                       f"--checkpoint-every: {exc}") from None


class _GracefulExit(Exception):
    """Raised out of the serve loop by the SIGTERM handler (drain path)."""


def _cmd_serve(args: argparse.Namespace) -> int:
    """Start the query service, preload/register graphs, serve until ^C.

    SIGTERM (and Ctrl-C) triggers a *drain*: stop accepting work, wait
    for in-flight requests to finish, write a final checkpoint and seal
    the WAL — so a supervised restart recovers instantly with an empty
    replay suffix.
    """
    import signal

    from repro.engine.storage import GraphStore
    from repro.server import ExpFinderService, QueryServer
    from repro.testing.faults import install_from_env

    if args.preload and args.store is None:
        raise CliError("--preload needs --store (snapshots live in a store)")
    store = GraphStore(args.store) if args.store is not None else None
    # Staging rehearsal hook: REPRO_FAULTS="wal.fsync=crash@3" arms the
    # registered fault points in a real serve process.
    if install_from_env():
        print("fault injection armed from $REPRO_FAULTS")
    service = ExpFinderService(_serve_config(args), store=store)
    try:
        for name, report in sorted(service.recovered.items()):
            if report.get("status") == "recovered":
                print(
                    f"recovered {name!r}: replayed {report['replayed']} "
                    f"batch(es), skipped {report['skipped']}, "
                    f"lsn {report['lsn']}"
                )
        for name in args.preload:
            info = service.preload(name)
            print(
                f"preloaded {name!r}: {info['nodes']} nodes / "
                f"{info['edges']} edges, epoch {info['epoch']}, "
                f"oracle={'yes' if info['oracle'] else 'no'} "
                f"({info['fault_ins']} snapshot fault-ins, no freeze)"
            )
        for spec in args.graph:
            name, eq, path = spec.partition("=")
            if not eq:
                name, path = Path(spec).stem, spec
            if not name or not path:
                raise CliError(f"bad graph spec {spec!r}; expected [NAME=]FILE")
            if service.recovered.get(name, {}).get("status") == "recovered":
                # The same command line across restarts must just work:
                # the WAL already rebuilt this graph *with* every batch
                # published since the seed file was written, so the file
                # is strictly staler than what recovery installed.
                print(f"skipped {name!r}: already recovered from the WAL")
                continue
            graph = load_graph(path)
            info = service.register_graph(name, graph)
            print(
                f"registered {name!r}: {info['nodes']} nodes / "
                f"{info['edges']} edges, epoch {info['epoch']}"
            )

        def _on_sigterm(signum: int, frame: object) -> None:
            raise _GracefulExit()

        previous = signal.signal(signal.SIGTERM, _on_sigterm)
        with QueryServer(service, host=args.host, port=args.port) as server:
            host, port = server.address
            print(f"serving on http://{host}:{port} (Ctrl-C to stop)")
            try:
                server.serve_forever()
            except (KeyboardInterrupt, _GracefulExit):
                print("shutting down: draining in-flight requests")
                drained = service.drain()
                tail = ", sealing WAL" if service.wal is not None else ""
                print(("drained" if drained else "drain timed out") + tail)
            finally:
                signal.signal(signal.SIGTERM, previous)
        return 0
    finally:
        service.close()


def _cmd_stats(args: argparse.Namespace) -> int:
    """Print cache/oracle/snapshot statistics as pretty JSON."""
    import json

    if (args.url is None) == (args.graph is None):
        raise CliError("pass exactly one of --url (running service) "
                       "or --graph (local engine)")
    if args.url is not None:
        import urllib.error
        import urllib.request

        endpoint = args.url.rstrip("/") + "/stats"
        try:
            with urllib.request.urlopen(endpoint, timeout=10) as response:
                document = json.loads(response.read())
        except (urllib.error.URLError, OSError, ValueError) as exc:
            raise CliError(f"cannot fetch {endpoint}: {exc}") from None
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    from repro.engine.engine import QueryEngine
    from repro.engine.storage import GraphStore

    graph = load_graph(args.graph)
    name = args.name if args.name is not None else Path(args.graph).stem
    store = GraphStore(args.store) if args.store is not None else None
    engine = QueryEngine(store=store)
    engine.register_graph(name, graph)
    try:
        if args.pattern is not None:
            engine.evaluate(name, _resolve_pattern(args.pattern))
        print(json.dumps(engine.stats(), indent=2, sort_keys=True))
        return 0
    finally:
        engine.close()


def _cmd_lint(args: argparse.Namespace) -> int:
    """Reached only via parse_args in tests; main() forwards earlier."""
    from repro.analysis.cli import main as lint_main

    return lint_main([])


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.datasets.paper_example import EDGE_E1, paper_graph, paper_pattern
    from repro.incremental.inc_bounded import IncrementalBoundedSimulation
    from repro.incremental.updates import EdgeInsertion as Ins

    graph = paper_graph()
    pattern = paper_pattern()
    print("== Example 1: bounded simulation on the Fig. 1 network ==")
    print(pattern.describe())
    print()
    result = match_bounded(graph, pattern)
    print(views.relation_summary(result.relation))
    print()
    print("== Example 2: top-K by social impact ==")
    ranked = rank_matches(result.result_graph())
    print(views.render_ranking(ranked))
    print()
    print("== Example 3: incremental evaluation after inserting e1 ==")
    incremental = IncrementalBoundedSimulation(graph, pattern, state=result._state)
    before = incremental.relation()
    incremental.apply(Ins(*EDGE_E1))
    added, removed = before.diff(incremental.relation())
    for pattern_node, data_node in sorted(added):
        print(f"ΔM +({pattern_node}, {data_node})")
    for pattern_node, data_node in sorted(removed):
        print(f"ΔM -({pattern_node}, {data_node})")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
