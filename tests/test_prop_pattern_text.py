"""Property-based round-trip tests for the pattern text format.

Any pattern the builder can express must survive format -> parse with its
structural identity (canonical key) intact — otherwise stored query files
would drift from what the user built in the Pattern Builder.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.pattern.parser import format_pattern, parse_pattern
from repro.pattern.pattern import Pattern
from repro.pattern.predicates import And, Cmp, In, Predicate

_ATTRS = ("field", "experience", "specialty")
_STRING_VALUES = ("SA", "SD", "BA", "ST", "a b", "x,y")
_OPS = ("==", "!=", ">=", "<=", ">", "<")


@st.composite
def predicates(draw) -> Predicate:
    kind = draw(st.sampled_from(("cmp-num", "cmp-str", "in", "and")))
    if kind == "cmp-num":
        return Cmp(
            draw(st.sampled_from(_ATTRS)),
            draw(st.sampled_from(_OPS)),
            draw(st.integers(min_value=-50, max_value=50)),
        )
    if kind == "cmp-str":
        return Cmp(
            draw(st.sampled_from(_ATTRS)),
            draw(st.sampled_from(("==", "!="))),
            draw(st.sampled_from(_STRING_VALUES)),
        )
    if kind == "in":
        choices = draw(
            st.lists(st.sampled_from(_STRING_VALUES), min_size=1, max_size=3,
                     unique=True)
        )
        return In(draw(st.sampled_from(_ATTRS)), choices)
    parts = [
        Cmp(draw(st.sampled_from(_ATTRS)), draw(st.sampled_from(_OPS)),
            draw(st.integers(min_value=0, max_value=20)))
        for _ in range(draw(st.integers(min_value=2, max_value=3)))
    ]
    return And(*parts)


@st.composite
def patterns(draw) -> Pattern:
    pattern = Pattern(name="prop")
    num_nodes = draw(st.integers(min_value=1, max_value=5))
    names = [f"N{i}" for i in range(num_nodes)]
    for name in names:
        condition = draw(st.one_of(st.none(), predicates()))
        pattern.add_node(name, condition)
    pairs = [(a, b) for a in names for b in names]
    for source, target in draw(st.lists(st.sampled_from(pairs), max_size=6,
                                        unique=True)):
        pattern.add_edge(source, target, draw(st.sampled_from([1, 2, 5, None])))
    if draw(st.booleans()):
        pattern.set_output(draw(st.sampled_from(names)))
    return pattern


@given(patterns())
@settings(max_examples=200, deadline=None)
def test_text_round_trip_preserves_identity(pattern):
    reparsed = parse_pattern(format_pattern(pattern))
    assert reparsed.canonical_key() == pattern.canonical_key()


@given(patterns())
@settings(max_examples=100, deadline=None)
def test_dict_round_trip_preserves_identity(pattern):
    assert Pattern.from_dict(pattern.to_dict()).canonical_key() == (
        pattern.canonical_key()
    )


@given(patterns())
@settings(max_examples=60, deadline=None)
def test_round_tripped_pattern_evaluates_identically(pattern):
    """Semantic check on top of the structural one: both forms produce the
    same matches on a fixed probe graph."""
    from repro.graph.digraph import Graph
    from repro.matching.bounded import match_bounded

    graph = Graph()
    for index in range(8):
        graph.add_node(
            index,
            field=("SA", "SD", "BA", "ST")[index % 4],
            experience=index * 3 % 11,
            specialty=("x,y", "a b")[index % 2],
        )
    for index in range(8):
        graph.add_edge(index, (index + 1) % 8)
        if index % 2 == 0:
            graph.add_edge(index, (index + 3) % 8)
    reparsed = parse_pattern(format_pattern(pattern))
    assert (
        match_bounded(graph, reparsed).relation
        == match_bounded(graph, pattern).relation
    )
