"""Unit tests for incremental compression maintenance."""

import pytest

from repro.compression.compress import compress
from repro.compression.decompress import decompress_relation
from repro.compression.maintain import MaintainedCompression
from repro.errors import CompressionError
from repro.graph.generators import collaboration_graph, random_digraph
from repro.incremental.updates import EdgeDeletion, EdgeInsertion, random_updates
from repro.matching.bounded import match_bounded
from repro.pattern.builder import PatternBuilder

from tests.conftest import make_labelled_graph


class TestBasics:
    def test_initial_partition_matches_batch_compression(self):
        g = collaboration_graph(60, seed=1)
        maintained = MaintainedCompression(g.copy(), attrs=("field",))
        batch = compress(g, attrs=("field",), method="bisimulation")
        assert maintained.compressed().quotient.num_nodes == batch.quotient.num_nodes
        assert maintained.compressed().quotient.num_edges == batch.quotient.num_edges

    def test_insertion_splits_class(self):
        g = make_labelled_graph([], {"x": "A", "y": "A", "c": "C"})
        maintained = MaintainedCompression(g, attrs=("label",))
        assert maintained.num_classes == 2  # {x,y}, {c}
        maintained.apply(EdgeInsertion("x", "c"))
        assert maintained.num_classes == 3  # x split away from y
        maintained.check_partition()

    def test_deletion_keeps_partition_stable(self):
        g = make_labelled_graph(
            [("x", "c"), ("y", "c")], {"x": "A", "y": "A", "c": "C"}
        )
        maintained = MaintainedCompression(g, attrs=("label",))
        assert maintained.num_classes == 2
        maintained.apply(EdgeDeletion("x", "c"))
        maintained.check_partition()
        assert maintained.num_classes == 3

    def test_split_propagates_to_predecessors(self):
        # p1 -> x, p2 -> y; x,y start merged, so p1,p2 start merged.
        # Splitting x/y must split p1/p2 too.
        g = make_labelled_graph(
            [("p1", "x"), ("p2", "y")],
            {"p1": "P", "p2": "P", "x": "A", "y": "A", "c": "C"},
        )
        maintained = MaintainedCompression(g, attrs=("label",))
        assert maintained.num_classes == 3
        maintained.apply(EdgeInsertion("x", "c"))
        maintained.check_partition()
        node_class = maintained.compressed().node_to_class
        assert node_class["p1"] != node_class["p2"]

    def test_staleness_counter_and_recompress(self):
        g = make_labelled_graph([], {"x": "A", "y": "A", "c": "C"})
        maintained = MaintainedCompression(g, attrs=("label",))
        maintained.apply(EdgeInsertion("x", "c"))
        maintained.apply(EdgeDeletion("x", "c"))
        assert maintained.staleness == 2
        # After deleting the edge again, x and y are structurally identical,
        # but local splitting never re-merges; recompress restores coarseness.
        assert maintained.num_classes == 3
        maintained.recompress()
        assert maintained.staleness == 0
        assert maintained.num_classes == 2

    def test_auto_recompress(self):
        g = make_labelled_graph([], {"x": "A", "y": "A", "c": "C"})
        maintained = MaintainedCompression(
            g, attrs=("label",), auto_recompress_after=2
        )
        maintained.apply(EdgeInsertion("x", "c"))
        maintained.apply(EdgeDeletion("x", "c"))
        assert maintained.staleness == 0  # auto-recompressed
        assert maintained.num_classes == 2

    def test_invalid_auto_threshold(self):
        with pytest.raises(CompressionError):
            MaintainedCompression(
                make_labelled_graph([], {"x": "A"}),
                attrs=("label",),
                auto_recompress_after=0,
            )

    def test_unknown_update_type(self):
        maintained = MaintainedCompression(
            make_labelled_graph([], {"x": "A"}), attrs=("label",)
        )
        with pytest.raises(CompressionError):
            maintained.apply("nope")  # type: ignore[arg-type]


class TestQueryPreservationUnderUpdates:
    @pytest.mark.parametrize("seed", range(6))
    def test_maintained_quotient_stays_query_preserving(self, seed):
        g = random_digraph(20, 45, num_labels=2, seed=seed)
        maintained = MaintainedCompression(g, attrs=("label",))
        q = (
            PatternBuilder()
            .node("A", 'label == "L0"')
            .node("B", 'label == "L1"')
            .edge("A", "B", 2)
            .build()
        )
        for update in random_updates(g, 15, seed=seed + 40):
            maintained.apply(update)
            maintained.check_partition()
            compressed = maintained.compressed()
            direct = match_bounded(g, q).relation
            on_quotient = match_bounded(compressed.quotient, q).relation
            assert decompress_relation(on_quotient, compressed) == direct

    def test_partition_never_coarser_than_fresh_bisimulation(self):
        g = random_digraph(25, 50, num_labels=2, seed=9)
        maintained = MaintainedCompression(g, attrs=("label",))
        for update in random_updates(g, 20, seed=10):
            maintained.apply(update)
        fresh = compress(g, attrs=("label",), method="bisimulation")
        assert maintained.num_classes >= fresh.quotient.num_nodes

    def test_apply_to_graph_false(self):
        g = make_labelled_graph([], {"x": "A", "y": "A", "c": "C"})
        maintained = MaintainedCompression(g, attrs=("label",))
        g.add_edge("x", "c")
        maintained.apply(EdgeInsertion("x", "c"), apply_to_graph=False)
        maintained.check_partition()
        assert maintained.num_classes == 3

    def test_unsound_for_simulation_partitions_documented(self):
        """The counterexample from the maintenance module docstring.

        With a *simulation-equivalence* partition ({x,y} merged because the
        leaf n is simulated by m), an update far from any dirty class makes
        the merge wrong.  This test pins the reason maintenance refuses
        simulation partitions: local splitting would not catch this.
        """
        g = make_labelled_graph(
            [("x", "m"), ("y", "m"), ("y", "n"), ("m", "c")],
            {"x": "A", "y": "A", "m": "B", "n": "B", "c": "C", "d": "D"},
        )
        label_of = lambda v: g.get(v, "label")
        from repro.compression.equivalence import mutually_similar

        assert mutually_similar(g, label_of, "x", "y")
        g.add_edge("n", "d")  # n can now move where m cannot follow
        assert not mutually_similar(g, label_of, "x", "y")
