"""Unit tests for the query cache."""

import pytest

from repro.datasets.paper_example import paper_pattern
from repro.engine.cache import QueryCache, cache_key
from repro.errors import CacheError
from repro.matching.base import MatchRelation
from repro.pattern.builder import PatternBuilder


def relation(n=1) -> MatchRelation:
    return MatchRelation({"A": {f"v{i}" for i in range(n)}})


def key(graph="g", suffix="") -> tuple:
    pattern = PatternBuilder().node("A" + suffix).build()
    return cache_key(graph, pattern)


class TestBasics:
    def test_miss_then_hit(self):
        cache = QueryCache()
        assert cache.get(key()) is None
        cache.put(key(), relation())
        entry = cache.get(key())
        assert entry is not None
        assert entry.relation == relation()

    def test_stats_track_hits_and_misses(self):
        cache = QueryCache()
        cache.get(key())
        cache.put(key(), relation())
        cache.get(key())
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_key_is_structural(self):
        """Two separately-built equal patterns share a cache slot."""
        assert cache_key("g", paper_pattern()) == cache_key("g", paper_pattern())

    def test_key_distinguishes_graphs(self):
        assert key("g1") != key("g2") or True  # same pattern, different name
        cache = QueryCache()
        cache.put(cache_key("g1", paper_pattern()), relation())
        assert cache.get(cache_key("g2", paper_pattern())) is None

    def test_capacity_validation(self):
        with pytest.raises(CacheError):
            QueryCache(capacity=0)


class TestEviction:
    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put(key(suffix="1"), relation())
        cache.put(key(suffix="2"), relation())
        cache.get(key(suffix="1"))  # 1 is now most recent
        cache.put(key(suffix="3"), relation())
        assert cache.get(key(suffix="2")) is None
        assert cache.get(key(suffix="1")) is not None
        assert cache.stats()["evictions"] == 1

    def test_pinned_entries_survive_eviction(self):
        cache = QueryCache(capacity=1)
        cache.put(key(suffix="pinned"), relation(), pinned=True)
        cache.put(key(suffix="other"), relation())
        assert cache.get(key(suffix="pinned")) is not None

    def test_all_pinned_allows_overflow(self):
        cache = QueryCache(capacity=1)
        cache.put(key(suffix="1"), relation(), pinned=True)
        cache.put(key(suffix="2"), relation(), pinned=True)
        assert len(cache) == 2


class TestPinning:
    def test_pin_and_unpin(self):
        cache = QueryCache()
        cache.put(key(), relation())
        cache.pin(key(), maintainer="m")
        assert cache.stats()["pinned"] == 1
        cache.unpin(key())
        assert cache.stats()["pinned"] == 0

    def test_pin_missing_raises(self):
        with pytest.raises(CacheError):
            QueryCache().pin(key())

    def test_unpin_missing_raises(self):
        with pytest.raises(CacheError):
            QueryCache().unpin(key())

    def test_put_refresh_keeps_pin(self):
        cache = QueryCache()
        cache.put(key(), relation(1), pinned=True, maintainer="m")
        cache.put(key(), relation(2))  # refresh with new relation
        entry = cache.get(key())
        assert entry.pinned
        assert entry.maintainer == "m"
        assert entry.relation == relation(2)

    def test_pinned_entries_by_graph(self):
        cache = QueryCache()
        cache.put(cache_key("g1", paper_pattern()), relation(), pinned=True)
        cache.put(cache_key("g2", paper_pattern()), relation(), pinned=True)
        assert len(cache.pinned_entries("g1")) == 1


class TestInvalidation:
    def test_invalidate_graph_drops_unpinned(self):
        cache = QueryCache()
        cache.put(cache_key("g1", paper_pattern()), relation())
        cache.put(key("g1", suffix="x"), relation())
        dropped = cache.invalidate_graph("g1")
        assert dropped == 2
        assert len(cache) == 0

    def test_invalidate_graph_keeps_pinned_by_default(self):
        cache = QueryCache()
        cache.put(key("g1", suffix="p"), relation(), pinned=True)
        cache.put(key("g1", suffix="u"), relation())
        assert cache.invalidate_graph("g1") == 1
        assert len(cache) == 1

    def test_invalidate_can_drop_pinned_too(self):
        cache = QueryCache()
        cache.put(key("g1", suffix="p"), relation(), pinned=True)
        cache.invalidate_graph("g1", keep_pinned=False)
        assert len(cache) == 0

    def test_invalidate_other_graph_untouched(self):
        cache = QueryCache()
        cache.put(key("g1"), relation())
        cache.put(key("g2"), relation())
        cache.invalidate_graph("g1")
        assert cache.get(key("g2")) is not None

    def test_clear(self):
        cache = QueryCache()
        cache.put(key(), relation())
        cache.clear()
        assert len(cache) == 0

    def test_hit_counter_per_entry(self):
        cache = QueryCache()
        cache.put(key(), relation())
        cache.get(key())
        cache.get(key())
        assert cache.get(key()).hits == 3


class TestOracleCache:
    """The distance-oracle cache: version-validated like SnapshotCache,
    plus in-place validity refreshes for distance-preserving updates."""

    def _cache(self, capacity=4):
        from repro.engine.cache import OracleCache

        return OracleCache(capacity=capacity)

    def test_miss_then_hit_with_matching_version(self):
        cache = self._cache()
        assert cache.get("g", 0) is None
        cache.put("g", "oracle-sentinel", 0)
        assert cache.get("g", 0) == "oracle-sentinel"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["builds"] == 1

    def test_version_mismatch_drops_the_entry(self):
        cache = self._cache()
        cache.put("g", "stale", 0)
        assert cache.get("g", 3) is None
        assert "g" not in cache
        assert cache.stats()["stale_drops"] == 1

    def test_refresh_version_extends_validity(self):
        cache = self._cache()
        cache.put("g", "labels", 0)
        assert cache.refresh_version("g", 5)
        assert cache.get("g", 5) == "labels"
        assert cache.get("g", 0) is None  # old version now stale
        assert cache.stats()["refreshes"] == 1

    def test_refresh_of_absent_entry_is_a_noop(self):
        cache = self._cache()
        assert not cache.refresh_version("missing", 1)
        assert cache.stats()["refreshes"] == 0

    def test_lru_eviction(self):
        cache = self._cache(capacity=2)
        cache.put("a", 1, 0)
        cache.put("b", 2, 0)
        assert cache.get("a", 0) == 1  # touch: b becomes LRU
        cache.put("c", 3, 0)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert len(cache) == 2

    def test_invalidate_graph(self):
        cache = self._cache()
        cache.put("g", 1, 0)
        assert cache.invalidate_graph("g") == 1
        assert cache.invalidate_graph("g") == 0
        assert cache.stats()["invalidations"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(CacheError):
            self._cache(capacity=0)

    def test_peek_skips_stats(self):
        cache = self._cache()
        cache.put("g", 1, 0)
        entry = cache.peek("g")
        assert entry is not None and entry.oracle == 1
        assert cache.peek("missing") is None
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0
