"""Unit tests for the query cache."""

import pytest

from repro.datasets.paper_example import paper_pattern
from repro.engine.cache import QueryCache, cache_key
from repro.errors import CacheError
from repro.matching.base import MatchRelation
from repro.pattern.builder import PatternBuilder


def relation(n=1) -> MatchRelation:
    return MatchRelation({"A": {f"v{i}" for i in range(n)}})


def key(graph="g", suffix="") -> tuple:
    pattern = PatternBuilder().node("A" + suffix).build()
    return cache_key(graph, pattern)


class TestBasics:
    def test_miss_then_hit(self):
        cache = QueryCache()
        assert cache.get(key(), 0) is None
        cache.put(key(), relation(), 0)
        entry = cache.get(key(), 0)
        assert entry is not None
        assert entry.relation == relation()

    def test_stats_track_hits_and_misses(self):
        cache = QueryCache()
        cache.get(key(), 0)
        cache.put(key(), relation(), 0)
        cache.get(key(), 0)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1

    def test_key_is_structural(self):
        """Two separately-built equal patterns share a cache slot."""
        assert cache_key("g", paper_pattern()) == cache_key("g", paper_pattern())

    def test_key_distinguishes_graphs(self):
        assert key("g1") != key("g2") or True  # same pattern, different name
        cache = QueryCache()
        cache.put(cache_key("g1", paper_pattern()), relation(), 0)
        assert cache.get(cache_key("g2", paper_pattern()), 0) is None

    def test_capacity_validation(self):
        with pytest.raises(CacheError):
            QueryCache(capacity=0)


class TestVersionValidation:
    """Reads validate against Graph.version, like every other cache."""

    def test_version_mismatch_drops_the_entry(self):
        cache = QueryCache()
        cache.put(key(), relation(), 0)
        assert cache.get(key(), 1) is None  # graph moved on: stale
        assert key() not in cache  # dropped, not just hidden
        stats = cache.stats()
        assert stats["stale_drops"] == 1
        assert stats["misses"] == 1

    def test_stale_pinned_entry_is_dropped_too(self):
        # A pinned entry whose maintainer never saw the mutation is just
        # as wrong as an unpinned one; staleness beats pinning.
        cache = QueryCache()
        cache.put(key(), relation(), 0, pinned=True, maintainer="m")
        assert cache.get(key(), 2) is None
        assert cache.stats()["pinned"] == 0

    def test_put_refresh_updates_version(self):
        cache = QueryCache()
        cache.put(key(), relation(1), 3, pinned=True, maintainer="m")
        cache.put(key(), relation(2), 5)  # maintainer refresh after update
        entry = cache.get(key(), 5)
        assert entry is not None and entry.graph_version == 5

    def test_fresh_is_version_aware_and_non_mutating(self):
        cache = QueryCache()
        cache.put(key(), relation(), 4)
        assert cache.fresh(key(), 4)
        assert not cache.fresh(key(), 5)
        # fresh() neither drops the stale entry nor counts a hit/miss.
        assert key() in cache
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0
        assert not cache.fresh(key("other"), 0)


class TestEviction:
    def test_lru_eviction(self):
        cache = QueryCache(capacity=2)
        cache.put(key(suffix="1"), relation(), 0)
        cache.put(key(suffix="2"), relation(), 0)
        cache.get(key(suffix="1"), 0)  # 1 is now most recent
        cache.put(key(suffix="3"), relation(), 0)
        assert cache.get(key(suffix="2"), 0) is None
        assert cache.get(key(suffix="1"), 0) is not None
        assert cache.stats()["evictions"] == 1

    def test_pinned_entries_survive_eviction(self):
        cache = QueryCache(capacity=1)
        cache.put(key(suffix="pinned"), relation(), 0, pinned=True)
        cache.put(key(suffix="other"), relation(), 0)
        assert cache.get(key(suffix="pinned"), 0) is not None

    def test_all_pinned_allows_overflow(self):
        cache = QueryCache(capacity=1)
        cache.put(key(suffix="1"), relation(), 0, pinned=True)
        cache.put(key(suffix="2"), relation(), 0, pinned=True)
        assert len(cache) == 2


class TestPinning:
    def test_pin_and_unpin(self):
        cache = QueryCache()
        cache.put(key(), relation(), 0)
        cache.pin(key(), maintainer="m")
        assert cache.stats()["pinned"] == 1
        cache.unpin(key())
        assert cache.stats()["pinned"] == 0

    def test_pin_missing_raises(self):
        with pytest.raises(CacheError):
            QueryCache().pin(key())

    def test_unpin_missing_raises(self):
        with pytest.raises(CacheError):
            QueryCache().unpin(key())

    def test_put_refresh_keeps_pin(self):
        cache = QueryCache()
        cache.put(key(), relation(1), 0, pinned=True, maintainer="m")
        cache.put(key(), relation(2), 0)  # refresh with new relation
        entry = cache.get(key(), 0)
        assert entry.pinned
        assert entry.maintainer == "m"
        assert entry.relation == relation(2)

    def test_pinned_entries_by_graph(self):
        cache = QueryCache()
        cache.put(cache_key("g1", paper_pattern()), relation(), 0, pinned=True)
        cache.put(cache_key("g2", paper_pattern()), relation(), 0, pinned=True)
        assert len(cache.pinned_entries("g1")) == 1


class TestInvalidation:
    def test_invalidate_graph_drops_unpinned(self):
        cache = QueryCache()
        cache.put(cache_key("g1", paper_pattern()), relation(), 0)
        cache.put(key("g1", suffix="x"), relation(), 0)
        dropped = cache.invalidate_graph("g1")
        assert dropped == 2
        assert len(cache) == 0

    def test_invalidate_graph_keeps_pinned_by_default(self):
        cache = QueryCache()
        cache.put(key("g1", suffix="p"), relation(), 0, pinned=True)
        cache.put(key("g1", suffix="u"), relation(), 0)
        assert cache.invalidate_graph("g1") == 1
        assert len(cache) == 1

    def test_invalidate_can_drop_pinned_too(self):
        cache = QueryCache()
        cache.put(key("g1", suffix="p"), relation(), 0, pinned=True)
        cache.invalidate_graph("g1", keep_pinned=False)
        assert len(cache) == 0

    def test_invalidate_other_graph_untouched(self):
        cache = QueryCache()
        cache.put(key("g1"), relation(), 0)
        cache.put(key("g2"), relation(), 0)
        cache.invalidate_graph("g1")
        assert cache.get(key("g2"), 0) is not None

    def test_clear(self):
        cache = QueryCache()
        cache.put(key(), relation(), 0)
        cache.clear()
        assert len(cache) == 0

    def test_hit_counter_per_entry(self):
        cache = QueryCache()
        cache.put(key(), relation(), 0)
        cache.get(key(), 0)
        cache.get(key(), 0)
        assert cache.get(key(), 0).hits == 3


class TestOracleCache:
    """The distance-oracle cache: version-validated like SnapshotCache,
    plus in-place validity refreshes for distance-preserving updates."""

    def _cache(self, capacity=4):
        from repro.engine.cache import OracleCache

        return OracleCache(capacity=capacity)

    def test_miss_then_hit_with_matching_version(self):
        cache = self._cache()
        assert cache.get("g", 0) is None
        cache.put("g", "oracle-sentinel", 0)
        assert cache.get("g", 0) == "oracle-sentinel"
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["builds"] == 1

    def test_version_mismatch_drops_the_entry(self):
        cache = self._cache()
        cache.put("g", "stale", 0)
        assert cache.get("g", 3) is None
        assert "g" not in cache
        assert cache.stats()["stale_drops"] == 1

    def test_refresh_version_extends_validity(self):
        cache = self._cache()
        cache.put("g", "labels", 0)
        assert cache.refresh_version("g", 5)
        assert cache.get("g", 5) == "labels"
        assert cache.get("g", 0) is None  # old version now stale
        assert cache.stats()["refreshes"] == 1

    def test_refresh_of_absent_entry_is_a_noop(self):
        cache = self._cache()
        assert not cache.refresh_version("missing", 1)
        assert cache.stats()["refreshes"] == 0

    def test_lru_eviction(self):
        cache = self._cache(capacity=2)
        cache.put("a", 1, 0)
        cache.put("b", 2, 0)
        assert cache.get("a", 0) == 1  # touch: b becomes LRU
        cache.put("c", 3, 0)
        assert "b" not in cache and "a" in cache and "c" in cache
        assert len(cache) == 2

    def test_invalidate_graph(self):
        cache = self._cache()
        cache.put("g", 1, 0)
        assert cache.invalidate_graph("g") == 1
        assert cache.invalidate_graph("g") == 0
        assert cache.stats()["invalidations"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(CacheError):
            self._cache(capacity=0)

    def test_peek_skips_stats(self):
        # peek() is deliberately version-blind: these tests exercise that
        # contract itself, so the version-guard rule is waived here.
        cache = self._cache()
        cache.put("g", 1, 0)
        entry = cache.peek("g")  # repro-lint: disable=cache-version-guard -- testing peek's own version-blind contract
        assert entry is not None and entry.oracle == 1
        assert cache.peek("missing") is None  # repro-lint: disable=cache-version-guard -- testing peek's own version-blind contract
        assert cache.stats()["hits"] == 0 and cache.stats()["misses"] == 0
