"""Unit tests for bounded BFS and weighted distances."""

import pytest

from repro.graph.digraph import Graph
from repro.graph.distance import (
    bounded_ancestors,
    bounded_descendants,
    distance,
    eccentricity_within,
    weighted_distances,
    within_bound,
)


@pytest.fixture
def path5() -> Graph:
    """a -> b -> c -> d -> e"""
    return Graph.from_edges([("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")])


@pytest.fixture
def loop() -> Graph:
    """a -> b -> c -> a"""
    return Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])


class TestBoundedDescendants:
    def test_depth_one(self, path5: Graph):
        assert bounded_descendants(path5, "a", 1) == {"b": 1}

    def test_depth_three(self, path5: Graph):
        assert bounded_descendants(path5, "a", 3) == {"b": 1, "c": 2, "d": 3}

    def test_unbounded_reaches_everything(self, path5: Graph):
        assert bounded_descendants(path5, "a", None) == {
            "b": 1, "c": 2, "d": 3, "e": 4,
        }

    def test_source_excluded_without_cycle(self, path5: Graph):
        assert "a" not in bounded_descendants(path5, "a", None)

    def test_source_included_via_cycle(self, loop: Graph):
        reached = bounded_descendants(loop, "a", 3)
        assert reached["a"] == 3

    def test_cycle_too_long_for_bound(self, loop: Graph):
        assert "a" not in bounded_descendants(loop, "a", 2)

    def test_zero_bound_is_empty(self, path5: Graph):
        assert bounded_descendants(path5, "a", 0) == {}

    def test_shortest_distance_wins(self):
        g = Graph.from_edges([("a", "b"), ("b", "c"), ("a", "c")])
        assert bounded_descendants(g, "a", 5)["c"] == 1

    def test_sink_node(self, path5: Graph):
        assert bounded_descendants(path5, "e", None) == {}

    def test_self_loop_distance_one(self):
        g = Graph.from_edges([("a", "a")])
        assert bounded_descendants(g, "a", 1) == {"a": 1}


class TestBoundedAncestors:
    def test_mirror_of_descendants(self, path5: Graph):
        assert bounded_ancestors(path5, "e", 2) == {"d": 1, "c": 2}

    def test_unbounded(self, path5: Graph):
        assert bounded_ancestors(path5, "c", None) == {"b": 1, "a": 2}

    def test_cycle_includes_self(self, loop: Graph):
        assert bounded_ancestors(loop, "a", 3)["a"] == 3


class TestDistance:
    def test_direct_edge(self, path5: Graph):
        assert distance(path5, "a", "b") == 1

    def test_multi_hop(self, path5: Graph):
        assert distance(path5, "a", "e") == 4

    def test_unreachable_is_none(self, path5: Graph):
        assert distance(path5, "e", "a") is None

    def test_self_distance_requires_cycle(self, path5: Graph, loop: Graph):
        assert distance(path5, "a", "a") is None
        assert distance(loop, "a", "a") == 3

    def test_unknown_nodes_give_none(self, path5: Graph):
        assert distance(path5, "zzz", "a") is None
        assert distance(path5, "a", "zzz") is None


class TestWithinBound:
    def test_true_inside_bound(self, path5: Graph):
        assert within_bound(path5, "a", "c", 2)

    def test_false_outside_bound(self, path5: Graph):
        assert not within_bound(path5, "a", "e", 3)

    def test_unbounded(self, path5: Graph):
        assert within_bound(path5, "a", "e", None)


class TestWeightedDistances:
    def test_simple_chain(self):
        adjacency = {"a": {"b": 2}, "b": {"c": 3}}
        assert weighted_distances(adjacency, "a") == {"b": 2.0, "c": 5.0}

    def test_shorter_weighted_path_wins(self):
        adjacency = {"a": {"b": 1, "c": 10}, "b": {"c": 1}}
        assert weighted_distances(adjacency, "a")["c"] == 2.0

    def test_source_on_weighted_cycle(self):
        adjacency = {"a": {"b": 1}, "b": {"a": 4}}
        assert weighted_distances(adjacency, "a")["a"] == 5.0

    def test_empty_adjacency(self):
        assert weighted_distances({}, "a") == {}

    def test_mixed_node_id_types_do_not_crash(self):
        adjacency = {1: {"b": 1, 2: 1}, "b": {2: 1}}
        result = weighted_distances(adjacency, 1)
        assert result["b"] == 1.0
        assert result[2] == 1.0


class TestEccentricity:
    def test_path_eccentricity(self, path5: Graph):
        assert eccentricity_within(path5, "a", None) == 4
        assert eccentricity_within(path5, "a", 2) == 2

    def test_sink_has_zero(self, path5: Graph):
        assert eccentricity_within(path5, "e", None) == 0
