"""MVCC-lite snapshot registry + service facade tests.

Covers the epoch lifecycle (register/pin/publish/retire), the acceptance
criterion that an in-flight query pinned to epoch N completes against N
while N+1 publishes, torn-read freedom under concurrent update bursts,
admission control, wire decoding, and the in-process service facade.
"""

import json
import threading

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.engine.estimator import QueryBudget
from repro.engine.storage import GraphStore
from repro.errors import AdmissionError, ReproError, ServerError
from repro.graph.frozen import FrozenGraph
from repro.incremental.updates import AttributeUpdate, EdgeDeletion, EdgeInsertion
from repro.matching.bounded import match_bounded
from repro.pattern.parser import parse_pattern
from repro.server import (
    AdmissionController,
    ExpFinderService,
    ServiceConfig,
    SnapshotRegistry,
)
from repro.server.wire import (
    decode_budget,
    decode_pattern,
    decode_updates,
    encode_ranked,
    error_payload,
    error_status,
)

SIM_PATTERN = """
node SA* : field == "SA"
node SD : field == "SD"
edge SA -> SD : 1
"""

BOUNDED_PATTERN = """
node SA* : field == "SA"
node SD : field == "SD"
edge SA -> SD : 2
"""


@pytest.fixture
def registry() -> SnapshotRegistry:
    reg = SnapshotRegistry()
    reg.register("fig1", paper_graph())
    return reg


class TestRegistration:
    def test_register_publishes_epoch_zero(self, registry):
        epoch = registry.current_epoch("fig1")
        assert epoch.epoch_id == 0
        assert not epoch.retired
        assert registry.counters["epochs_published"] == 1
        assert registry.counters["freezes"] == 1

    def test_duplicate_register_rejected(self, registry):
        with pytest.raises(ServerError, match="already registered"):
            registry.register("fig1", paper_graph())

    def test_replace_reregisters(self, registry):
        registry.register("fig1", paper_graph(include_e1=True), replace=True)
        epoch = registry.current_epoch("fig1")
        assert epoch.graph.has_edge("Fred", "Eva")

    def test_unknown_graph_errors_name_the_known_ones(self, registry):
        with pytest.raises(ServerError, match="registered: fig1"):
            registry.pin("nope")
        with pytest.raises(ServerError, match="unknown graph"):
            registry.current_epoch("nope")
        with pytest.raises(ServerError, match="unknown graph"):
            registry.publish("nope", [])

    def test_graphs_sorted(self, registry):
        registry.register("alpha", paper_graph())
        assert registry.graphs() == ["alpha", "fig1"]


class TestEpochReads:
    def test_evaluate_matches_direct_kernel(self, registry):
        epoch = registry.current_epoch("fig1")
        served = epoch.evaluate(paper_pattern())
        direct = match_bounded(paper_graph(), paper_pattern())
        assert served.relation == direct.relation
        # byte identity, which is what E18 asserts over the wire
        assert json.dumps(served.relation.to_dict(), sort_keys=True) == json.dumps(
            direct.relation.to_dict(), sort_keys=True
        )
        assert served.stats["route"] == "direct"
        assert served.stats["epoch"] == 0

    def test_repeat_evaluate_hits_epoch_cache(self, registry):
        epoch = registry.current_epoch("fig1")
        first = epoch.evaluate(paper_pattern())
        second = epoch.evaluate(paper_pattern())
        assert second.stats["route"] == "cache"
        assert second.relation == first.relation

    def test_simulation_pattern_routes_through_simulation(self, registry):
        epoch = registry.current_epoch("fig1")
        pattern = parse_pattern(SIM_PATTERN, name="sim")
        result = epoch.evaluate(pattern)
        assert "Bob" in result.relation.matches_of("SA")

    def test_partial_results_never_cached(self, registry):
        epoch = registry.current_epoch("fig1")
        tiny = QueryBudget(node_visits=1, allow_partial=True)
        partial = epoch.evaluate(paper_pattern(), budget=tiny)
        assert partial.stats["partial"]
        # a full re-run is a miss, not a poisoned cache hit
        full = epoch.evaluate(paper_pattern())
        assert full.stats["route"] == "direct"
        assert not full.stats.get("partial")

    def test_top_k_ranks_and_caches(self, registry):
        epoch = registry.current_epoch("fig1")
        ranked = epoch.top_k(paper_pattern(), 2)
        assert [m.node for m in ranked] == ["Bob", "Walt"]
        assert epoch.rank_cache.stats()["size"] == 1
        again = epoch.top_k(paper_pattern(), 1)
        assert [m.node for m in again] == ["Bob"]

    def test_explain_reports_plan_and_epoch(self, registry):
        epoch = registry.current_epoch("fig1")
        plan = epoch.explain(paper_pattern())
        assert plan["epoch"] == 0
        assert plan["oracle"] is False
        assert plan["route"] in {"direct", "cache"}
        epoch.evaluate(paper_pattern())
        assert epoch.explain(paper_pattern())["route"] == "cache"


class TestPublish:
    def test_publish_swaps_epoch_and_retires_prior(self, registry):
        prior = registry.current_epoch("fig1")
        epoch = registry.publish("fig1", [EdgeInsertion("Fred", "Eva")])
        assert epoch.epoch_id == 1
        assert registry.current_epoch("fig1") is epoch
        assert prior.retired
        # no pins were open, so the prior collapsed immediately
        assert registry.live_epochs("fig1") == [epoch]
        assert registry.counters["epochs_retired"] == 1
        assert "Fred" in epoch.evaluate(paper_pattern()).relation.matches_of("SD")

    def test_pinned_epoch_survives_publish(self, registry):
        """The acceptance criterion: a query pinned to epoch N completes
        against N while N+1 publishes."""
        handle = registry.pin("fig1")
        pinned = handle.epoch
        published = threading.Event()

        def writer():
            registry.publish("fig1", [EdgeInsertion("Fred", "Eva")])
            published.set()

        thread = threading.Thread(target=writer)
        thread.start()
        assert published.wait(timeout=10), "publish must not block on a pin"
        thread.join()
        # the pinned epoch is superseded but alive; its reads see the
        # pre-update world
        assert pinned.retired
        assert pinned.pins == 1
        relation = pinned.evaluate(paper_pattern()).relation
        assert "Fred" not in relation.matches_of("SD")
        # release drains the pin and retires the epoch
        handle.release()
        assert pinned.pins == 0
        live = registry.live_epochs("fig1")
        assert [e.epoch_id for e in live] == [1]
        # new pins land on the published epoch
        with registry.pin("fig1") as fresh:
            assert fresh.epoch_id == 1
            assert "Fred" in fresh.evaluate(paper_pattern()).relation.matches_of("SD")

    def test_handle_release_is_idempotent(self, registry):
        handle = registry.pin("fig1")
        assert not handle.released
        handle.release()
        handle.release()
        assert handle.released
        assert registry.current_epoch("fig1").pins == 0

    def test_attr_only_batch_publishes_new_epoch(self, registry):
        before = registry.current_epoch("fig1")
        epoch = registry.publish("fig1", [AttributeUpdate("Bob", "experience", 1)])
        assert epoch.epoch_id == before.epoch_id + 1
        assert "Bob" not in epoch.evaluate(paper_pattern()).relation.matches_of("SA")

    def test_failed_batch_is_all_or_nothing(self, registry):
        """A primitive raising mid-batch must not corrupt the master: the
        batch prefix is rolled back, and the next successful publish
        builds an epoch WITHOUT the failed batch's prefix applied."""
        before = registry.current_epoch("fig1")
        bad_batch = [
            EdgeInsertion("Fred", "Eva"),  # valid prefix...
            EdgeDeletion("Fred", "Pat"),  # ...then a missing edge: raises
        ]
        with pytest.raises(ReproError, match="not present"):
            registry.publish("fig1", bad_batch)
        # served state untouched: same current epoch, nothing published
        assert registry.current_epoch("fig1") is before
        assert registry.counters["epochs_published"] == 1
        # the next publish builds from the unprefixed master: the failed
        # batch's EdgeInsertion must NOT leak into the new epoch
        epoch = registry.publish("fig1", [AttributeUpdate("Bob", "skill", "db")])
        assert not epoch.graph.has_edge("Fred", "Eva")
        assert "Fred" not in epoch.evaluate(paper_pattern()).relation.matches_of("SD")

    def test_failed_batch_leaves_reads_consistent(self, registry):
        expected = registry.current_epoch("fig1").evaluate(paper_pattern()).relation
        with pytest.raises(ReproError):
            registry.publish(
                "fig1", [EdgeInsertion("Fred", "Eva"), EdgeInsertion("Fred", "Eva")]
            )
        with registry.pin("fig1") as epoch:
            assert epoch.evaluate(paper_pattern()).relation == expected


class TestRegistryRaces:
    def test_register_race_does_not_overwrite_winner(self):
        """Two concurrent register() calls for one name: the loser must
        raise instead of silently replacing the winner's state (the
        duplicate check is re-applied under the installing lock)."""
        registry = SnapshotRegistry()
        original = registry._build_epoch
        raced = []

        def racing_build(name, state, prior=None, **kwargs):
            epoch = original(name, state, prior=prior, **kwargs)
            if not raced:
                # Simulate a competing register() landing in the window
                # between the duplicate pre-check and the install.
                raced.append(True)
                registry.register("dup", paper_graph())
            return epoch

        registry._build_epoch = racing_build
        with pytest.raises(ServerError, match="already registered"):
            registry.register("dup", paper_graph())
        # the winner's published epoch survives and still serves
        epoch = registry.current_epoch("dup")
        assert epoch.epoch_id == 0
        assert registry.counters["epochs_published"] == 1
        with registry.pin("dup") as pinned:
            assert pinned is epoch

    def test_gc_leaked_handle_unpins_via_deferred_drain(self, registry):
        handle = registry.pin("fig1")
        epoch = handle.epoch
        assert epoch.pins == 1
        # a dropped handle parks its unpin instead of taking the lock
        handle.__del__()
        assert epoch.pins == 1  # not applied yet: no lock from a finalizer
        registry.stats()  # any locked registry operation drains the backlog
        assert epoch.pins == 0
        # the real release is now a no-op (the finalizer marked it released)
        handle.release()
        assert epoch.pins == 0

    def test_finalizer_is_safe_while_registry_lock_is_held(self, registry):
        """GC may finalize a handle on a thread holding the registry lock;
        the finalizer must not try to take it (this test deadlocks on
        regression)."""
        handle = registry.pin("fig1")
        with registry._lock:
            handle.__del__()
        with registry.pin("fig1") as epoch:  # drains the parked unpin
            assert epoch.pins == 1  # only this pin is left
        assert registry.current_epoch("fig1").pins == 0

    def test_leaked_pin_on_retired_epoch_still_collects(self, registry):
        handle = registry.pin("fig1")
        old = handle.epoch
        registry.publish("fig1", [EdgeInsertion("Fred", "Eva")])
        assert old.retired and old.pins == 1
        handle.__del__()  # leak the pin instead of releasing
        registry.stats()  # drain retires the superseded epoch
        assert [e.epoch_id for e in registry.live_epochs("fig1")] == [1]
        assert registry.counters["epochs_retired"] == 1


class TestOracleLifecycle:
    def test_register_with_oracle_builds_once(self):
        registry = SnapshotRegistry()
        registry.register("fig1", paper_graph(), oracle={})
        assert registry.counters["oracle_builds"] == 1
        assert registry.current_epoch("fig1").oracle is not None

    def test_attr_update_carries_oracle(self):
        registry = SnapshotRegistry()
        registry.register("fig1", paper_graph(), oracle={})
        before = registry.current_epoch("fig1").oracle
        epoch = registry.publish("fig1", [AttributeUpdate("Bob", "experience", 9)])
        assert epoch.oracle is before
        assert registry.counters["oracle_carries"] == 1
        assert registry.counters["oracle_builds"] == 1

    def test_edge_insertion_rebuilds_oracle(self):
        registry = SnapshotRegistry()
        registry.register("fig1", paper_graph(), oracle={})
        epoch = registry.publish("fig1", [EdgeInsertion("Fred", "Eva")])
        assert registry.counters["oracle_builds"] == 2
        assert registry.counters["oracle_carries"] == 0
        assert epoch.oracle is not None


class TestPreload:
    def test_preload_faults_in_without_freezing(self, tmp_path):
        store = GraphStore(tmp_path / "catalog")
        graph = paper_graph()
        store.save_graph("fig1", graph)
        # snapshots must come from the stored graph's lineage: reload it
        stored = store.load_graph("fig1")
        store.save_snapshot("fig1", FrozenGraph.freeze(stored))
        registry = SnapshotRegistry(store=store)
        epoch = registry.preload("fig1")
        assert registry.counters["fault_ins"] == 1
        assert registry.counters["freezes"] == 0, "warm start must not freeze"
        relation = epoch.evaluate(paper_pattern()).relation
        assert relation == match_bounded(graph, paper_pattern()).relation

    def test_preload_without_snapshot_degrades_to_freeze(self, tmp_path):
        store = GraphStore(tmp_path / "catalog")
        store.save_graph("fig1", paper_graph())
        registry = SnapshotRegistry(store=store)
        registry.preload("fig1")
        assert registry.counters["fault_ins"] == 0
        assert registry.counters["freezes"] == 1

    def test_preload_without_store_rejected(self):
        with pytest.raises(ServerError, match="no file store"):
            SnapshotRegistry().preload("fig1")

    def test_preload_duplicate_rejected(self, tmp_path):
        store = GraphStore(tmp_path / "catalog")
        store.save_graph("fig1", paper_graph())
        registry = SnapshotRegistry(store=store)
        registry.register("fig1", paper_graph())
        with pytest.raises(ServerError, match="already registered"):
            registry.preload("fig1")


class TestConcurrentReaders:
    def test_no_torn_reads_during_update_bursts(self, registry):
        """Readers racing a writer see only fully-published batches.

        Each batch flips Bob AND Walt in or out of the SA predicate
        together, so any epoch has either both or neither — a read
        showing exactly one of them would be a torn (half-applied) read.
        """
        pattern = paper_pattern()
        stop = threading.Event()
        failures: list[str] = []
        epochs_seen: list[list[int]] = []

        def reader():
            seen: list[int] = []
            while not stop.is_set():
                with registry.pin("fig1") as epoch:
                    relation = epoch.evaluate(pattern).relation
                    sa = relation.matches_of("SA") & {"Bob", "Walt"}
                    if len(sa) == 1:
                        failures.append(
                            f"torn read in epoch {epoch.epoch_id}: {sorted(sa)}"
                        )
                    seen.append(epoch.epoch_id)
            epochs_seen.append(seen)

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for thread in readers:
            thread.start()
        for round_no in range(12):
            out = round_no % 2 == 0
            experience = 1 if out else 7
            registry.publish(
                "fig1",
                [
                    AttributeUpdate("Bob", "experience", experience),
                    AttributeUpdate("Walt", "experience", experience + 1),
                ],
            )
        stop.set()
        for thread in readers:
            thread.join()
        assert not failures, failures
        # the current pointer only moves forward: every reader observed a
        # non-decreasing epoch sequence
        for seen in epochs_seen:
            assert seen == sorted(seen)
        assert any(len(set(seen)) > 1 for seen in epochs_seen) or True

    def test_refcounts_drain_after_load(self, registry):
        handles = [registry.pin("fig1") for _ in range(16)]
        registry.publish("fig1", [EdgeInsertion("Fred", "Eva")])
        assert len(registry.live_epochs("fig1")) == 2
        for handle in handles:
            handle.release()
        live = registry.live_epochs("fig1")
        assert [e.epoch_id for e in live] == [1]
        assert all(e.pins == 0 for e in live)
        stats = registry.stats()
        assert stats["graphs"]["fig1"]["pins"] == 0
        assert stats["graphs"]["fig1"]["live_epochs"] == 1

    def test_registry_stats_inventory(self, registry):
        registry.current_epoch("fig1").evaluate(paper_pattern())
        stats = registry.stats()
        assert stats["graphs"]["fig1"]["current_epoch"] == 0
        assert stats["graphs"]["fig1"]["nodes"] == 9
        assert stats["counters"]["epochs_published"] == 1
        assert stats["caches"]["fig1"]["cache"]["size"] == 1


class TestAdmission:
    def test_rejects_when_saturated_with_no_queue(self):
        controller = AdmissionController(max_inflight=1, max_queue=0)
        controller.acquire()
        with pytest.raises(AdmissionError, match="saturated"):
            controller.acquire()
        controller.release()
        # slot freed: admits again
        with controller.slot():
            pass
        stats = controller.stats()
        assert stats["admitted"] == 2
        assert stats["rejected_full"] == 1
        assert stats["inflight"] == 0

    def test_queue_timeout_rejects(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=2, queue_timeout=0.05
        )
        controller.acquire()
        with pytest.raises(AdmissionError, match="no worker slot"):
            controller.acquire()
        assert controller.stats()["rejected_timeout"] == 1
        assert controller.stats()["waiting"] == 0
        controller.release()

    def test_queued_caller_admitted_when_slot_frees(self):
        controller = AdmissionController(
            max_inflight=1, max_queue=1, queue_timeout=5.0
        )
        controller.acquire()
        admitted = threading.Event()

        def waiter():
            controller.acquire()
            admitted.set()
            controller.release()

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not admitted.wait(timeout=0.1)
        controller.release()
        assert admitted.wait(timeout=5)
        thread.join()
        stats = controller.stats()
        assert stats["admitted"] == 2
        assert stats["peak_waiting"] == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_inflight": 0},
            {"max_queue": -1},
            {"queue_timeout": -0.5},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ServerError):
            AdmissionController(**kwargs)


class TestWire:
    def test_decode_pattern_round_trips(self):
        pattern = decode_pattern({"pattern": SIM_PATTERN})
        assert pattern.is_simulation_pattern

    @pytest.mark.parametrize("bad", [None, "", "   ", 7, ["node A"]])
    def test_decode_pattern_rejects_non_text(self, bad):
        with pytest.raises(ServerError, match="pattern"):
            decode_pattern({"pattern": bad})

    def test_decode_budget_defaults_and_unlimited(self):
        default = QueryBudget(node_visits=10, allow_partial=True)
        assert decode_budget({}, default=default) is default
        assert decode_budget({"budget": None}, default=default) is default
        assert decode_budget({"budget": {}}, default=default) is None
        budget = decode_budget(
            {"budget": {"node_visits": 5, "seconds": 1, "allow_partial": False}}
        )
        assert budget.node_visits == 5
        assert budget.seconds == 1.0
        assert budget.allow_partial is False

    @pytest.mark.parametrize(
        "raw,match",
        [
            ([], "object"),
            ({"node_visits": "many"}, "node_visits"),
            ({"seconds": "fast"}, "seconds"),
            ({"allow_partial": 1}, "allow_partial"),
            ({"node_visits": -3}, "invalid budget"),
        ],
    )
    def test_decode_budget_rejects_malformed(self, raw, match):
        with pytest.raises(ServerError, match=match):
            decode_budget({"budget": raw})

    def test_decode_updates_all_ops(self):
        updates = decode_updates(
            {
                "updates": [
                    {"op": "add-edge", "source": "a", "target": "b"},
                    {"op": "remove-edge", "source": "a", "target": "b"},
                    {"op": "add-node", "node": "c", "attrs": {"field": "SA"}},
                    {"op": "remove-node", "node": "c"},
                    {"op": "set-attr", "node": "a", "attr": "experience", "value": 4},
                ]
            }
        )
        assert len(updates) == 5

    @pytest.mark.parametrize(
        "raw,match",
        [
            ({}, "updates"),
            ({"updates": []}, "non-empty"),
            ({"updates": ["add-edge"]}, r"updates\[0\] must be an object"),
            ({"updates": [{"op": "rename"}]}, "op must be one of"),
            ({"updates": [{"op": "add-edge", "source": "a"}]}, "target"),
            (
                {"updates": [{"op": "add-node", "node": "c", "attrs": [1]}]},
                "attrs",
            ),
        ],
    )
    def test_decode_updates_rejects_malformed(self, raw, match):
        with pytest.raises(ServerError, match=match):
            decode_updates(raw)

    def test_error_status_mapping(self, registry):
        from repro.errors import BudgetExceededError

        assert error_status(AdmissionError("full")) == 429
        assert error_status(BudgetExceededError("slow")) == 408
        assert error_status(ReproError("bad")) == 400
        assert error_status(RuntimeError("boom")) == 500
        payload = error_payload(AdmissionError("full"))
        assert payload == {"error": "AdmissionError", "message": "full"}

    def test_encode_ranked_rows(self, registry):
        epoch = registry.current_epoch("fig1")
        rows = encode_ranked(epoch.top_k(paper_pattern(), 1))
        assert rows[0]["node"] == "Bob"
        assert rows[0]["impact_set_size"] > 0
        assert rows[0]["attrs"]["field"] == "SA"


@pytest.fixture
def service() -> ExpFinderService:
    with ExpFinderService() as svc:
        svc.register_graph("fig1", paper_graph())
        yield svc


class TestServiceFacade:
    def test_register_info(self, service):
        info = service.register_graph("twin", paper_graph())
        assert info == {
            "graph": "twin",
            "epoch": 0,
            "nodes": 9,
            "edges": 12,
            "oracle": False,
        }

    def test_evaluate_payload_shape(self, service):
        reply = service.evaluate("fig1", {"pattern": SIM_PATTERN})
        assert reply["graph"] == "fig1"
        assert reply["epoch"] == 0
        assert "SA" in reply["relation"]["sets"]
        assert reply["stats"]["route"] == "direct"

    def test_batch_pins_one_epoch(self, service):
        reply = service.batch(
            "fig1", {"patterns": [SIM_PATTERN, SIM_PATTERN]}
        )
        assert len(reply["results"]) == 2
        assert reply["results"][1]["stats"]["route"] == "cache"
        with pytest.raises(ServerError, match="patterns"):
            service.batch("fig1", {"patterns": []})

    def test_topk_validates_k(self, service):
        reply = service.topk("fig1", {"pattern": SIM_PATTERN, "k": 2})
        assert [row["node"] for row in reply["experts"]]
        with pytest.raises(ServerError, match="k must be"):
            service.topk("fig1", {"pattern": SIM_PATTERN, "k": 0})

    def test_update_then_evaluate_sees_new_epoch(self, service):
        service.update_graph(
            "fig1",
            {"updates": [{"op": "add-edge", "source": "Fred", "target": "Eva"}]},
        )
        reply = service.evaluate("fig1", {"pattern": SIM_PATTERN})
        assert reply["epoch"] == 1

    def test_explain_and_health_and_stats(self, service):
        plan = service.explain("fig1", {"pattern": SIM_PATTERN})
        assert plan["graph"] == "fig1"
        assert service.health() == {"status": "ok", "graphs": ["fig1"]}
        stats = service.stats()
        assert stats["workers"] == 1
        assert "pools_created" not in stats
        assert stats["requests"]["register"] == 1
        assert stats["admission"]["max_inflight"] == 8

    def test_default_budget_applies(self):
        config = ServiceConfig(
            default_budget=QueryBudget(node_visits=1, allow_partial=True)
        )
        with ExpFinderService(config) as svc:
            svc.register_graph("fig1", paper_graph())
            reply = svc.evaluate("fig1", {"pattern": BOUNDED_PATTERN})
            assert reply["stats"]["partial"]
            # an explicit empty budget opts out of the default
            full = svc.evaluate("fig1", {"pattern": BOUNDED_PATTERN, "budget": {}})
            assert not full["stats"].get("partial")

    def test_config_validation(self):
        with pytest.raises(ReproError):
            ServiceConfig(workers=0).validated()
        with pytest.raises(ReproError):
            ServiceConfig(
                default_budget=QueryBudget(node_visits=-1)
            ).validated()


class TestServiceExecutorRouting:
    """``workers > 1`` must actually serve evaluation from the warm pool
    (not spawn idle processes), with relations identical to inline."""

    def test_workers_route_evaluation_through_warm_pool(self):
        with ExpFinderService(ServiceConfig(workers=2)) as parallel_svc, \
                ExpFinderService(ServiceConfig(workers=1)) as inline_svc:
            for svc in (parallel_svc, inline_svc):
                svc.register_graph("fig1", paper_graph())
            for pattern in (SIM_PATTERN, BOUNDED_PATTERN):
                sharded = parallel_svc.evaluate("fig1", {"pattern": pattern})
                inline = inline_svc.evaluate("fig1", {"pattern": pattern})
                # the fan-out is visible in the stats...
                assert sharded["stats"]["parallel"]["workers"] == 2
                assert sharded["stats"]["parallel"]["mode"] == "sharded-query"
                # ...and the relation is identical to the inline kernels
                assert sharded["relation"] == inline["relation"]
            # steady-state serving never builds a pool on the request path
            assert parallel_svc.stats()["pools_created"] == 1

    def test_workers_route_batch_and_topk(self):
        with ExpFinderService(ServiceConfig(workers=2)) as svc:
            svc.register_graph("fig1", paper_graph())
            reply = svc.batch("fig1", {"patterns": [BOUNDED_PATTERN, SIM_PATTERN]})
            assert reply["results"][0]["stats"]["parallel"]["workers"] == 2
            ranked = svc.topk("fig1", {"pattern": SIM_PATTERN, "k": 3})
            assert [row["node"] for row in ranked["experts"]]
            assert svc.stats()["pools_created"] == 1

    def test_cached_repeat_skips_the_pool(self):
        with ExpFinderService(ServiceConfig(workers=2)) as svc:
            svc.register_graph("fig1", paper_graph())
            first = svc.evaluate("fig1", {"pattern": SIM_PATTERN})
            again = svc.evaluate("fig1", {"pattern": SIM_PATTERN})
            assert again["stats"]["route"] == "cache"
            assert again["relation"] == first["relation"]
