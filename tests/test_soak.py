"""Full-system soak test.

Everything at once, for many rounds: one engine, one evolving collaboration
network, a pinned bounded query, maintained compression, and the
bounded-reachability index — with edge *and* node updates streaming in.
After every round the three evaluation routes and a from-scratch
recomputation must all agree.  This is the closest the test suite gets to
the demo's live scenario.
"""

import random

import pytest

from repro.engine.engine import QueryEngine
from repro.graph.generators import collaboration_graph
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
)
from repro.matching.bounded import match_bounded
from repro.pattern.builder import PatternBuilder


def standing_query():
    return (
        PatternBuilder("standing")
        .node("SA", field="SA", output=True)
        .node("SD", field="SD")
        .node("ST", field="ST")
        .edge("SA", "SD", 2)
        .edge("SD", "ST", 2)
        .build(require_output=True)
    )


def random_batch(graph, rng, size, next_id):
    batch = []
    for _ in range(size):
        nodes = list(graph.nodes())
        roll = rng.random()
        if roll < 0.1:
            batch.append(
                NodeInsertion.with_attrs(
                    f"new{next_id[0]}",
                    field=rng.choice(("SA", "SD", "ST", "BA")),
                    experience=rng.randint(1, 12),
                )
            )
            next_id[0] += 1
            break  # keep batches simple: one structural node op at a time
        if roll < 0.2 and len(nodes) > 20:
            batch.append(NodeDeletion(rng.choice(nodes)))
            break
        if roll < 0.35:
            batch.append(
                AttributeUpdate(rng.choice(nodes), "experience", rng.randint(1, 12))
            )
        elif roll < 0.7:
            pairs = None
            for _attempt in range(50):
                source, target = rng.sample(nodes, 2)
                if not graph.has_edge(source, target):
                    pairs = (source, target)
                    break
            if pairs:
                batch.append(EdgeInsertion(*pairs))
        else:
            edges = list(graph.edges())
            if edges:
                batch.append(EdgeDeletion(*rng.choice(edges)))
    # Deduplicate conflicting edge ops inside one batch (engine applies in
    # order, so only exact duplicates could clash).
    deduped = []
    seen = set()
    for update in batch:
        key = repr(update)
        if key not in seen:
            seen.add(key)
            deduped.append(update)
    return deduped


@pytest.mark.parametrize("seed", (0, 1))
def test_full_system_soak(seed):
    rng = random.Random(seed)
    engine = QueryEngine()
    graph = collaboration_graph(250, seed=seed)
    engine.register_graph("net", graph)

    query = standing_query()
    engine.pin("net", query)
    engine.compress_graph("net", attrs=("field",))
    engine.enable_reach_index("net", max_depth=3)

    next_id = [0]
    for round_number in range(12):
        batch = random_batch(graph, rng, size=6, next_id=next_id)
        valid = []
        probe = graph.copy()
        for update in batch:
            try:
                from repro.incremental.updates import decompose

                for primitive in decompose(probe, update):
                    primitive.apply(probe)
                valid.append(update)
            except Exception:
                continue  # skip updates invalidated by earlier ones
        engine.update_graph("net", valid)

        truth = match_bounded(graph, query).relation

        cached = engine.evaluate("net", query)
        assert cached.stats["route"] == "cache", round_number
        assert cached.relation == truth, round_number

        via_compressed = engine.evaluate("net", query, use_cache=False,
                                         cache_result=False)
        assert via_compressed.stats["route"] == "compressed", round_number
        assert via_compressed.relation == truth, round_number

        direct = engine.evaluate(
            "net", query, use_cache=False, use_compression=False, cache_result=False
        )
        assert direct.stats["route"] == "direct", round_number
        assert direct.relation == truth, round_number

    # End-of-soak consistency of internal structures.
    pinned = engine._cache.pinned_entries("net")
    assert len(pinned) == 1
    pinned[0][1].maintainer.state.check_invariants()
    from repro.compression.maintain import MaintainedCompression

    compression = engine._registered["net"].compression
    assert isinstance(compression, MaintainedCompression)
    compression.check_partition()
