"""Distance-oracle tests: exactness, determinism, routing, shipping.

The oracle's one promise is *exactness*: every answer — point query,
cycle distance, successor row — equals what the BFS kernels compute, for
every bound including ``'*'``, on every graph.  The sweeps here assert
that promise over seeded random graphs (all pairs, all bounds), and the
rest of the suite covers the machinery around it: deterministic label
arrays (sequential == chunked == worker-pool builds), depth caps,
post-build node insertions, label slices, and the planner integration.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.engine.parallel import ParallelExecutor
from repro.engine.planner import KERNEL_ORACLE, route_edge
from repro.errors import EvaluationError, GraphError
from repro.graph.digraph import Graph
from repro.graph.distance import bounded_descendants
from repro.graph.frozen import FrozenGraph
from repro.graph.generators import random_digraph, twitter_like_graph
from repro.graph.oracle import DistanceOracle, OracleSlice, phase_two_chunk
from repro.incremental.updates import (
    AttributeUpdate,
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
)
from repro.matching.bounded import frozen_successor_rows, match_bounded
from repro.pattern.pattern import Pattern

SWEEP_SEEDS = range(25)


def small_case(seed: int) -> tuple[Graph, FrozenGraph, DistanceOracle]:
    rng = random.Random(seed)
    n = rng.randint(4, 36)
    graph = random_digraph(n, rng.randint(n, 3 * n), seed=seed)
    frozen = FrozenGraph.freeze(graph)
    top = rng.choice([0, 1, 4, n, 2 * n])
    return graph, frozen, DistanceOracle.build(frozen, top=top)


class TestExactness:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS, ids=lambda s: f"seed{s}")
    def test_all_pairs_distances_match_bfs(self, seed):
        graph, frozen, oracle = small_case(seed)
        ids = frozen.ids()
        adjacency = frozen.successor_sets()
        for u in graph.nodes():
            reach = bounded_descendants(graph, u, None)
            for v in graph.nodes():
                want = reach.get(v)
                if u == v:
                    got = oracle.cycle_distance(ids[u], adjacency)
                else:
                    got = oracle.distance(ids[u], ids[v])
                assert got == want, f"seed {seed}: dist({u!r},{v!r})"
                if u != v:
                    assert oracle.reaches(ids[u], ids[v]) == (v in reach)
                else:
                    assert oracle.cycle_reaches(ids[u], adjacency) == (v in reach)

    @pytest.mark.parametrize("seed", range(8), ids=lambda s: f"seed{s}")
    def test_within_respects_every_bound(self, seed):
        graph, frozen, oracle = small_case(seed)
        ids = frozen.ids()
        nodes = list(graph.nodes())
        for u in nodes[:6]:
            reach = bounded_descendants(graph, u, None)
            for v in nodes[:6]:
                if u == v:
                    continue
                for bound in (1, 2, 3, None):
                    want = v in reach and (bound is None or reach[v] <= bound)
                    assert oracle.within(ids[u], ids[v], bound) == want

    def test_self_loop_is_the_shortest_cycle(self):
        graph = Graph.from_edges([("a", "a"), ("a", "b"), ("b", "a")])
        frozen = FrozenGraph.freeze(graph)
        oracle = DistanceOracle.build(frozen)
        adjacency = frozen.successor_sets()
        assert oracle.cycle_distance(frozen.id_of("a"), adjacency) == 1
        assert oracle.cycle_distance(frozen.id_of("b"), adjacency) == 2

    def test_self_loop_wins_regardless_of_successor_order(self):
        """Regression: a 2-cycle partner iterated before the self-loop must
        not early-exit cycle_distance at 2 (or prune the pair at bound 1)."""
        # "b" first: "a" gets id 1, so its frozenset successors iterate the
        # 2-cycle partner before the self-loop under CPython's set order.
        graph = Graph.from_edges([("b", "a"), ("a", "b"), ("a", "a")])
        frozen = FrozenGraph.freeze(graph)
        oracle = DistanceOracle.build(frozen)
        adjacency = frozen.successor_sets()
        a = frozen.id_of("a")
        assert oracle.cycle_distance(a, adjacency) == 1
        assert oracle.cycle_distance(a, adjacency, bound=1) == 1
        rows = {("X", "X"): {a: {}}}
        oracle.fill_rows([a], [(("X", "X"), 1, frozenset({a}))], rows, adjacency)
        assert rows[("X", "X")][a] == {a: 1}

    def test_cycle_avoiding_every_hub_of_the_node(self):
        # A 2-cycle between two low-degree nodes hanging off a hub: the
        # shortest cycle through x shares no intermediate with the hub's
        # labels, so a label-only self merge would overshoot.
        graph = Graph.from_edges(
            [("hub", "x"), ("hub", "y"), ("hub", "z"), ("x", "w"), ("w", "x")]
        )
        frozen = FrozenGraph.freeze(graph)
        oracle = DistanceOracle.build(frozen, top=1)
        assert oracle.cycle_distance(frozen.id_of("x"), frozen.successor_sets()) == 2

    def test_distance_refuses_self_pairs(self):
        _graph, frozen, oracle = small_case(0)
        with pytest.raises(GraphError, match="cycle"):
            oracle.distance(0, 0)
        with pytest.raises(GraphError, match="cycle"):
            oracle.reaches(0, 0)


class TestCaps:
    def test_capped_labels_cover_only_up_to_cap(self):
        graph = Graph.from_edges([(f"n{i}", f"n{i+1}") for i in range(6)])
        frozen = FrozenGraph.freeze(graph)
        oracle = DistanceOracle.build(frozen, cap=2)
        assert oracle.covers(1) and oracle.covers(2)
        assert not oracle.covers(3) and not oracle.covers(None)
        ids = frozen.ids()
        assert oracle.distance(ids["n0"], ids["n2"]) == 2
        # Beyond the cap the labels legitimately know nothing...
        assert oracle.distance(ids["n0"], ids["n5"]) is None
        # ...but the reachability closure is never capped.
        assert oracle.reaches(ids["n0"], ids["n5"])
        assert oracle.within(ids["n0"], ids["n5"], None)
        with pytest.raises(GraphError, match="cover"):
            oracle.within(ids["n0"], ids["n5"], 4)

    def test_uncapped_covers_everything(self):
        _graph, _frozen, oracle = small_case(1)
        assert oracle.covers(1) and oracle.covers(99) and oracle.covers(None)

    def test_bad_cap_rejected(self):
        _graph, frozen, _oracle = small_case(2)
        with pytest.raises(GraphError, match="cap"):
            DistanceOracle.build(frozen, cap=0)


class TestDeterminism:
    @pytest.mark.parametrize("seed", range(6), ids=lambda s: f"seed{s}")
    def test_sequential_builds_are_byte_identical(self, seed):
        graph, frozen, _ = small_case(seed)
        first = DistanceOracle.build(frozen, top=4)
        second = DistanceOracle.build(FrozenGraph.freeze(graph), top=4)
        for attr in ("out_offsets", "out_hubs", "out_dists",
                     "in_offsets", "in_hubs", "in_dists"):
            assert getattr(first, attr) == getattr(second, attr), attr
        assert first.reach_out == second.reach_out
        assert first.reach_in == second.reach_in

    @pytest.mark.parametrize("seed", range(6), ids=lambda s: f"seed{s}")
    def test_chunked_build_matches_sequential(self, seed):
        """Any chunking of phase two yields the same labels — the property
        that makes the parallel build deterministic."""
        graph, frozen, _ = small_case(seed)
        sequential = DistanceOracle.build(frozen, top=2)

        def scrambled_map(function, chunks):
            assert function is phase_two_chunk
            # Split every chunk into singletons and run them out of order;
            # results are reassembled in the original submission order by
            # the merge, so labels must not care.
            pieces = [
                [landmark] for chunk in chunks for landmark in chunk
            ]
            results = {i: function(piece) for i, piece in enumerate(pieces)}
            return [results[i] for i in range(len(pieces))]

        chunked = DistanceOracle.build(frozen, top=2, chunk_map=scrambled_map)
        for attr in ("out_offsets", "out_hubs", "out_dists",
                     "in_offsets", "in_hubs", "in_dists"):
            assert getattr(sequential, attr) == getattr(chunked, attr), attr

    def test_worker_pool_build_matches_sequential(self):
        graph = twitter_like_graph(300, seed=3)
        frozen = FrozenGraph.freeze(graph)
        sequential = DistanceOracle.build(frozen, top=8)
        with ParallelExecutor(workers=2) as executor:
            parallel = executor.build_oracle(frozen, top=8)
        for attr in ("out_offsets", "out_hubs", "out_dists",
                     "in_offsets", "in_hubs", "in_dists"):
            assert getattr(sequential, attr) == getattr(parallel, attr), attr

    def test_single_worker_build_is_plain_build(self):
        _graph, frozen, _ = small_case(3)
        with ParallelExecutor(workers=1) as executor:
            built = executor.build_oracle(frozen, top=4)
        reference = DistanceOracle.build(frozen, top=4)
        assert built.out_hubs == reference.out_hubs


class TestRows:
    @pytest.mark.parametrize("seed", range(12), ids=lambda s: f"seed{s}")
    def test_fill_rows_matches_enumeration_kernels(self, seed):
        """Oracle rows == enumeration rows for mixed bounds including '*'
        and self-candidates (source in its own child candidate set)."""
        rng = random.Random(seed)
        graph, frozen, oracle = small_case(seed)
        adjacency = frozen.successor_sets()
        n = frozen.num_nodes
        all_ids = list(range(n))
        for bound in (1, 2, 3, None):
            sources = sorted(rng.sample(all_ids, min(n, rng.randint(1, 8))))
            children = frozenset(rng.sample(all_ids, min(n, rng.randint(1, 10))))
            edge = ("U", "V")
            via_oracle = {edge: {s: {} for s in sources}}
            oracle.fill_rows(sources, [(edge, bound, children)], via_oracle, adjacency)
            expected = {edge: {}}
            for source in sources:
                levels = bounded_descendants(frozen, frozen.labels[source], bound)
                expected[edge][source] = {
                    frozen.id_of(node): dist
                    for node, dist in levels.items()
                    if frozen.id_of(node) in children
                }
            assert via_oracle == expected, f"seed {seed} bound {bound}"

    def test_uncovered_bound_raises(self):
        _graph, frozen, _ = small_case(4)
        oracle = DistanceOracle.build(frozen, cap=1)
        with pytest.raises(GraphError, match="cover"):
            oracle.fill_rows(
                [0], [(("U", "V"), 3, frozenset({0}))], {("U", "V"): {0: {}}},
                frozen.successor_sets(),
            )


class TestSlices:
    def test_slice_serves_the_same_rows(self):
        _graph, frozen, oracle = small_case(5)
        adjacency = frozen.successor_sets()
        n = frozen.num_nodes
        sources = list(range(min(4, n)))
        children = frozenset(range(n))
        succ_of_sources = set().union(*(adjacency[s] for s in sources)) | set(sources)
        sliced = oracle.slice_rows(succ_of_sources, children | set(sources))
        edge = ("U", "V")
        for bound in (2, None) if oracle.cap is None else (2,):
            full_rows = {edge: {s: {} for s in sources}}
            oracle.fill_rows(sources, [(edge, bound, children)], full_rows, adjacency)
            slice_rows = {edge: {s: {} for s in sources}}
            sliced.fill_rows(sources, [(edge, bound, children)], slice_rows, adjacency)
            assert slice_rows == full_rows

    def test_slice_remap_rekeys_rows(self):
        graph = Graph.from_edges([("a", "b"), ("b", "c")])
        frozen = FrozenGraph.freeze(graph)
        oracle = DistanceOracle.build(frozen)
        a = frozen.id_of("a")
        sliced = oracle.slice_rows([a], [a], remap={a: 7})
        assert sliced.out_row(7) == tuple(oracle.out_row(a))
        assert sliced.out_row(a) == ()

    def test_slice_pickles(self):
        _graph, frozen, oracle = small_case(6)
        sliced = oracle.slice_rows([0], [0], remap=None)
        sliced.edges = frozenset({("U", "V")})
        thawed = pickle.loads(pickle.dumps(sliced))
        assert thawed.out_row(0) == sliced.out_row(0)
        assert thawed.edges == sliced.edges
        assert thawed.cap == sliced.cap

    def test_oracle_pickles(self):
        _graph, frozen, oracle = small_case(7)
        thawed = pickle.loads(pickle.dumps(oracle))
        assert thawed.out_hubs == oracle.out_hubs
        assert thawed.reach_out == oracle.reach_out
        assert thawed.compatible_with(frozen)


class TestCompatibility:
    def test_survives_classification(self):
        assert DistanceOracle.survives(AttributeUpdate("a", "x", 1))
        assert DistanceOracle.survives(NodeInsertion("fresh"))
        assert not DistanceOracle.survives(EdgeInsertion("a", "b"))
        assert not DistanceOracle.survives(EdgeDeletion("a", "b"))
        assert not DistanceOracle.survives(NodeDeletion("a"))

    def test_compatible_after_node_insertion_and_attr_update(self):
        graph = Graph.from_edges([("a", "b"), ("b", "c")])
        oracle = DistanceOracle.build(FrozenGraph.freeze(graph))
        graph.add_node("late", tag=1)
        graph.update_attrs("a", tag=2)
        refrozen = FrozenGraph.freeze(graph)
        assert oracle.compatible_with(refrozen)
        # The inserted node has empty labels: unreachable, no cycle — which
        # is exactly the truth for a bare node.
        late = refrozen.id_of("late")
        assert tuple(oracle.out_row(late)) == ()
        assert not oracle.reaches(refrozen.id_of("a"), late)
        assert oracle.cycle_distance(late, refrozen.successor_sets()) is None

    def test_incompatible_after_edge_mutation(self):
        graph = Graph.from_edges([("a", "b"), ("b", "c")])
        oracle = DistanceOracle.build(FrozenGraph.freeze(graph))
        graph.add_edge("c", "a")
        assert not oracle.compatible_with(FrozenGraph.freeze(graph))

    def test_matcher_rejects_stale_oracle(self):
        graph = Graph.from_edges([("a", "b")], nodes={"a": {"f": 1}, "b": {"f": 1}})
        oracle = DistanceOracle.build(FrozenGraph.freeze(graph))
        graph.add_edge("b", "a")
        frozen = FrozenGraph.freeze(graph)
        pattern = Pattern()
        pattern.add_node("X", "f == 1")
        pattern.add_node("Y", "f == 1")
        pattern.add_edge("X", "Y", 2)
        with pytest.raises(EvaluationError, match="stale distance oracle"):
            match_bounded(graph, pattern, frozen=frozen, oracle=oracle)

    def test_matcher_requires_a_snapshot_with_the_oracle(self):
        graph = Graph.from_edges([("a", "b")])
        oracle = DistanceOracle.build(FrozenGraph.freeze(graph))
        pattern = Pattern()
        pattern.add_node("X")
        with pytest.raises(EvaluationError, match="frozen snapshot"):
            match_bounded(graph, pattern, oracle=oracle)


class TestRouting:
    def test_forced_slice_edges_route_to_the_oracle(self):
        graph = Graph.from_edges(
            [("a", "b"), ("b", "c"), ("c", "d")],
            nodes={n: {"f": 1} for n in "abcd"},
        )
        frozen = FrozenGraph.freeze(graph)
        oracle = DistanceOracle.build(frozen)
        ids = frozen.ids()
        everyone = frozenset(ids.values())
        sliced = oracle.slice_rows(everyone, everyone)
        sliced.edges = frozenset({("X", "Y")})
        log: dict = {}
        rows = frozen_successor_rows(
            frozen,
            {"X": (("Y", 3),)},
            {"X": everyone, "Y": everyone},
            oracle=sliced,
            kernel_log=log,
        )
        assert log[("X", "Y")].kernel == KERNEL_ORACLE
        plain = frozen_successor_rows(
            frozen, {"X": (("Y", 3),)}, {"X": everyone, "Y": everyone}
        )
        assert rows == plain

    def test_match_bounded_logs_kernels(self):
        graph = twitter_like_graph(400, seed=1)
        frozen = FrozenGraph.freeze(graph)
        oracle = DistanceOracle.build(frozen)
        pattern = Pattern("deep")
        pattern.add_node("SA", 'field == "SA", experience >= 13')
        pattern.add_node("ST", 'field == "ST", experience >= 13')
        pattern.add_edge("SA", "ST", None)
        result = match_bounded(graph, pattern, frozen=frozen, oracle=oracle)
        plain = match_bounded(graph, pattern, frozen=frozen)
        assert result.relation == plain.relation
        assert result.relation.to_dict() == plain.relation.to_dict()
        assert "kernels" in result.stats
        assert set(result.stats["kernels"]) == {"SA->ST"}

    def test_route_edge_prefers_oracle_on_selective_deep_edges(self):
        profile = {"cap": None, "avg_out_label": 5.0, "avg_in_label": 12.0}
        route = route_edge(
            ("A", "B"), None, 50, 200, 50_000, 150_000, profile
        )
        assert route.kernel == KERNEL_ORACLE


class TestParallelMatching:
    @pytest.mark.parametrize("seed", range(8), ids=lambda s: f"seed{s}")
    def test_sharded_match_with_oracle_is_identical(self, seed, executor):
        rng = random.Random(seed)
        n = rng.randint(16, 48)
        graph = random_digraph(n, rng.randint(n, 3 * n), seed=seed)
        frozen = FrozenGraph.freeze(graph)
        oracle = DistanceOracle.build(frozen)
        pattern = Pattern(f"p{seed}")
        pattern.add_node("X", f"x >= {rng.randint(0, 4)}")
        pattern.add_node("Y", f'label == "L{rng.randrange(3)}"')
        pattern.add_edge("X", "Y", rng.choice([2, 3, 5, None]))
        sequential = match_bounded(graph, pattern, frozen=frozen, oracle=oracle)
        parallel = executor.match(graph, pattern, frozen=frozen, oracle=oracle)
        assert parallel.relation == sequential.relation, f"seed {seed}"
        assert parallel.relation.to_dict() == sequential.relation.to_dict()
        parallel._state.check_invariants()

    @pytest.mark.parametrize("seed", range(6), ids=lambda s: f"seed{s}")
    def test_materialized_shards_ship_working_slices(self, seed, monkeypatch):
        """Force oracle routing and materialized balls together: payloads
        must carry label slices whose worker-side rows equal the parent's."""
        from repro.engine import planner
        from repro.engine.parallel import ParallelExecutor, _shard_rows, _set_shared_frozen
        from repro.graph.partition import decompose
        from repro.matching.simulation import simulation_candidates

        rng = random.Random(seed)
        n = rng.randint(20, 40)
        graph = random_digraph(n, rng.randint(n, 3 * n), seed=seed)
        frozen = FrozenGraph.freeze(graph)
        oracle = DistanceOracle.build(frozen)
        pattern = Pattern(f"s{seed}")
        pattern.add_node("X", f"x >= {rng.randint(3, 6)}")
        pattern.add_node("Y", f"x >= {rng.randint(0, 3)}")
        pattern.add_edge("X", "Y", rng.choice([2, 3]))
        candidates = simulation_candidates(graph, pattern)
        shards = decompose(graph, pattern, candidates, 3, frozen=frozen)

        original = planner.kernel_costs

        def forced(*args, **kwargs):
            costs = original(*args, **kwargs)
            if planner.KERNEL_ORACLE in costs:
                costs[planner.KERNEL_ORACLE] = -1.0
            return costs

        monkeypatch.setattr(planner, "kernel_costs", forced)
        carried_a_slice = False
        merged: dict = {}
        for shard in shards:
            payload = ParallelExecutor._shard_payload(
                frozen, pattern, shard, candidates, True, None, oracle=oracle
            )
            if payload[4] is not None:
                carried_a_slice = True
                assert payload[4].edges  # parent-routed edges travel along
            rows, _info = _shard_rows(payload)
            for edge, row in rows.items():
                merged.setdefault(edge, {}).update(row)
        monkeypatch.setattr(planner, "kernel_costs", original)
        if not any(candidates["X"]):
            return  # nothing to check: no sources anywhere
        assert carried_a_slice, f"seed {seed}: no shard carried a slice"
        # The merged label-slice rows must equal the plain enumeration rows.
        _set_shared_frozen(frozen)
        try:
            reference: dict = {}
            for shard in shards:
                plain_payload = ParallelExecutor._shard_payload(
                    frozen, pattern, shard, candidates, False,
                    ParallelExecutor._candidate_arrays(
                        frozen.ids(), candidates, pattern, shards
                    ),
                )
                for edge, row in _shard_rows(plain_payload)[0].items():
                    reference.setdefault(edge, {}).update(row)
        finally:
            _set_shared_frozen(None)
        assert merged == reference, f"seed {seed}"

    def test_stale_oracle_rejected_by_executor(self, executor):
        graph = Graph.from_edges([("a", "b")])
        oracle = DistanceOracle.build(FrozenGraph.freeze(graph))
        graph.add_edge("b", "a")
        pattern = Pattern()
        pattern.add_node("X")
        with pytest.raises(EvaluationError, match="stale distance oracle"):
            executor.match(graph, pattern, oracle=oracle)


@pytest.fixture(scope="module")
def executor():
    with ParallelExecutor(workers=2) as shared:
        yield shared
