"""Execute the code examples embedded in README.md and docs/*.md.

The documentation's fenced code blocks are written as doctest sessions, so
``doctest.testfile`` runs them exactly as a reader would (one shared
namespace per file, examples in order).  CI runs the same pass via
``python -m doctest``; this test keeps it enforced locally too.
"""

import doctest
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = [
    "README.md",
    "docs/architecture.md",
    "docs/performance.md",
    "docs/development.md",
]


@pytest.mark.parametrize("relative", DOC_FILES)
def test_documentation_examples(relative):
    path = REPO_ROOT / relative
    assert path.exists(), f"{relative} is missing"
    result = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
    )
    assert result.attempted > 0, f"{relative} lost its executable examples"
    assert result.failed == 0, f"{relative}: {result.failed} example(s) failed"
