"""Unit tests for edge updates and random update generation."""

import pytest

from repro.errors import UpdateError
from repro.graph.digraph import Graph
from repro.graph.generators import random_digraph
from repro.incremental.updates import (
    EdgeDeletion,
    EdgeInsertion,
    apply_updates,
    invert_batch,
    random_deletions,
    random_insertions,
    random_updates,
)


@pytest.fixture
def triangle() -> Graph:
    return Graph.from_edges([("a", "b"), ("b", "c"), ("c", "a")])


class TestUnitUpdates:
    def test_insertion_applies(self, triangle: Graph):
        EdgeInsertion("a", "c").apply(triangle)
        assert triangle.has_edge("a", "c")

    def test_insertion_of_existing_edge_raises(self, triangle: Graph):
        with pytest.raises(UpdateError, match="already present"):
            EdgeInsertion("a", "b").apply(triangle)

    def test_insertion_with_unknown_endpoint_raises(self, triangle: Graph):
        with pytest.raises(UpdateError, match="missing"):
            EdgeInsertion("a", "zzz").apply(triangle)

    def test_deletion_applies(self, triangle: Graph):
        EdgeDeletion("a", "b").apply(triangle)
        assert not triangle.has_edge("a", "b")

    def test_deletion_of_missing_edge_raises(self, triangle: Graph):
        with pytest.raises(UpdateError, match="not present"):
            EdgeDeletion("a", "c").apply(triangle)

    def test_inversion(self):
        insertion = EdgeInsertion("a", "b")
        assert insertion.inverted() == EdgeDeletion("a", "b")
        assert insertion.inverted().inverted() == insertion

    def test_updates_are_hashable_values(self):
        assert EdgeInsertion("a", "b") == EdgeInsertion("a", "b")
        assert len({EdgeInsertion("a", "b"), EdgeInsertion("a", "b")}) == 1


class TestBatches:
    def test_apply_updates_in_order(self, triangle: Graph):
        count = apply_updates(
            triangle,
            [EdgeDeletion("a", "b"), EdgeInsertion("a", "b")],  # delete then re-add
        )
        assert count == 2
        assert triangle.has_edge("a", "b")

    def test_invert_batch_round_trips(self, triangle: Graph):
        snapshot = triangle.copy()
        batch = [EdgeDeletion("a", "b"), EdgeInsertion("b", "a")]
        apply_updates(triangle, batch)
        apply_updates(triangle, invert_batch(batch))
        assert triangle == snapshot

    def test_failed_update_stops_mid_batch(self, triangle: Graph):
        with pytest.raises(UpdateError):
            apply_updates(
                triangle,
                [EdgeDeletion("a", "b"), EdgeDeletion("a", "b")],  # second fails
            )
        assert not triangle.has_edge("a", "b")  # first applied


class TestRandomGeneration:
    def test_random_insertions_are_valid_and_distinct(self):
        g = random_digraph(20, 40, seed=1)
        batch = random_insertions(g, 15, seed=2)
        assert len(set(batch)) == 15
        apply_updates(g, batch)  # no exception: all were valid

    def test_random_insertions_capacity_check(self):
        g = Graph.from_edges([("a", "b"), ("b", "a")])
        with pytest.raises(UpdateError, match="free node pairs"):
            random_insertions(g, 1, seed=0)

    def test_random_deletions_from_existing_edges(self):
        g = random_digraph(20, 40, seed=3)
        batch = random_deletions(g, 10, seed=4)
        assert len(set(batch)) == 10
        apply_updates(g, batch)

    def test_random_deletions_capacity_check(self):
        g = random_digraph(5, 2, seed=5)
        with pytest.raises(UpdateError, match="only 2 edges"):
            random_deletions(g, 3, seed=6)

    def test_random_updates_valid_in_sequence(self):
        g = random_digraph(15, 30, seed=7)
        batch = random_updates(g, 40, seed=8)
        assert len(batch) == 40
        apply_updates(g, batch)  # validity is order-sensitive: must not raise

    def test_random_updates_deterministic(self):
        g = random_digraph(15, 30, seed=9)
        assert random_updates(g, 10, seed=1) == random_updates(g, 10, seed=1)

    def test_random_updates_does_not_mutate_input(self):
        g = random_digraph(15, 30, seed=10)
        snapshot = g.copy()
        random_updates(g, 10, seed=2)
        assert g == snapshot

    def test_insert_ratio_extremes(self):
        g = random_digraph(15, 30, seed=11)
        only_inserts = random_updates(g, 10, seed=3, insert_ratio=1.0)
        assert all(isinstance(u, EdgeInsertion) for u in only_inserts)
        only_deletes = random_updates(g, 10, seed=4, insert_ratio=0.0)
        assert all(isinstance(u, EdgeDeletion) for u in only_deletes)

    def test_bad_insert_ratio_raises(self):
        g = random_digraph(5, 5, seed=12)
        with pytest.raises(UpdateError):
            random_updates(g, 3, insert_ratio=1.5)

    def test_too_small_graph_raises(self):
        g = Graph()
        g.add_node("a")
        with pytest.raises(UpdateError):
            random_updates(g, 3)
