"""Execute the doctest examples embedded in module docstrings.

Docstring examples are part of the public documentation; this test keeps
them honest.  Modules are resolved through :func:`importlib.import_module`
because several package ``__init__`` files re-export functions whose names
shadow sibling submodules (e.g. ``repro.compression.compress``).
"""

import doctest
import importlib

import pytest

MODULE_NAMES = [
    "repro.compression.compress",
    "repro.compression.maintain",
    "repro.engine.cache",
    "repro.engine.engine",
    "repro.engine.parallel",
    "repro.engine.planner",
    "repro.engine.storage",
    "repro.expfinder",
    "repro.graph.digraph",
    "repro.graph.distance",
    "repro.graph.generators",
    "repro.graph.index",
    "repro.graph.partition",
    "repro.incremental.inc_simulation",
    "repro.matching.bounded",
    "repro.matching.isomorphism",
    "repro.matching.simulation",
    "repro.pattern.builder",
    "repro.pattern.pattern",
    "repro.pattern.predicates",
    "repro.ranking.social_impact",
]


@pytest.mark.parametrize("module_name", MODULE_NAMES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    result = doctest.testmod(module)
    assert result.attempted > 0, f"{module_name} lost its doctest examples"
    assert result.failed == 0, f"{module_name}: {result.failed} doctest failure(s)"
