"""Unit tests for the pluggable ranking metrics."""

import math

import pytest

from repro.datasets.paper_example import paper_graph, paper_pattern
from repro.errors import RankingError
from repro.matching.bounded import match_bounded
from repro.ranking.metrics import (
    METRICS,
    ClosenessMetric,
    DegreeMetric,
    HarmonicMetric,
    SocialImpactMetric,
    get_metric,
)


@pytest.fixture(scope="module")
def fig1_rg():
    return match_bounded(paper_graph(), paper_pattern()).result_graph()


class TestRegistry:
    def test_all_registered(self):
        assert set(METRICS) == {"social-impact", "closeness", "harmonic", "degree"}

    def test_get_metric(self):
        assert isinstance(get_metric("closeness"), ClosenessMetric)

    def test_unknown_metric_raises(self):
        with pytest.raises(RankingError, match="unknown metric"):
            get_metric("pagerank")


class TestScores:
    def test_social_impact_matches_paper_function(self, fig1_rg):
        metric = SocialImpactMetric()
        assert metric.score(fig1_rg, "Bob") == pytest.approx(9 / 5)

    def test_closeness_prefers_bob(self, fig1_rg):
        metric = ClosenessMetric()
        assert metric.score(fig1_rg, "Bob") < metric.score(fig1_rg, "Walt")

    def test_harmonic_prefers_bob(self, fig1_rg):
        metric = HarmonicMetric()
        assert metric.score(fig1_rg, "Bob") < metric.score(fig1_rg, "Walt")

    def test_degree_prefers_bob(self, fig1_rg):
        metric = DegreeMetric()
        assert metric.score(fig1_rg, "Bob") < metric.score(fig1_rg, "Walt")

    def test_closeness_of_sink_is_inf(self, fig1_rg):
        # Eva reaches nobody in the result graph.
        assert ClosenessMetric().score(fig1_rg, "Eva") == math.inf

    def test_unknown_node_raises_everywhere(self, fig1_rg):
        for metric in METRICS.values():
            with pytest.raises(RankingError):
                metric.score(fig1_rg, "Nobody")


class TestRankAll:
    def test_rank_all_sorted_and_filtered(self, fig1_rg):
        scored = SocialImpactMetric().rank_all(fig1_rg)
        assert [node for node, _ in scored] == ["Bob", "Walt"]

    def test_rank_all_explicit_pattern_node(self, fig1_rg):
        scored = DegreeMetric().rank_all(fig1_rg, pattern_node="SD")
        assert {node for node, _ in scored} == {"Dan", "Mat", "Pat"}

    def test_every_metric_agrees_bob_wins(self, fig1_rg):
        for metric in METRICS.values():
            assert metric.rank_all(fig1_rg)[0][0] == "Bob", metric.name
