"""Property-based tests for the ranking function and top-K selection."""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.graph.digraph import Graph
from repro.graph.distance import weighted_distances
from repro.matching.bounded import match_bounded
from repro.pattern.pattern import Pattern
from repro.ranking.social_impact import rank_detail, rank_matches, top_k

LABELS = ("A", "B")


@st.composite
def matched_result_graph(draw, max_nodes=9):
    """A result graph with at least one match of the output node."""
    num_nodes = draw(st.integers(min_value=2, max_value=max_nodes))
    labels = draw(
        st.lists(st.sampled_from(LABELS), min_size=num_nodes, max_size=num_nodes)
    )
    graph = Graph()
    for index, label in enumerate(labels):
        graph.add_node(index, label=label)
    possible = [(s, t) for s in range(num_nodes) for t in range(num_nodes) if s != t]
    graph.add_edges(
        draw(st.lists(st.sampled_from(possible), max_size=20, unique=True))
    )
    pattern = Pattern()
    pattern.add_node("OUT", 'label == "A"', output=True)
    pattern.add_node("B", 'label == "B"')
    pattern.add_edge("OUT", "B", draw(st.sampled_from([1, 2, 3])))
    result = match_bounded(graph, pattern)
    return result.result_graph(), result.relation


@given(matched_result_graph())
@settings(max_examples=80, deadline=None)
def test_rank_equals_brute_force_formula(data):
    result_graph, relation = data
    for node in relation.matches_of("OUT"):
        detail = rank_detail(result_graph, node)
        descendants = weighted_distances(result_graph.out_adjacency(), node)
        ancestors = weighted_distances(result_graph.in_adjacency(), node)
        impact = set(descendants) | set(ancestors)
        if not impact:
            assert detail.rank == math.inf
        else:
            expected = (
                sum(descendants.values()) + sum(ancestors.values())
            ) / len(impact)
            assert detail.rank == expected


@given(matched_result_graph())
@settings(max_examples=60, deadline=None)
def test_rank_matches_is_sorted_and_complete(data):
    result_graph, relation = data
    ranked = rank_matches(result_graph)
    assert {r.node for r in ranked} == set(relation.matches_of("OUT"))
    values = [r.rank for r in ranked]
    assert values == sorted(values)


@given(matched_result_graph(), st.integers(min_value=1, max_value=5))
@settings(max_examples=60, deadline=None)
def test_top_k_is_prefix_of_ranking(data, k):
    result_graph, _relation = data
    full = rank_matches(result_graph)
    assert top_k(result_graph, k) == full[:k]


@given(matched_result_graph())
@settings(max_examples=60, deadline=None)
def test_ranks_are_nonnegative(data):
    result_graph, _relation = data
    for match in rank_matches(result_graph):
        assert match.rank >= 0  # weights are >= 1 and sets are nonnegative


@given(matched_result_graph(), st.integers(min_value=1, max_value=5))
@settings(max_examples=80, deadline=None)
def test_bulk_top_k_equals_naive_for_every_metric(data, k):
    """The lazy, bound-pruned bulk path is exactly the naive slice."""
    from repro.ranking.metrics import METRICS
    from repro.ranking.topk import (
        RankingContext,
        bulk_top_k_detail,
        bulk_top_k_scores,
    )

    result_graph, _relation = data
    naive = rank_matches(result_graph)
    assert bulk_top_k_detail(RankingContext(result_graph), k) == naive[:k]
    for metric in METRICS.values():
        context = RankingContext(result_graph)
        assert bulk_top_k_scores(context, k, metric) == metric.rank_all(
            result_graph
        )[:k]
