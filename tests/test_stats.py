"""Unit tests for graph statistics."""

import pytest

from repro.errors import GraphError
from repro.graph.digraph import Graph
from repro.graph.generators import twitter_like_graph
from repro.graph.stats import (
    DegreeStats,
    attribute_histogram,
    degree_stats,
    density,
    graph_profile,
    reciprocity,
    sampled_reach,
)


@pytest.fixture
def small() -> Graph:
    g = Graph(name="s")
    g.add_node("a", field="SA")
    g.add_node("b", field="SD")
    g.add_node("c", field="SD")
    g.add_edges([("a", "b"), ("b", "a"), ("a", "c")])
    return g


class TestDegreeStats:
    def test_from_values(self):
        stats = DegreeStats.from_values([0, 1, 2, 5])
        assert stats.minimum == 0
        assert stats.maximum == 5
        assert stats.mean == 2.0
        assert stats.median == 1.5
        assert stats.zeros == 1

    def test_odd_median(self):
        assert DegreeStats.from_values([1, 7, 3]).median == 3.0

    def test_empty_raises(self):
        with pytest.raises(GraphError):
            DegreeStats.from_values([])

    def test_out_and_in_direction(self, small: Graph):
        out = degree_stats(small, "out")
        assert out.maximum == 2  # a
        inc = degree_stats(small, "in")
        assert inc.zeros == 0 if inc.minimum > 0 else inc.zeros >= 0
        assert degree_stats(small, "in").maximum == 1

    def test_bad_direction_raises(self, small: Graph):
        with pytest.raises(GraphError):
            degree_stats(small, "diagonal")


class TestAggregates:
    def test_attribute_histogram(self, small: Graph):
        assert attribute_histogram(small, "field") == {"SA": 1, "SD": 2}

    def test_histogram_counts_missing_as_none(self):
        g = Graph()
        g.add_node("a")
        g.add_node("b", field="SA")
        assert attribute_histogram(g, "field") == {None: 1, "SA": 1}

    def test_density(self, small: Graph):
        assert density(small) == pytest.approx(3 / 6)

    def test_density_degenerate(self):
        g = Graph()
        g.add_node("a")
        assert density(g) == 0.0

    def test_reciprocity(self, small: Graph):
        assert reciprocity(small) == pytest.approx(2 / 3)

    def test_reciprocity_no_edges(self):
        assert reciprocity(Graph()) == 0.0

    def test_sampled_reach_full_coverage_on_small_graph(self, small: Graph):
        # a reaches {b, c, a? a->b->a cycle gives a at 2}, b reaches {a,...}
        value = sampled_reach(small, 2, samples=10)
        assert value > 0

    def test_sampled_reach_deterministic(self):
        g = twitter_like_graph(200, seed=1)
        assert sampled_reach(g, 2, seed=5) == sampled_reach(g, 2, seed=5)

    def test_sampled_reach_empty_graph(self):
        assert sampled_reach(Graph(), 2) == 0.0


class TestProfile:
    def test_profile_keys(self, small: Graph):
        profile = graph_profile(small)
        for key in ("nodes", "edges", "density", "reciprocity",
                    "out_degree", "in_degree", "histogram", "avg_reach_2"):
            assert key in profile
        assert profile["nodes"] == 3
        assert isinstance(profile["out_degree"], DegreeStats)

    def test_profile_on_generator_output(self):
        g = twitter_like_graph(150, seed=2)
        profile = graph_profile(g)
        assert profile["edges"] == g.num_edges
        assert 0 < profile["density"] < 1
